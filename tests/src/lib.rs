//! Shared fixtures for the cross-crate integration tests.
