//! CatalogStore integration suite: the sky-sharded store must be a
//! *view* over the campaign, not a different catalog.
//!
//! * Streaming parity — a store fed live by
//!   `Session::run_campaign_into_store` snapshots to a catalog
//!   bit-identical to the legacy batch output, at explicit 1- and
//!   2-thread executor pools.
//! * Provenance cache — an unchanged re-run restores every shard
//!   from cache and refits none; perturbing one initialization entry
//!   refits only the shards whose input cone contains it, and the
//!   mixed cached/refit catalog still matches a from-scratch run.
//! * Query correctness — property tests pit the sharded cone,
//!   rect, and brightest-N paths against the brute-force `Catalog`
//!   references over random skies, including the RA seam.
//! * Concurrency — readers query (and agree with invariants) while
//!   a 2-thread campaign is still filling the store.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use celeste::{
    CatalogQuery, CatalogStore, Celeste, CelesteError, FitConfig, Session, SourceFilter,
    StoreConfig, StoreError,
};
use celeste_par::ThreadPool;
use celeste_sched::{partition_sky, run_campaign, stage_survey, PartitionConfig, RegionTask};
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::{GeometryConfig, SkyCoord, SkyRect};
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::Catalog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn tiny_survey() -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    })
}

fn quick_fit() -> FitConfig {
    FitConfig {
        bca_passes: 1,
        newton: celeste::NewtonConfig {
            max_iters: 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn campaign_fixture(
    tag: &str,
) -> (
    SyntheticSurvey,
    ImageStore,
    Catalog,
    Vec<RegionTask>,
    std::path::PathBuf,
) {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);
    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    assert!(tasks.len() >= 2, "want multiple tasks, got {}", tasks.len());
    (survey, store, init, tasks, dir)
}

fn parity_session() -> Session {
    // n_nodes = 1 makes the Dtree pop order deterministic; threads = 2
    // keeps the Cyclades batch structure fixed across executor widths.
    Celeste::builder()
        .threads(2)
        .n_nodes(1)
        .fit(quick_fit())
        .build()
        .unwrap()
}

fn assert_catalogs_bitwise_equal(got: &Catalog, want: &Catalog, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: entry counts differ");
    for (g, w) in got.entries.iter().zip(&want.entries) {
        assert_eq!(g.id, w.id, "{what}: id order diverged");
        assert_eq!(g, w, "{what}: source {} diverged", g.id);
    }
}

#[test]
fn streamed_store_matches_batch_catalog_bitwise_at_1_and_2_threads() {
    let (survey, store, init, tasks, dir) = campaign_fixture("parity");
    let session = parity_session();
    let legacy_cfg = session.config().campaign();
    let priors = session.config().priors.clone();

    // Live streaming ingest: the store fills while the campaign runs.
    let catalog = CatalogStore::default();
    let outcome = session
        .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
        .unwrap();
    assert_eq!(outcome.report.tasks_completed, tasks.len());
    assert_eq!(outcome.report.tasks_restored, 0, "first run has no cache");
    let streamed = catalog.to_catalog();
    assert_eq!(streamed.len(), init.len());

    // The batch catalog at explicit executor widths 1 and 2 must be
    // bit-identical to the streamed store's snapshot.
    for width in [1usize, 2] {
        let pool = ThreadPool::new(width);
        let (legacy_params, _) =
            pool.install(|| run_campaign(&survey, &store, &init, &tasks, &priors, &legacy_cfg));
        let mut batch: Vec<CatalogEntry> = legacy_params.iter().map(|sp| sp.to_entry()).collect();
        batch.sort_by_key(|e| e.id);
        assert_catalogs_bitwise_equal(
            &streamed,
            &Catalog::new(batch),
            &format!("streamed store vs batch at width {width}"),
        );
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unchanged_rerun_restores_every_shard_and_refits_none() {
    let (survey, store, init, tasks, dir) = campaign_fixture("cache");
    let session = parity_session();
    let catalog = CatalogStore::default();

    let first = session
        .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
        .unwrap();
    assert_eq!(first.report.tasks_restored, 0);
    let snap1 = catalog.to_catalog();

    // Same imagery, same config, same plan: every shard is served
    // from the provenance cache and nothing is refit.
    let second = session
        .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
        .unwrap();
    assert_eq!(
        second.report.tasks_restored,
        tasks.len(),
        "unchanged re-run must refit 0 shards"
    );
    assert_eq!(second.report.tasks_completed, tasks.len());
    let snap2 = catalog.to_catalog();
    assert_catalogs_bitwise_equal(&snap2, &snap1, "cached re-run");
    assert!(catalog.stats().cache_hits >= tasks.len() as u64);
    for (a, b) in first.params.iter().zip(&second.params) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.params, b.params, "restored params diverged for {}", a.id);
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perturbed_init_refits_only_the_affected_shards() {
    let (survey, store, init, tasks, dir) = campaign_fixture("perturb");
    let session = parity_session();
    let catalog = CatalogStore::default();
    session
        .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
        .unwrap();

    // Nudge one initialization entry: only tasks whose input cone
    // (own sources, fixed neighbors, or stage-0 dependencies) sees
    // the change may refit; the rest must restore from cache.
    let mut init2 = init.clone();
    init2.entries[0].flux_r_nmgy *= 1.10;
    let rerun = session
        .run_campaign_into_store(&survey, &store, &init2, &tasks, &catalog)
        .unwrap();
    assert!(
        rerun.report.tasks_restored < tasks.len(),
        "the perturbed shard must refit"
    );
    assert!(
        rerun.report.tasks_restored > 0,
        "shards away from the perturbation must restore from cache \
         ({} tasks total)",
        tasks.len()
    );

    // The mixed cached/refit catalog must equal a from-scratch run
    // over the perturbed initialization, bit for bit — the cache may
    // only skip work, never change the answer.
    let fresh = CatalogStore::default();
    session
        .run_campaign_into_store(&survey, &store, &init2, &tasks, &fresh)
        .unwrap();
    assert_catalogs_bitwise_equal(
        &catalog.to_catalog(),
        &fresh.to_catalog(),
        "cached+refit vs from-scratch",
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queries_serve_while_a_campaign_streams_into_the_store() {
    let (survey, store, init, tasks, dir) = campaign_fixture("live");
    let session = parity_session();
    let catalog = CatalogStore::default();
    let done = AtomicBool::new(false);
    let window = survey.geometry.footprint.padded(0.5);
    let center = SkyCoord::new(
        0.5 * (window.ra_min + window.ra_max),
        0.5 * (window.dec_min + window.dec_max),
    );

    let outcome = std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut polls = 0u64;
            while !done.load(Ordering::Acquire) {
                let hits = catalog
                    .rect_search(&window, &SourceFilter::default())
                    .unwrap();
                assert!(
                    hits.windows(2).all(|w| w[0].id < w[1].id),
                    "rect results must be id-sorted and duplicate-free"
                );
                let bright = catalog.brightest_n(5, None);
                assert!(bright
                    .windows(2)
                    .all(|w| w[0].flux_r_nmgy >= w[1].flux_r_nmgy));
                let cone = session
                    .query(
                        &catalog,
                        &CatalogQuery::Cone {
                            center,
                            radius_arcsec: 3.0 * 3600.0,
                        },
                    )
                    .unwrap();
                assert!(cone.len() <= catalog.len());
                polls += 1;
            }
            polls
        });
        let outcome = session
            .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
            .unwrap();
        done.store(true, Ordering::Release);
        let polls = reader.join().unwrap();
        assert!(polls > 0, "reader must have observed the store");
        outcome
    });
    assert_eq!(outcome.report.tasks_completed, tasks.len());
    assert_eq!(catalog.len(), init.len());
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_queries_are_typed_errors_through_the_session() {
    let session = parity_session();
    let catalog = CatalogStore::default();
    match session.query(
        &catalog,
        &CatalogQuery::Cone {
            center: SkyCoord::new(f64::NAN, 0.0),
            radius_arcsec: 10.0,
        },
    ) {
        Err(CelesteError::Store(StoreError::InvalidQuery(_))) => {}
        other => panic!("want InvalidQuery error, got {:?}", other.map(|_| ())),
    }
    match session.query(
        &catalog,
        &CatalogQuery::Cone {
            center: SkyCoord::new(0.0, 0.0),
            radius_arcsec: -1.0,
        },
    ) {
        Err(CelesteError::Store(StoreError::InvalidQuery(_))) => {}
        other => panic!("want InvalidQuery error, got {:?}", other.map(|_| ())),
    }
}

/// A random sky with deliberate clustering at the RA seam and at
/// cell boundaries, so the sharded paths are exercised where they
/// are most likely to disagree with brute force.
fn random_sky(n: usize, seed: u64, level: u8) -> Vec<CatalogEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 180.0 / f64::from(1u32 << level.min(20));
    (0..n as u64)
        .map(|id| {
            let (ra, dec) = match id % 4 {
                // Hug the RA seam from both sides.
                0 => (
                    (360.0 + (rng.random::<f64>() - 0.5) * 0.01) % 360.0,
                    (rng.random::<f64>() - 0.5) * 20.0,
                ),
                // Hug a shard (cell) boundary.
                1 => (
                    (rng.random::<f64>() * 359.0 / side).floor() * side
                        + (rng.random::<f64>() - 0.5) * 1e-4,
                    (rng.random::<f64>() - 0.5) * 170.0,
                ),
                _ => (
                    rng.random::<f64>() * 360.0,
                    (rng.random::<f64>() - 0.5) * 178.0,
                ),
            };
            CatalogEntry {
                id,
                pos: SkyCoord::new(ra.rem_euclid(360.0), dec),
                source_type: if id % 3 == 0 {
                    SourceType::Galaxy
                } else {
                    SourceType::Star
                },
                flux_r_nmgy: rng.random::<f64>() * 100.0,
                colors: [0.1, 0.2, -0.1, 0.05],
                shape: GalaxyShape::round_disk(1.0),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_queries_match_brute_force_over_random_skies(
        seed in 0..1000u64,
        n in 30..250usize,
        level in 4..12u32,
        ra_c in 0.0..360.0f64,
        dec_c in -85.0..85.0f64,
        radius in 0.0..150_000.0f64,
        width in 0.0..40.0f64,
        k in 0..40usize,
    ) {
        let level = level as u8;
        let entries = random_sky(n, seed, level);
        let store = CatalogStore::new(StoreConfig { level, lock_shards: 8 });
        for e in &entries {
            store.insert(e.clone());
        }
        let cat = Catalog::new(entries);

        // Cone search, including cones straddling the seam.
        let center = SkyCoord::new(ra_c, dec_c);
        let got: Vec<(u64, u64)> = store
            .cone_search(&center, radius)
            .unwrap()
            .iter()
            .map(|(e, s)| (e.id, s.to_bits()))
            .collect();
        let want: Vec<(u64, u64)> = cat
            .cone_search(&center, radius)
            .iter()
            .map(|(e, s)| (e.id, s.to_bits()))
            .collect();
        prop_assert_eq!(got, want, "cone at ({}, {}) r={}", ra_c, dec_c, radius);

        // Rect search, including rects wrapping past RA 360.
        let rect = SkyRect::new(ra_c, ra_c + width, (dec_c - 10.0).max(-90.0), dec_c);
        let got: Vec<u64> = store
            .rect_search(&rect, &SourceFilter::default())
            .unwrap()
            .iter()
            .map(|e| e.id)
            .collect();
        let mut want: Vec<u64> = cat.in_rect(&rect).iter().map(|e| e.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Brightest-N, global and windowed.
        let got: Vec<u64> = store.brightest_n(k, None).iter().map(|e| e.id).collect();
        let want: Vec<u64> = cat.brightest_n(k).iter().map(|e| e.id).collect();
        prop_assert_eq!(got, want);
        let got: Vec<u64> = store
            .brightest_n(k, Some(&rect))
            .iter()
            .map(|e| e.id)
            .collect();
        let windowed = Catalog::new(cat.in_rect(&rect).into_iter().cloned().collect());
        let want: Vec<u64> = windowed.brightest_n(k).iter().map(|e| e.id).collect();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn store_ids_cover_exactly_the_initialization_catalog() {
    let (survey, store, init, tasks, dir) = campaign_fixture("cover");
    let session = parity_session();
    let catalog = CatalogStore::default();
    session
        .run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)
        .unwrap();
    let got: HashSet<u64> = catalog.to_catalog().entries.iter().map(|e| e.id).collect();
    let want: HashSet<u64> = init.entries.iter().map(|e| e.id).collect();
    assert_eq!(got, want);
    for id in &want {
        assert!(catalog.get(*id).is_some(), "id {id} missing from get()");
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
