//! Chaos suite: deterministic fault injection against the production
//! campaign paths, asserting the resilience layer's contracts.
//!
//! * Exactly-once — every non-quarantined region is emitted exactly
//!   once no matter how many attempts it took; late/stale completions
//!   are discarded, never duplicated.
//! * Quarantine — regions whose injected panics exhaust the retry
//!   budget land in `failed_regions` with their full error chains,
//!   and the campaign still returns `Ok`.
//! * Healing — transient faults (bounded injected IO errors, single
//!   panics, hangs past the lease deadline) are retried to success.
//!
//! Faults are pure functions of `(seed, task_id, attempt)`, so every
//! test here replays bit-identically; a `VirtualClock` makes backoff
//! waits and past-deadline hangs instant.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use celeste_core::ModelPriors;
use celeste_sched::{
    partition_sky, run_campaign_with, stage_survey, CampaignConfig, CancelToken, FaultPlan,
    PartitionConfig, RegionError, RegionTask, RetryPolicy, RunOptions, VirtualClock,
};
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Catalog, Priors};

fn tiny_survey() -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    })
}

fn fixture(tag: &str) -> (SyntheticSurvey, ImageStore, Catalog, Vec<RegionTask>) {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);
    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    assert!(tasks.len() >= 4, "want several tasks, got {}", tasks.len());
    (survey, store, init, tasks)
}

fn quick_cfg(n_nodes: usize, retry: RetryPolicy, faults: FaultPlan) -> CampaignConfig {
    CampaignConfig {
        n_nodes,
        threads_per_node: 2,
        fit: celeste_core::FitConfig {
            bca_passes: 1,
            newton: celeste_core::NewtonConfig {
                max_iters: 10,
                ..Default::default()
            },
            ..Default::default()
        },
        retry,
        faults: Some(faults),
        ..Default::default()
    }
}

/// Injected panics are noisy on stderr; keep real panics visible but
/// silence the deliberate ones so test output stays readable. The
/// hook is global and tests run concurrently, so install it once.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Drain a sink and assert each task id arrived exactly once, with
/// non-empty content. Returns results keyed by task id.
fn assert_exactly_once(
    rx: crossbeam::channel::Receiver<celeste_sched::RegionResult>,
) -> HashMap<u64, celeste_sched::RegionResult> {
    // The sender side is already dropped, so `iter` drains and ends.
    let mut by_id = HashMap::new();
    for r in rx.iter() {
        assert!(!r.sources.is_empty(), "task {} arrived empty", r.task_id);
        assert!(
            by_id.insert(r.task_id, r).is_none(),
            "a task was emitted twice"
        );
    }
    by_id
}

#[test]
fn injected_panics_retry_to_success_or_quarantine_exactly_once() {
    silence_injected_panics();
    let (survey, store, init, tasks) = fixture("panics");
    let priors = ModelPriors::new(Priors::sdss_default());
    // Seed chosen so that, for this fixture's 9 tasks, some tasks
    // panic on all 3 attempts (quarantine) and the rest survive.
    let faults = FaultPlan {
        seed: 193,
        panic_rate: 0.4,
        ..Default::default()
    };
    let retry = RetryPolicy {
        max_attempts: 3,
        ..Default::default()
    };
    let cfg = quick_cfg(1, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let (tx, rx) = crossbeam::channel::unbounded();
    let (params, report) = run_campaign_with(
        &survey,
        &store,
        &init,
        &tasks,
        &priors,
        &cfg,
        RunOptions {
            sink: Some(&tx),
            clock: Some(clock),
            ..Default::default()
        },
    )
    .unwrap();
    drop(tx);

    // The quarantine set is exactly what the plan predicts: tasks
    // whose injected panics cover every attempt in the budget.
    let ids: Vec<u64> = tasks.iter().map(|t| t.id).collect();
    let mut expected = faults.quarantined_by_panics(&ids, retry.max_attempts);
    expected.sort_unstable();
    let mut quarantined: Vec<u64> = report.failed_regions.iter().map(|f| f.task_id).collect();
    quarantined.sort_unstable();
    assert_eq!(quarantined, expected);
    assert!(
        !quarantined.is_empty(),
        "seed should quarantine at least one task; tune panic_rate"
    );
    assert!(
        quarantined.len() < tasks.len(),
        "seed should also let tasks survive"
    );

    // Every quarantined region carries one FitPanic per attempt.
    for f in &report.failed_regions {
        assert_eq!(f.attempts, retry.max_attempts);
        assert_eq!(f.errors.len(), retry.max_attempts as usize);
        for e in &f.errors {
            assert!(
                matches!(e, RegionError::FitPanic(msg) if msg.contains("injected fault")),
                "unexpected error in chain: {e}"
            );
        }
    }

    // Exactly-once: the stream holds each non-quarantined task once.
    let by_id = assert_exactly_once(rx);
    for t in &tasks {
        assert_eq!(
            by_id.contains_key(&t.id),
            !quarantined.contains(&t.id),
            "task {} stream presence disagrees with quarantine",
            t.id
        );
    }
    assert_eq!(report.tasks_completed, tasks.len() - quarantined.len());
    assert!(
        report.retries as usize >= quarantined.len(),
        "every quarantined task retried at least once"
    );
    assert_eq!(params.len(), init.entries.len());
    assert!(!report.cancelled);
}

#[test]
fn store_fed_by_a_faulty_campaign_holds_exactly_the_surviving_regions() {
    silence_injected_panics();
    let (survey, store, init, tasks) = fixture("store");
    let priors = ModelPriors::new(Priors::sdss_default());
    // Same seed as the quarantine test: some tasks panic through the
    // whole retry budget, the rest survive.
    let faults = FaultPlan {
        seed: 193,
        panic_rate: 0.4,
        ..Default::default()
    };
    let retry = RetryPolicy {
        max_attempts: 3,
        ..Default::default()
    };
    let cfg = quick_cfg(1, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let catalog = celeste_store::CatalogStore::default();
    let (tx, rx) = crossbeam::channel::unbounded();
    let report = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let run = run_campaign_with(
                &survey,
                &store,
                &init,
                &tasks,
                &priors,
                &cfg,
                RunOptions {
                    sink: Some(&tx),
                    clock: Some(clock),
                    ..Default::default()
                },
            );
            drop(tx);
            run
        });
        // Feed the store live, while faults fire and leases churn.
        for r in rx.iter() {
            catalog.ingest(&r);
        }
        let (_, report) = handle.join().unwrap().unwrap();
        report
    });

    let quarantined: std::collections::HashSet<u64> =
        report.failed_regions.iter().map(|f| f.task_id).collect();
    assert!(
        !quarantined.is_empty() && quarantined.len() < tasks.len(),
        "seed should quarantine some tasks and let others survive"
    );
    // The store holds exactly the sources fitted by surviving
    // regions: a quarantined region contributes nothing, and a
    // source in a quarantined stage-0 task can still arrive via a
    // surviving stage-1 task (and vice versa).
    let mut expected: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for t in tasks.iter().filter(|t| !quarantined.contains(&t.id)) {
        for &i in &t.source_indices {
            expected.insert(init.entries[i].id);
        }
    }
    let got: std::collections::HashSet<u64> =
        catalog.to_catalog().entries.iter().map(|e| e.id).collect();
    assert_eq!(got, expected, "store contents vs surviving regions");
    assert_eq!(catalog.len(), expected.len());
    assert_eq!(
        catalog.stats().regions_ingested,
        report.tasks_completed as u64
    );
}

#[test]
fn transient_io_failures_heal_with_retry() {
    let (survey, store, init, tasks) = fixture("io");
    let priors = ModelPriors::new(Priors::sdss_default());
    // Every image load fails once per key, then heals: with a retry
    // budget above the per-key cap, the whole campaign completes.
    let faults = FaultPlan {
        seed: 0x10AD,
        io_error_rate: 1.0,
        io_max_per_key: 1,
        ..Default::default()
    };
    let retry = RetryPolicy {
        max_attempts: 4,
        ..Default::default()
    };
    let cfg = quick_cfg(1, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let (tx, rx) = crossbeam::channel::unbounded();
    let (params, report) = run_campaign_with(
        &survey,
        &store,
        &init,
        &tasks,
        &priors,
        &cfg,
        RunOptions {
            sink: Some(&tx),
            clock: Some(clock),
            ..Default::default()
        },
    )
    .unwrap();
    drop(tx);

    assert!(
        report.failed_regions.is_empty(),
        "transient IO faults must heal, got {:?}",
        report.failed_regions
    );
    assert_eq!(report.tasks_completed, tasks.len());
    assert!(report.retries >= 1, "at least one task must have retried");
    let by_id = assert_exactly_once(rx);
    assert_eq!(by_id.len(), tasks.len());
    assert_eq!(params.len(), init.entries.len());
}

#[test]
fn hung_tasks_lose_their_lease_and_are_reissued() {
    let (survey, store, init, tasks) = fixture("hang");
    let priors = ModelPriors::new(Priors::sdss_default());
    let faults = FaultPlan {
        seed: 0x4A46,
        hang_rate: 0.3,
        ..Default::default()
    };
    let retry = RetryPolicy {
        max_attempts: 4,
        lease_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let cfg = quick_cfg(1, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let (tx, rx) = crossbeam::channel::unbounded();
    let (params, report) = run_campaign_with(
        &survey,
        &store,
        &init,
        &tasks,
        &priors,
        &cfg,
        RunOptions {
            sink: Some(&tx),
            clock: Some(clock),
            ..Default::default()
        },
    )
    .unwrap();
    drop(tx);

    // Hangs stall past the deadline, so their completions are refused
    // and the tasks reissued — but a hang is otherwise harmless, so
    // every task eventually lands (a later attempt draws no hang).
    assert!(
        report.leases_expired >= 1,
        "seed should hang at least one task; tune hang_rate"
    );
    assert!(report.stale_results >= 1, "late completions are discarded");
    assert!(
        report.failed_regions.is_empty(),
        "hangs must heal, got {:?}",
        report.failed_regions
    );
    assert_eq!(report.tasks_completed, tasks.len());
    let by_id = assert_exactly_once(rx);
    assert_eq!(by_id.len(), tasks.len());
    assert_eq!(params.len(), init.entries.len());
}

#[test]
fn total_failure_degrades_gracefully_to_an_initialization_catalog() {
    silence_injected_panics();
    let (survey, store, init, tasks) = fixture("total");
    let priors = ModelPriors::new(Priors::sdss_default());
    // Every attempt of every task panics: the campaign quarantines
    // everything and still returns Ok with the init parameters.
    let faults = FaultPlan {
        seed: 0xDEAD,
        panic_rate: 1.0,
        ..Default::default()
    };
    let retry = RetryPolicy {
        max_attempts: 2,
        ..Default::default()
    };
    let cfg = quick_cfg(1, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let (tx, rx) = crossbeam::channel::unbounded();
    let (params, report) = run_campaign_with(
        &survey,
        &store,
        &init,
        &tasks,
        &priors,
        &cfg,
        RunOptions {
            sink: Some(&tx),
            clock: Some(clock),
            ..Default::default()
        },
    )
    .unwrap();
    drop(tx);

    assert_eq!(report.tasks_completed, 0);
    assert_eq!(report.failed_regions.len(), tasks.len());
    for f in &report.failed_regions {
        assert_eq!(f.errors.len(), 2, "two attempts, two errors");
    }
    assert!(rx.iter().next().is_none(), "nothing completed");
    // Quarantined sources keep their initialization parameters.
    let by_id: HashMap<u64, &celeste_core::SourceParams> =
        params.iter().map(|p| (p.id, p)).collect();
    for e in &init.entries {
        let got = by_id[&e.id];
        let want = celeste_core::SourceParams::init_from_entry(e);
        assert_eq!(got.params, want.params, "source {} moved", e.id);
    }
}

#[test]
fn mixed_chaos_on_two_nodes_still_settles_every_task() {
    silence_injected_panics();
    let (survey, store, init, tasks) = fixture("mixed");
    let priors = ModelPriors::new(Priors::sdss_default());
    let faults = FaultPlan {
        seed: 0x3117,
        io_error_rate: 0.3,
        io_max_per_key: 1,
        panic_rate: 0.25,
        slow_rate: 0.5,
        slow_for: Duration::from_millis(40),
        hang_rate: 0.15,
    };
    let retry = RetryPolicy {
        max_attempts: 4,
        lease_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let cfg = quick_cfg(2, retry, faults);
    let clock = Arc::new(VirtualClock::default());
    let (tx, rx) = crossbeam::channel::unbounded();
    let cancel = CancelToken::default();
    let (params, report) = run_campaign_with(
        &survey,
        &store,
        &init,
        &tasks,
        &priors,
        &cfg,
        RunOptions {
            sink: Some(&tx),
            cancel: Some(&cancel),
            clock: Some(clock),
            ..Default::default()
        },
    )
    .unwrap();
    drop(tx);

    // Union coverage: every task either completed (exactly once) or
    // was quarantined — never both, never neither.
    let by_id = assert_exactly_once(rx);
    let quarantined: std::collections::HashSet<u64> =
        report.failed_regions.iter().map(|f| f.task_id).collect();
    for t in &tasks {
        let done = by_id.contains_key(&t.id);
        let failed = quarantined.contains(&t.id);
        assert!(done ^ failed, "task {} done={done} failed={failed}", t.id);
    }
    assert_eq!(
        report.tasks_completed + report.failed_regions.len(),
        tasks.len()
    );
    assert_eq!(params.len(), init.entries.len());
    assert!(!report.cancelled);
}
