//! Facade contract tests: the session API must be a *view* over the
//! legacy free functions, not a different pipeline.
//!
//! * Streaming parity — draining `Session::run_campaign`'s region
//!   stream reproduces the legacy `run_campaign` tuple return
//!   bit-identically, at 1 and 2 executor threads.
//! * Error paths — invalid input (duplicate band, missing r band,
//!   empty task list, unwritable store, non-finite parameters) comes
//!   back as the right `CelesteError` variant instead of a panic.

use celeste::{Celeste, CelesteError, FitConfig, Session};
use celeste_par::ThreadPool;
use celeste_sched::{
    partition_sky, run_campaign, stage_survey, CampaignConfig, PartitionConfig, RegionTask,
};
use celeste_survey::bands::Band;
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Catalog, Image};

fn tiny_survey() -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    })
}

fn quick_fit() -> FitConfig {
    FitConfig {
        bca_passes: 1,
        newton: celeste::NewtonConfig {
            max_iters: 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Initialization catalog, tasks, and a staged store for a campaign.
fn campaign_fixture(
    tag: &str,
) -> (
    SyntheticSurvey,
    ImageStore,
    Catalog,
    Vec<RegionTask>,
    std::path::PathBuf,
) {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-facade-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);
    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    assert!(tasks.len() >= 2, "want multiple tasks, got {}", tasks.len());
    (survey, store, init, tasks, dir)
}

fn parity_session() -> Session {
    // n_nodes = 1 makes the Dtree pop order deterministic, so two
    // independent runs are bitwise comparable; threads = 2 keeps the
    // Cyclades batch structure fixed across executor widths.
    Celeste::builder()
        .threads(2)
        .n_nodes(1)
        .fit(quick_fit())
        .build()
        .unwrap()
}

#[test]
fn streaming_campaign_matches_legacy_batch_bitwise() {
    let (survey, store, init, tasks, dir) = campaign_fixture("parity");
    let session = parity_session();
    // The exact CampaignConfig the session derives, handed to the
    // legacy entry point.
    let legacy_cfg: CampaignConfig = session.config().campaign();
    let priors = session.config().priors.clone();

    // Session (streaming) result: the global executor's width is
    // whatever CELESTE_THREADS says (the CI thread matrix runs this
    // test at 1 and 2); determinism across widths is asserted below.
    let outcome = session
        .run_campaign(&survey, &store, &init, &tasks)
        .unwrap();
    assert_eq!(outcome.report.tasks_completed, tasks.len());
    assert_eq!(outcome.regions.len(), tasks.len());

    // Legacy batch runs at explicit executor widths 1 and 2: every
    // variant must agree with the drained stream bit-for-bit.
    for width in [1usize, 2] {
        let pool = ThreadPool::new(width);
        let (legacy_params, legacy_report) =
            pool.install(|| run_campaign(&survey, &store, &init, &tasks, &priors, &legacy_cfg));
        assert_eq!(legacy_report.tasks_completed, tasks.len());
        assert_eq!(legacy_params.len(), outcome.params.len());
        for (a, b) in outcome.params.iter().zip(&legacy_params) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.params, b.params,
                "source {} diverged from legacy at width {width}",
                a.id
            );
        }
    }

    // The stream is a complete decomposition of the run: replaying
    // the per-task results over the initialization in stage order
    // rebuilds the final catalog exactly.
    let mut replay: std::collections::HashMap<u64, [f64; celeste::model::NUM_PARAMS]> = init
        .entries
        .iter()
        .map(|e| (e.id, celeste::SourceParams::init_from_entry(e).params))
        .collect();
    for stage in 0..=1u8 {
        for region in outcome.regions.iter().filter(|r| r.stage == stage) {
            for sp in &region.sources {
                replay.insert(sp.id, sp.params);
            }
        }
    }
    for sp in &outcome.params {
        assert_eq!(
            replay[&sp.id], sp.params,
            "stream replay diverged for source {}",
            sp.id
        );
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_consumer_sees_results_before_the_campaign_returns() {
    let (survey, store, init, tasks, dir) = campaign_fixture("stream");
    let session = parity_session();
    let n_tasks = tasks.len();
    let (outcome, seen) = session
        .run_campaign_streaming(&survey, &store, &init, &tasks, |stream| {
            // Consume live: every item arrives with real content
            // while later tasks are still being processed.
            let mut seen = 0usize;
            for region in stream {
                assert!(!region.sources.is_empty());
                assert!(region.stats.passes >= 1);
                seen += 1;
            }
            seen
        })
        .unwrap();
    assert_eq!(seen, n_tasks);
    assert!(outcome.regions.is_empty(), "consumer owns the stream");
    assert_eq!(outcome.report.tasks_completed, n_tasks);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

fn one_field_images(survey: &SyntheticSurvey) -> Vec<Image> {
    Band::ALL
        .iter()
        .map(|&b| survey.render_field(&survey.geometry.fields[0], b))
        .collect()
}

#[test]
fn dropping_the_stream_early_cancels_the_campaign_cleanly() {
    let (survey, store, init, tasks, dir) = campaign_fixture("earlydrop");
    // Slow every region by 20ms so the cancellation (set within
    // microseconds of the first result) always lands with work left.
    let session = Celeste::builder()
        .threads(2)
        .n_nodes(1)
        .fit(quick_fit())
        .faults(celeste::FaultPlan {
            slow_rate: 1.0,
            slow_for: std::time::Duration::from_millis(20),
            ..Default::default()
        })
        .build()
        .unwrap();
    let n_tasks = tasks.len();
    // The consumer takes one result and walks away. The campaign must
    // notice, wind down without deadlocking on the dead receiver, and
    // return Ok with the cancellation recorded.
    let (outcome, first) = session
        .run_campaign_streaming(&survey, &store, &init, &tasks, |mut stream| {
            let first = stream.next().expect("at least one region");
            assert!(!first.sources.is_empty());
            first
        })
        .unwrap();
    assert!(
        outcome.report.cancelled,
        "early drop should mark the run cancelled"
    );
    assert!(
        outcome.report.tasks_completed < n_tasks,
        "cancellation should leave work undone ({} of {n_tasks} done)",
        outcome.report.tasks_completed
    );
    assert!(outcome.report.tasks_completed >= 1);
    assert!(outcome.report.failed_regions.is_empty());
    let _ = first;
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_band_is_a_typed_error() {
    let survey = tiny_survey();
    let images = one_field_images(&survey);
    let mut refs: Vec<&Image> = images.iter().collect();
    refs.push(refs[Band::R.index()]); // r twice
    let session = Celeste::session();
    match session.detect(&refs) {
        Err(CelesteError::Photo(celeste::PhotoError::DuplicateBand(b))) => {
            assert_eq!(b, Band::R)
        }
        other => panic!("want DuplicateBand error, got {other:?}"),
    }
}

#[test]
fn missing_r_band_is_a_typed_error() {
    let survey = tiny_survey();
    let images = one_field_images(&survey);
    let refs: Vec<&Image> = images.iter().filter(|i| i.band != Band::R).collect();
    let session = Celeste::session();
    match session.detect(&refs) {
        Err(CelesteError::Photo(celeste::PhotoError::MissingReferenceBand)) => {}
        other => panic!("want MissingReferenceBand error, got {other:?}"),
    }
}

#[test]
fn empty_task_list_is_a_typed_error() {
    let (survey, store, init, _, dir) = campaign_fixture("empty");
    let session = parity_session();
    match session.run_campaign(&survey, &store, &init, &[]) {
        Err(CelesteError::EmptyTaskList) => {}
        other => panic!("want EmptyTaskList error, got {:?}", other.map(|_| ())),
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unwritable_store_is_a_typed_error() {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-facade-gone-{}", std::process::id()));
    let store = ImageStore::open(&dir).unwrap();
    // Yank the directory out from under the store: every save fails.
    std::fs::remove_dir_all(&dir).unwrap();
    let session = Celeste::session();
    match session.stage(&survey, &store) {
        Err(CelesteError::Campaign(celeste::CampaignError::Staging { .. })) => {}
        other => panic!("want Staging error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn non_finite_source_params_are_a_typed_error() {
    let survey = tiny_survey();
    let images = one_field_images(&survey);
    let refs: Vec<&Image> = images.iter().collect();
    let session = Celeste::session();
    let detected = session.detect(&refs).unwrap();
    let mut sources = session.init_sources(&detected);
    assert!(!sources.is_empty());
    let poisoned = sources[0].id;
    sources[0].params[3] = f64::NAN;

    match session.fit_region(&mut sources, &refs, &[], 1) {
        Err(CelesteError::Fit {
            source_id: Some(id),
            error: celeste::FitError::NonFiniteParam { index: 3, .. },
        }) => assert_eq!(id, poisoned),
        other => panic!("want NonFiniteParam error, got {:?}", other.map(|_| ())),
    }

    // Single-source path reports the same class of error.
    match session.fit_source(&mut sources[0], &refs, &[]) {
        Err(CelesteError::Fit {
            error: celeste::FitError::NonFiniteParam { .. },
            ..
        }) => {}
        other => panic!("want NonFiniteParam error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn non_finite_image_pixels_are_a_typed_error() {
    let survey = tiny_survey();
    let mut images = one_field_images(&survey);
    images[2].pixels[5] = f32::NAN;
    let refs: Vec<&Image> = images.iter().collect();
    let session = Celeste::session();
    let mut sources = session.init_sources(&survey.truth);
    match session.fit_region(&mut sources, &refs, &[], 1) {
        Err(CelesteError::Fit {
            error: celeste::FitError::NonFinitePixel { block: 2, pixel: 5 },
            ..
        }) => {}
        other => panic!("want NonFinitePixel error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn non_finite_calibration_is_a_typed_error() {
    let survey = tiny_survey();
    let mut images = one_field_images(&survey);
    images[1].sky_level = f64::NAN;
    let refs: Vec<&Image> = images.iter().collect();
    let session = Celeste::session();
    let mut sources = session.init_sources(&survey.truth);
    match session.fit_region(&mut sources, &refs, &[], 1) {
        Err(CelesteError::Fit {
            error: celeste::FitError::NonFiniteCalibration { block: 1 },
            ..
        }) => {}
        other => panic!(
            "want NonFiniteCalibration error, got {:?}",
            other.map(|_| ())
        ),
    }

    // The single-source path catches the same corruption through the
    // assembled problem (eps = sky_level reaches the active pixels).
    // Pick a source actually inside the poisoned field so its problem
    // has blocks there.
    let rect = survey.geometry.fields[0].rect;
    let idx = survey
        .truth
        .entries
        .iter()
        .position(|e| rect.contains(&e.pos))
        .expect("a source in field 0");
    match session.fit_source(&mut sources[idx], &refs, &[]) {
        Err(CelesteError::Fit { .. }) => {}
        other => panic!("want Fit error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn builder_rejects_invalid_knobs() {
    match Celeste::builder().threads(0).build() {
        Err(CelesteError::Config { field, .. }) => assert_eq!(field, "threads"),
        other => panic!("want Config error, got {:?}", other.map(|_| ())),
    }
    match Celeste::builder().dtree_fanout(1).build() {
        Err(CelesteError::Config { field, .. }) => assert_eq!(field, "dtree_fanout"),
        other => panic!("want Config error, got {:?}", other.map(|_| ())),
    }
    let bad_fit = FitConfig {
        cull_tol: f64::NAN,
        ..Default::default()
    };
    match Celeste::builder().fit(bad_fit).build() {
        Err(CelesteError::Config { field, .. }) => assert_eq!(field, "fit.cull_tol"),
        other => panic!("want Config error, got {:?}", other.map(|_| ())),
    }
    let bad_retry = celeste::RetryPolicy {
        max_attempts: 0,
        ..Default::default()
    };
    match Celeste::builder().retry(bad_retry).build() {
        Err(CelesteError::Config { field, .. }) => assert_eq!(field, "retry.max_attempts"),
        other => panic!("want Config error, got {:?}", other.map(|_| ())),
    }
    let bad_faults = celeste::FaultPlan {
        panic_rate: 1.5,
        ..Default::default()
    };
    match Celeste::builder().faults(bad_faults).build() {
        Err(CelesteError::Config { field, .. }) => assert_eq!(field, "faults.panic_rate"),
        other => panic!("want Config error, got {:?}", other.map(|_| ())),
    }
}
