//! Catalog-daemon integration suite: a served catalog must be the
//! in-process store made remote, never a different catalog.
//!
//! * Parity — every query shape answered over TCP is bit-identical
//!   to the in-process `CatalogStore`/`ServedStore` answer.
//! * Concurrency — 64 simultaneous client connections poll (with
//!   invariant checks) while a campaign is still ingesting, then all
//!   64 run the same query battery and must agree bit-exactly.
//! * Persistence — shutdown writes an `SCST` snapshot; a restarted
//!   daemon serves the identical catalog instantly with zero refits.
//! * Eviction — a daemon bounded far below the catalog size spills
//!   cold cells to the snapshot and still answers bit-identically,
//!   faulting them back in on demand.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use celeste::{
    CatalogClient, CatalogQuery, Celeste, FitConfig, ServeConfig, ServedStore, Session,
    SourceFilter, SourceType,
};
use celeste_sched::{partition_sky, stage_survey, PartitionConfig, RegionTask};
use celeste_survey::bands::Band;
use celeste_survey::catalog::CatalogEntry;
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::{GeometryConfig, SkyCoord, SkyRect};
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::Catalog;

fn tiny_survey() -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    })
}

fn campaign_fixture(
    tag: &str,
) -> (
    SyntheticSurvey,
    ImageStore,
    Catalog,
    Vec<RegionTask>,
    std::path::PathBuf,
) {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);
    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    assert!(tasks.len() >= 2, "want multiple tasks, got {}", tasks.len());
    (survey, store, init, tasks, dir)
}

fn parity_session() -> Session {
    Celeste::builder()
        .threads(2)
        .n_nodes(1)
        .fit(FitConfig {
            bca_passes: 1,
            newton: celeste::NewtonConfig {
                max_iters: 10,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap()
}

fn probes(survey: &SyntheticSurvey) -> (SkyRect, SkyCoord, SourceFilter) {
    let window = survey.geometry.footprint;
    let center = SkyCoord::new(
        0.5 * (window.ra_min + window.ra_max),
        0.5 * (window.dec_min + window.dec_max),
    );
    let filter = SourceFilter {
        source_type: Some(SourceType::Galaxy),
        min_flux: Some((Band::R, 0.5)),
    };
    (window, center, filter)
}

/// Everything a daemon can answer, with separations bit-collapsed so
/// derived equality is bit-exact end to end.
#[derive(Debug, PartialEq)]
struct Battery {
    cone: Vec<(CatalogEntry, u64)>,
    rect: Vec<CatalogEntry>,
    bright: Vec<CatalogEntry>,
    windowed: Vec<CatalogEntry>,
}

fn remote_battery(client: &mut CatalogClient, survey: &SyntheticSurvey) -> Battery {
    let (window, center, filter) = probes(survey);
    Battery {
        cone: client
            .cone_search(&center, 2.0 * 3600.0)
            .unwrap()
            .into_iter()
            .map(|(e, s)| (e, s.to_bits()))
            .collect(),
        rect: client.rect_search(&window, &filter).unwrap(),
        bright: client.brightest_n(7, None).unwrap(),
        windowed: client.brightest_n(7, Some(&window)).unwrap(),
    }
}

fn local_battery(served: &ServedStore, survey: &SyntheticSurvey) -> Battery {
    let (window, center, filter) = probes(survey);
    Battery {
        cone: served
            .cone_search(&center, 2.0 * 3600.0)
            .unwrap()
            .into_iter()
            .map(|(e, s)| (e, s.to_bits()))
            .collect(),
        rect: served
            .query(&CatalogQuery::Rect {
                rect: window,
                filter,
            })
            .unwrap(),
        bright: served
            .query(&CatalogQuery::BrightestN { n: 7, within: None })
            .unwrap(),
        windowed: served
            .query(&CatalogQuery::BrightestN {
                n: 7,
                within: Some(window),
            })
            .unwrap(),
    }
}

fn assert_batteries_bitwise_equal(got: &Battery, want: &Battery, what: &str) {
    assert_eq!(got, want, "{what}: batteries diverged");
    assert!(!want.cone.is_empty(), "{what}: cone probe found nothing");
    assert!(!want.rect.is_empty(), "{what}: rect probe found nothing");
    for ((g, gs), (w, ws)) in got.cone.iter().zip(&want.cone) {
        assert_eq!(g.flux_r_nmgy.to_bits(), w.flux_r_nmgy.to_bits());
        assert_eq!(g.pos.ra.to_bits(), w.pos.ra.to_bits());
        assert_eq!(gs, ws, "{what}: separation bits diverged for {}", g.id);
    }
}

#[test]
fn daemon_answers_bit_identically_to_the_in_process_store() {
    let (survey, store, init, tasks, dir) = campaign_fixture("parity");
    let session = parity_session();
    let daemon = session
        .serve("127.0.0.1:0", &ServeConfig::default())
        .unwrap();
    session
        .run_campaign_into_store(&survey, &store, &init, &tasks, daemon.store().store())
        .unwrap();

    let mut client = CatalogClient::connect(daemon.addr()).unwrap();
    let remote = remote_battery(&mut client, &survey);
    let local = local_battery(daemon.store(), &survey);
    assert_batteries_bitwise_equal(&remote, &local, "remote vs in-process");

    // The raw (unwrapped) store agrees too: ServedStore at capacity 0
    // is transparent and the wire adds nothing.
    let (window, center, _) = probes(&survey);
    let raw: Vec<(CatalogEntry, u64)> = daemon
        .store()
        .store()
        .cone_search(&center, 2.0 * 3600.0)
        .unwrap()
        .into_iter()
        .map(|(e, s)| (e, s.to_bits()))
        .collect();
    assert_eq!(remote.cone, raw, "wire vs raw store cone");
    assert_eq!(
        client.brightest_n(3, Some(&window)).unwrap(),
        daemon.store().store().brightest_n(3, Some(&window)),
    );

    drop(client);
    daemon.shutdown().unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sixty_four_concurrent_clients_agree_mid_ingest_and_after() {
    let (survey, store, init, tasks, dir) = campaign_fixture("swarm");
    let session = parity_session();
    let config = ServeConfig {
        max_connections: 64,
        ..ServeConfig::default()
    };
    let daemon = session.serve("127.0.0.1:0", &config).unwrap();
    let addr = daemon.addr();
    let (window, center, _) = probes(&survey);

    // All 64 connections are live (and served concurrently) before
    // the campaign starts.
    let mut clients: Vec<CatalogClient> = (0..64)
        .map(|i| {
            let mut c = CatalogClient::connect(addr)
                .unwrap_or_else(|e| panic!("client {i} failed to connect: {e}"));
            c.ping().unwrap();
            c
        })
        .collect();

    let done = AtomicBool::new(false);
    let batteries: Vec<Battery> = std::thread::scope(|s| {
        let done = &done;
        let survey = &survey;
        let handles: Vec<_> = clients
            .drain(..)
            .map(|mut client| {
                s.spawn(move || {
                    let mut polls = 0u64;
                    while !done.load(Ordering::Acquire) {
                        // Mid-ingest answers are consistent snapshots:
                        // sorted, duplicate-free, never larger than
                        // the store they came from.
                        let cone = client.cone_search(&center, 3.0 * 3600.0).unwrap();
                        assert!(cone.windows(2).all(|w| w[0].1 <= w[1].1));
                        let rect = client
                            .rect_search(&window, &SourceFilter::default())
                            .unwrap();
                        assert!(rect.windows(2).all(|w| w[0].id < w[1].id));
                        let bright = client.brightest_n(5, None).unwrap();
                        assert!(bright
                            .windows(2)
                            .all(|w| w[0].flux_r_nmgy >= w[1].flux_r_nmgy));
                        let stats = client.stats().unwrap();
                        assert!(
                            rect.len() <= stats.entries,
                            "rect exceeded a later stats read"
                        );
                        polls += 1;
                        // Keep polling pressure low enough that the
                        // 2-thread campaign underneath makes progress.
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    assert!(polls > 0, "client never observed the store");
                    remote_battery(&mut client, survey)
                })
            })
            .collect();
        session
            .run_campaign_into_store(survey, &store, &init, &tasks, daemon.store().store())
            .unwrap();
        done.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // After ingest every client sees the complete catalog, and all
    // 64 answers are bit-identical to the in-process battery.
    let local = local_battery(daemon.store(), &survey);
    for (i, battery) in batteries.iter().enumerate() {
        assert_batteries_bitwise_equal(battery, &local, &format!("client {i}"));
    }
    daemon.shutdown().unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_from_snapshot_is_bit_identical_with_zero_refits() {
    let (survey, store, init, tasks, dir) = campaign_fixture("restart");
    let session = parity_session();
    let config = ServeConfig {
        snapshot: Some(dir.join("catalog.scst")),
        snapshot_on_shutdown: true,
        ..ServeConfig::default()
    };

    let daemon = session.serve("127.0.0.1:0", &config).unwrap();
    session
        .run_campaign_into_store(&survey, &store, &init, &tasks, daemon.store().store())
        .unwrap();
    let mut client = CatalogClient::connect(daemon.addr()).unwrap();
    let before = remote_battery(&mut client, &survey);
    let entries_before = client.stats().unwrap().entries;
    drop(client);
    daemon.shutdown().unwrap();

    // The restarted daemon answers from the snapshot alone: the full
    // catalog, bit-identical, without refitting a single region.
    let reborn = session.serve("127.0.0.1:0", &config).unwrap();
    let mut client = CatalogClient::connect(reborn.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.entries, entries_before, "snapshot lost entries");
    assert_eq!(stats.entries, init.len(), "snapshot must carry the catalog");
    assert_eq!(stats.regions_ingested, 0, "restart must refit nothing");
    let after = remote_battery(&mut client, &survey);
    assert_batteries_bitwise_equal(&after, &before, "restarted vs original");
    drop(client);
    reborn.shutdown().unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn capacity_bounded_daemon_spills_and_answers_bit_identically() {
    let (survey, store, init, tasks, dir) = campaign_fixture("evict");
    let session = parity_session();
    let unbounded = ServeConfig {
        snapshot: Some(dir.join("catalog.scst")),
        snapshot_on_shutdown: true,
        ..ServeConfig::default()
    };
    let daemon = session.serve("127.0.0.1:0", &unbounded).unwrap();
    session
        .run_campaign_into_store(&survey, &store, &init, &tasks, daemon.store().store())
        .unwrap();
    let mut client = CatalogClient::connect(daemon.addr()).unwrap();
    let want = remote_battery(&mut client, &survey);
    drop(client);
    daemon.shutdown().unwrap();

    // Reopen bounded far below the catalog size: cold cells live
    // only in the snapshot file, yet every answer is bit-identical —
    // queries fault their coverage back in transparently.
    let bounded = ServeConfig {
        max_resident_entries: init.len() / 4,
        ..unbounded.clone()
    };
    let daemon = session.serve("127.0.0.1:0", &bounded).unwrap();
    assert!(
        daemon.store().spilled_cells() > 0,
        "a bound of {} over {} entries must spill",
        init.len() / 4,
        init.len()
    );
    let mut client = CatalogClient::connect(daemon.addr()).unwrap();
    for round in 0..3 {
        let got = remote_battery(&mut client, &survey);
        assert_batteries_bitwise_equal(&got, &want, &format!("bounded round {round}"));
        assert!(
            daemon.store().stats().entries <= init.len(),
            "resident set leaked past the catalog"
        );
    }
    // The union view still covers everything despite the spills.
    let full = daemon.catalog().unwrap();
    assert_eq!(full.len(), init.len(), "catalog() must union in the spills");
    drop(client);
    daemon.shutdown().unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
