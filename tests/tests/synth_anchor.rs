//! The tier-1 correctness anchor for kernel changes: synthesize a
//! small multi-band field via `survey::synth`, run the full fit
//! through the production configuration (culled geometry kernel,
//! workspace-backed trust-region solver), and require the recovered
//! fluxes and positions to match ground truth within tight tolerances
//! at a fixed seed.
//!
//! Any future change to the per-pixel kernels (culling bounds, lane
//! layout, FMA dispatch, Hessian packing) or to the Newton/linalg
//! stack must keep this green — it is the end-to-end statement that
//! the optimizations are error-free where it counts.

use celeste_core::{optimize_sources, FitConfig, ModelPriors, SourceParams};
use celeste_survey::bands::Band;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Image, Priors};

#[test]
fn synth_field_recovery_anchor() {
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 1,
            deep_stripe: None,
            epochs_per_stripe: 1,
            stripe_overlap: 0.0,
            field_overlap: 0.0,
            stripe_height_deg: 0.03,
            field_width_deg: 0.03,
            ..GeometryConfig::default()
        },
        pixels_per_field: 128,
        source_density_per_sq_deg: 15_000.0,
        seed: 0x1234,
        ..SurveyConfig::default()
    });
    let field = &survey.geometry.fields[0];
    let images: Vec<Image> = Band::ALL
        .iter()
        .map(|&b| survey.render_field(field, b))
        .collect();
    let refs: Vec<&Image> = images.iter().collect();

    // Initialize from systematically corrupted truth: fluxes 40% low,
    // positions off by ~0.4 arcsec — the fit must pull both back.
    let truth: Vec<_> = survey
        .truth
        .in_rect(&field.rect)
        .into_iter()
        .cloned()
        .collect();
    assert!(truth.len() >= 3, "anchor scene too sparse: {}", truth.len());
    let mut sources: Vec<SourceParams> = truth
        .iter()
        .map(|e| {
            let mut init = e.clone();
            init.flux_r_nmgy *= 0.6;
            init.pos.ra += 0.4 / 3600.0;
            SourceParams::init_from_entry(&init)
        })
        .collect();

    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = FitConfig::default(); // production path: culling enabled
    let stats = optimize_sources(&mut sources, &refs, &priors, &cfg);
    assert_eq!(stats.passes, cfg.bca_passes);
    assert!(stats.fits >= sources.len());

    // Bright, *isolated* sources anchor the bar: faint ones are
    // noise-dominated, and close blends trade flux between companions
    // (a model degeneracy, not a kernel property).
    let isolated = |e: &celeste_survey::catalog::CatalogEntry| {
        truth
            .iter()
            .all(|o| o.id == e.id || o.pos.sep_arcsec(&e.pos) > 8.0)
    };
    let mut checked = 0;
    for (sp, e) in sources.iter().zip(&truth) {
        if e.flux_r_nmgy < 6.0 || !isolated(e) {
            continue;
        }
        let fitted = sp.to_entry();
        let flux_rel = (fitted.flux_r_nmgy - e.flux_r_nmgy).abs() / e.flux_r_nmgy;
        assert!(
            flux_rel < 0.2,
            "source {}: flux {} vs truth {} (rel {flux_rel:.3})",
            e.id,
            fitted.flux_r_nmgy,
            e.flux_r_nmgy
        );
        let sep = fitted.pos.sep_arcsec(&e.pos);
        assert!(
            sep < 0.25,
            "source {}: position off by {sep:.3} arcsec",
            e.id
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "anchor needs at least 2 bright sources, got {checked}"
    );
}
