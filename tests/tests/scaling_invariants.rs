//! Integration tests of the scheduling + simulation stack: invariants
//! that the paper's scaling claims rest on.

use celeste_cluster::{default_calibration, simulate_run, ClusterConfig};
use celeste_core::SourceParams;
use celeste_sched::{conflict_graph, partition_sky, sample_batches, Dtree, PartitionConfig};
use celeste_survey::priors::Priors;
use celeste_survey::skygeom::{SkyCoord, SkyRect};
use celeste_survey::Catalog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_catalog(n: usize, seed: u64) -> (Catalog, SkyRect) {
    let fp = SkyRect::new(0.0, 0.5, 0.0, 0.5);
    let priors = Priors::sdss_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = (0..n)
        .map(|i| {
            let pos = SkyCoord::new(rng.random::<f64>() * 0.5, rng.random::<f64>() * 0.5);
            priors.sample_entry(&mut rng, i as u64, pos)
        })
        .collect();
    (Catalog::new(entries), fp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partition_covers_all_sources_both_stages(
        n in 200..800usize,
        seed in 0..500u64,
        target in 500.0..5000.0f64,
    ) {
        let (cat, fp) = random_catalog(n, seed);
        let tasks = partition_sky(&cat, &fp, &PartitionConfig {
            target_work: target,
            ..Default::default()
        });
        for stage in 0..2u8 {
            let mut seen = vec![0u8; n];
            for t in tasks.iter().filter(|t| t.stage == stage) {
                for &i in &t.source_indices {
                    seen[i] += 1;
                }
            }
            prop_assert!(
                seen.iter().all(|&c| c == 1),
                "stage {} coverage broken", stage
            );
        }
    }

    #[test]
    fn dtree_exactly_once_under_any_worker_count(
        workers in 1..24usize,
        tasks in 1..2000usize,
    ) {
        let dt = std::sync::Arc::new(Dtree::new(workers, 4, (0..tasks).collect::<Vec<_>>()));
        let counts: Vec<std::sync::atomic::AtomicUsize> =
            (0..tasks).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let dt = std::sync::Arc::clone(&dt);
                let counts = &counts;
                s.spawn(move || {
                    while let Some(t) = dt.pop(w) {
                        counts[t].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        for c in &counts {
            prop_assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn cyclades_never_splits_conflicts(
        n in 20..150usize,
        seed in 0..200u64,
        threads in 2..8usize,
    ) {
        let (cat, _) = random_catalog(n, seed);
        let sources: Vec<SourceParams> =
            cat.entries.iter().map(SourceParams::init_from_entry).collect();
        let graph = conflict_graph(&sources, 20.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let batches = sample_batches(&mut rng, &graph, threads, (n / 3).max(1));
        for batch in &batches {
            let mut thread_of = std::collections::HashMap::new();
            for (t, list) in batch.iter().enumerate() {
                for &v in list {
                    thread_of.insert(v, t);
                }
            }
            for (&v, &tv) in &thread_of {
                for &w in &graph.adj[v] {
                    if let Some(&tw) = thread_of.get(&w) {
                        prop_assert_eq!(tv, tw, "conflict {} {} split", v, w);
                    }
                }
            }
        }
    }

    #[test]
    fn simulator_components_always_conserve(
        nodes in 1..64usize,
        tasks_per_proc in 1..12usize,
        seed in 0..100u64,
    ) {
        let cal = default_calibration();
        let cfg = ClusterConfig { nodes, ..Default::default() };
        let total = nodes * cfg.processes_per_node * tasks_per_proc;
        let r = simulate_run(&cal, &cfg, total, seed, false);
        let c = &r.components;
        let sum = c.image_loading + c.task_processing + c.load_imbalance + c.other;
        prop_assert!(
            (sum - r.makespan).abs() < 1e-6 * r.makespan.max(1.0),
            "sum {} vs makespan {}", sum, r.makespan
        );
        prop_assert!(c.task_processing > 0.0);
        prop_assert!(c.load_imbalance >= 0.0);
    }
}

#[test]
fn weak_scaling_shape_matches_paper() {
    // Fig. 4's qualitative claims, asserted end to end on the simulator:
    // flat task processing and image loading, growing imbalance, total
    // runtime growth in a band around the paper's 1.9×.
    let cal = default_calibration();
    let run = |nodes: usize| {
        simulate_run(
            &cal,
            &ClusterConfig {
                nodes,
                ..Default::default()
            },
            nodes * 68,
            42,
            false,
        )
    };
    let small = run(1);
    let large = run(1024);
    let tp_ratio = large.components.task_processing / small.components.task_processing;
    assert!(
        (tp_ratio - 1.0).abs() < 0.15,
        "task processing ratio {tp_ratio}"
    );
    let io_ratio = large.components.image_loading / small.components.image_loading;
    assert!(
        (io_ratio - 1.0).abs() < 0.25,
        "image loading ratio {io_ratio}"
    );
    assert!(large.components.load_imbalance > 1.5 * small.components.load_imbalance);
    let growth = large.makespan / small.makespan;
    assert!(
        growth > 1.05 && growth < 3.5,
        "total runtime growth {growth}"
    );
}

#[test]
fn strong_scaling_efficiency_band() {
    // Fig. 5: 65% efficiency 2k→4k and 50% 2k→8k in the paper; assert
    // the simulator lands in a sensible band with the same ordering.
    let cal = default_calibration();
    let run = |nodes: usize| {
        simulate_run(
            &cal,
            &ClusterConfig {
                nodes,
                ..Default::default()
            },
            557_056,
            7,
            false,
        )
    };
    let r2k = run(2048);
    let r4k = run(4096);
    let r8k = run(8192);
    let eff_4k = (r2k.makespan / r4k.makespan) / 2.0;
    let eff_8k = (r2k.makespan / r8k.makespan) / 4.0;
    assert!(eff_4k > eff_8k, "efficiency must fall with scale");
    assert!(eff_4k > 0.4 && eff_4k <= 1.01, "2k→4k efficiency {eff_4k}");
    assert!(eff_8k > 0.25 && eff_8k <= 1.01, "2k→8k efficiency {eff_8k}");
}

#[test]
fn flop_accounting_matches_between_real_and_simulated() {
    // Active-pixel visits measured by the real likelihood kernel drive
    // the Table I accounting; verify the counter wiring end to end.
    celeste_core::flops::reset_visits();
    let report = celeste_bench::run_calibration_campaign(0xF10B);
    assert!(
        report.active_pixel_visits > 10_000,
        "visits {}",
        report.active_pixel_visits
    );
    let fpv = celeste_bench::audit_flops_per_visit();
    let cal = celeste_cluster::calibrate_from_report(&report, fpv);
    assert!(cal.flops_per_proc > 1e6, "flop rate {}", cal.flops_per_proc);
}
