//! Parallel-vs-serial bit-identity across thread counts.
//!
//! The executor's drivers assemble order-sensitive results
//! left-to-right and every randomized stage derives its RNG stream
//! from data indices (rows, fields), never from thread identity — so
//! rendering, synthesis, and coadds must produce *bit-identical*
//! output at 1, 2, and 4 threads. These tests pin that contract; a
//! failure means some stage picked up thread-dependent state.

use celeste_par::ThreadPool;
use celeste_survey::bands::Band;
use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::coadd::coadd;
use celeste_survey::psf::Psf;
use celeste_survey::render::{render_expected, render_observed};
use celeste_survey::skygeom::{FieldId, GeometryConfig, SkyCoord, SkyRect};
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::wcs::Wcs;
use celeste_survey::Image;

const WIDTHS: [usize; 3] = [1, 2, 4];

fn test_catalog() -> Catalog {
    let entries: Vec<CatalogEntry> = (0..24)
        .map(|i| {
            let gal = i % 3 == 0;
            CatalogEntry {
                id: i,
                pos: SkyCoord::new(
                    0.002 + 0.016 * ((i * 7 % 24) as f64 / 24.0),
                    0.002 + 0.016 * ((i * 11 % 24) as f64 / 24.0),
                ),
                source_type: if gal {
                    SourceType::Galaxy
                } else {
                    SourceType::Star
                },
                flux_r_nmgy: 2.0 + i as f64,
                colors: [0.3, 0.15, 0.08, 0.02],
                shape: GalaxyShape {
                    frac_dev: 0.3,
                    axis_ratio: 0.6,
                    angle_rad: 0.4 * i as f64,
                    radius_arcsec: 1.8,
                },
            }
        })
        .collect();
    Catalog::new(entries)
}

fn blank_image() -> Image {
    let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
    Image::blank(
        FieldId {
            run: 9,
            camcol: 2,
            field: 1,
        },
        Band::R,
        Wcs::for_rect(&rect, 96, 96),
        96,
        96,
        120.0,
        300.0,
        Psf::core_halo(1.4),
    )
}

#[test]
fn render_catalog_is_bit_identical_across_thread_counts() {
    let cat = test_catalog();
    let reference_expected = ThreadPool::new(1).install(|| render_expected(&cat, &blank_image()));
    let reference_observed = ThreadPool::new(1).install(|| {
        let mut img = blank_image();
        render_observed(&cat, &mut img, 42);
        img.pixels
    });
    for width in WIDTHS {
        let pool = ThreadPool::new(width);
        let expected = pool.install(|| render_expected(&cat, &blank_image()));
        assert_eq!(
            expected, reference_expected,
            "render_expected diverged at {width} threads"
        );
        let observed = pool.install(|| {
            let mut img = blank_image();
            render_observed(&cat, &mut img, 42);
            img.pixels
        });
        assert_eq!(
            observed, reference_observed,
            "render_observed diverged at {width} threads"
        );
    }
}

fn small_survey_config() -> SurveyConfig {
    SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 2,
            fields_per_stripe: 2,
            deep_stripe: Some(0),
            deep_epochs: 2,
            ..GeometryConfig::default()
        },
        pixels_per_field: 48,
        source_density_per_sq_deg: 3000.0,
        ..SurveyConfig::default()
    }
}

#[test]
fn synth_render_all_is_bit_identical_across_thread_counts() {
    let survey = SyntheticSurvey::generate(small_survey_config());
    let reference: Vec<Vec<f32>> = ThreadPool::new(1).install(|| {
        survey
            .render_all()
            .into_iter()
            .map(|img| img.pixels)
            .collect()
    });
    assert!(!reference.is_empty());
    for width in WIDTHS {
        let got: Vec<Vec<f32>> = ThreadPool::new(width).install(|| {
            survey
                .render_all()
                .into_iter()
                .map(|img| img.pixels)
                .collect()
        });
        assert_eq!(got, reference, "render_all diverged at {width} threads");
    }
}

#[test]
fn coadd_is_bit_identical_across_thread_counts() {
    let cat = test_catalog();
    let exposures: Vec<Image> = (0..8)
        .map(|e| {
            let mut img = blank_image();
            render_observed(&cat, &mut img, 1000 + e);
            img
        })
        .collect();
    let refs: Vec<&Image> = exposures.iter().collect();
    let reference = ThreadPool::new(1).install(|| coadd(&refs).pixels);
    for width in WIDTHS {
        let got = ThreadPool::new(width).install(|| coadd(&refs).pixels);
        assert_eq!(got, reference, "coadd diverged at {width} threads");
    }
}

#[test]
fn process_region_is_bit_identical_across_thread_counts() {
    // Cyclades batches are drawn from the seeded RNG (pool-width
    // independent) and every fit in a batch reads the same frozen
    // snapshot, so even the optimizer's output is reproducible across
    // pool widths for a fixed batch-width parameter.
    use celeste_core::{FitConfig, ModelPriors, SourceParams};
    use celeste_survey::Priors;

    let cat = test_catalog();
    let mut img = blank_image();
    render_observed(&cat, &mut img, 7);
    let images = [&img];
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = FitConfig {
        bca_passes: 2,
        ..Default::default()
    };
    let init = || -> Vec<SourceParams> {
        cat.entries
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.flux_r_nmgy *= 0.7;
                SourceParams::init_from_entry(&e)
            })
            .collect()
    };
    let reference = ThreadPool::new(1).install(|| {
        let mut sources = init();
        celeste_sched::process_region(&mut sources, &images, &[], &priors, &cfg, 3, 99);
        sources
    });
    for width in WIDTHS {
        let got = ThreadPool::new(width).install(|| {
            let mut sources = init();
            celeste_sched::process_region(&mut sources, &images, &[], &priors, &cfg, 3, 99);
            sources
        });
        for (a, b) in got.iter().zip(&reference) {
            assert_eq!(
                a.params, b.params,
                "process_region diverged at {width} threads for source {}",
                a.id
            );
        }
    }
}
