//! Cross-crate integration tests: the full pipeline from synthetic
//! survey through inference to validation.

use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_photo::compare::CompareConfig;
use celeste_photo::{compare_catalogs, run_photo, PhotoConfig};
use celeste_sched::{partition_sky, run_campaign, stage_survey, CampaignConfig, PartitionConfig};
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Catalog, Image, Priors};

fn validation_survey(seed: u64) -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 1,
            deep_stripe: Some(0),
            deep_epochs: 6,
            stripe_overlap: 0.0,
            field_overlap: 0.0,
            stripe_height_deg: 0.03,
            field_width_deg: 0.03,
            ..GeometryConfig::default()
        },
        pixels_per_field: 192,
        source_density_per_sq_deg: 20_000.0,
        seed,
        ..SurveyConfig::default()
    })
}

fn single_epoch_images(survey: &SyntheticSurvey) -> Vec<Image> {
    celeste_survey::bands::Band::ALL
        .iter()
        .map(|&b| survey.render_field(&survey.geometry.fields[0], b))
        .collect()
}

#[test]
fn photo_then_celeste_beats_photo_alone() {
    let survey = validation_survey(0x17E5);
    let images = single_epoch_images(&survey);
    let refs: Vec<&Image> = images.iter().collect();

    let photo_catalog = run_photo(&refs, &PhotoConfig::default());
    assert!(
        photo_catalog.len() >= 3,
        "Photo found only {}",
        photo_catalog.len()
    );

    let priors = ModelPriors::new(Priors::sdss_default());
    let fit = FitConfig {
        bca_passes: 1,
        ..Default::default()
    };
    let mut sources: Vec<SourceParams> = photo_catalog
        .entries
        .iter()
        .map(SourceParams::init_from_entry)
        .collect();
    celeste_sched::process_region(&mut sources, &refs, &[], &priors, &fit, 4, 7);
    let celeste_catalog = Catalog::new(sources.iter().map(|s| s.to_entry()).collect());

    let cfg = CompareConfig {
        pixel_scale_arcsec: images[0].wcs.pixel_scale_arcsec(),
        min_flux_nmgy: 3.0,
        ..Default::default()
    };
    let truth = Catalog::new(
        survey
            .truth
            .in_rect(&survey.geometry.fields[0].rect)
            .into_iter()
            .cloned()
            .collect(),
    );
    let photo_t = compare_catalogs(&truth, &photo_catalog, &cfg);
    let celeste_t = compare_catalogs(&truth, &celeste_catalog, &cfg);
    assert!(
        photo_t.position.n >= 3,
        "too few matches: {}",
        photo_t.position.n
    );

    // The headline science claim, end to end: the Bayesian fit is at
    // least as accurate as the heuristic on brightness and colors.
    assert!(
        celeste_t.brightness.mean <= photo_t.brightness.mean * 1.15,
        "brightness: celeste {} vs photo {}",
        celeste_t.brightness.mean,
        photo_t.brightness.mean
    );
    let celeste_color: f64 = celeste_t.colors.iter().map(|r| r.mean).sum();
    let photo_color: f64 = photo_t.colors.iter().map(|r| r.mean).sum();
    assert!(
        celeste_color < photo_color,
        "colors: celeste {celeste_color} vs photo {photo_color}"
    );
}

#[test]
fn campaign_matches_direct_region_processing() {
    // The distributed path (partition → Dtree → PGAS → Cyclades) must
    // produce the same science as calling the optimizer directly.
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 96,
        source_density_per_sq_deg: 2000.0,
        seed: 0xABCD,
        ..SurveyConfig::default()
    });
    let dir = std::env::temp_dir().join(format!("celeste-int-campaign-{}", std::process::id()));
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);

    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.6;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 500.0,
            max_sources: 30,
            ..Default::default()
        },
    );
    let priors = ModelPriors::new(Priors::sdss_default());
    let fit = FitConfig {
        bca_passes: 1,
        newton: celeste_core::NewtonConfig {
            max_iters: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    let cfg = CampaignConfig {
        n_nodes: 2,
        threads_per_node: 2,
        fit,
        ..Default::default()
    };
    let (fitted, report) = run_campaign(&survey, &store, &init, &tasks, &priors, &cfg);

    assert_eq!(report.tasks_completed, tasks.len());
    // Bright-source fluxes from the campaign path approach truth.
    let mut checked = 0;
    for (sp, truth_e) in fitted.iter().zip(&survey.truth.entries) {
        assert_eq!(sp.id, truth_e.id);
        if truth_e.flux_r_nmgy < 15.0 {
            continue;
        }
        let rel = (sp.to_entry().flux_r_nmgy - truth_e.flux_r_nmgy).abs() / truth_e.flux_r_nmgy;
        assert!(rel < 0.3, "source {}: rel err {rel}", sp.id);
        checked += 1;
    }
    assert!(checked >= 1, "no bright sources checked");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulator_calibration_roundtrip() {
    // Calibrate the cluster simulator from a real campaign and verify
    // the simulated single-node run is in the measured ballpark.
    let report = celeste_bench::run_calibration_campaign(0x51CA);
    assert!(!report.task_durations.is_empty());
    let cal = celeste_cluster::calibrate_from_report(&report, 10_000.0);
    let mean_measured =
        report.task_durations.iter().sum::<f64>() / report.task_durations.len() as f64;
    let mean_model = cal.task_duration.mean();
    assert!(
        (mean_model / mean_measured - 1.0).abs() < 0.5,
        "calibrated mean {mean_model} vs measured {mean_measured}"
    );

    let sim = celeste_cluster::simulate_run(
        &cal,
        &celeste_cluster::ClusterConfig {
            nodes: 1,
            processes_per_node: 2,
            threads_per_process: 2,
            calibration_threads: 2,
            ..Default::default()
        },
        report.task_durations.len(),
        3,
        false,
    );
    // Simulated per-process task time should be within 2× of reality
    // (it is the same duration distribution by construction).
    let real_total: f64 = report.task_durations.iter().sum();
    let sim_total = sim.components.task_processing * sim.processes as f64;
    assert!(
        (sim_total / real_total).max(real_total / sim_total) < 2.0,
        "sim {sim_total} vs real {real_total}"
    );
}

#[test]
fn uncertainty_calibration_on_repeated_noise() {
    // Fit the same bright star under different noise realizations; the
    // spread of estimates should match the reported posterior sd within
    // a factor (posterior calibration, the paper's §VIII claim that
    // uncertainty quantification is principled).
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;

    let truth = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.01, 0.01),
        source_type: SourceType::Star,
        flux_r_nmgy: 10.0,
        colors: [0.4, 0.2, 0.1, 0.05],
        shape: GalaxyShape::round_disk(1.0),
    };
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = FitConfig::default();
    let mut estimates = Vec::new();
    let mut reported_sd = 0.0;
    for seed in 0..12u64 {
        let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
        let mut img = Image::blank(
            FieldId {
                run: 1,
                camcol: 1,
                field: 0,
            },
            celeste_survey::bands::Band::R,
            Wcs::for_rect(&rect, 64, 64),
            64,
            64,
            150.0,
            300.0,
            Psf::core_halo(1.3),
        );
        render_observed(&Catalog::new(vec![truth.clone()]), &mut img, seed);
        let mut sp = SourceParams::init_from_entry(&truth);
        let problem = celeste_core::SourceProblem::build(&sp, &[&img], &[], &priors, &cfg);
        celeste_core::fit_source(&mut sp, &problem, &cfg);
        estimates.push(sp.to_entry().flux_r_nmgy);
        reported_sd = sp.uncertainty().flux_sd_nmgy;
    }
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let emp_sd = (estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / (estimates.len() - 1) as f64)
        .sqrt();
    assert!(
        reported_sd / emp_sd > 0.3 && reported_sd / emp_sd < 3.5,
        "posterior sd {reported_sd} vs empirical scatter {emp_sd}"
    );
}
