//! Checkpoint–resume parity: a campaign killed at a checkpoint
//! boundary and resumed must produce a catalog bit-identical to an
//! uninterrupted run — restored regions are never refit, only the
//! remaining tasks run, and the merge is exact.
//!
//! All parity runs use `n_nodes = 1`, where the Dtree pop order (and
//! therefore the completion order and every neighbor read) is
//! deterministic, so any completion prefix is a valid crash point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use celeste::{Celeste, CelesteError, Session};
use celeste_core::{FitConfig, ModelPriors, NewtonConfig, SourceParams};
use celeste_par::ThreadPool;
use celeste_sched::{
    partition_sky, plan_fingerprint, run_campaign_with, stage_survey, CampaignError, CancelToken,
    Checkpoint, CheckpointConfig, CheckpointError, PartitionConfig, RegionResult, RegionTask,
    RunOptions,
};
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Catalog, Priors};

fn tiny_survey() -> SyntheticSurvey {
    SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    })
}

fn fixture(
    tag: &str,
) -> (
    SyntheticSurvey,
    ImageStore,
    Catalog,
    Vec<RegionTask>,
    std::path::PathBuf,
) {
    let survey = tiny_survey();
    let dir = std::env::temp_dir().join(format!("celeste-ckpt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir).unwrap();
    stage_survey(&survey, &store);
    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    assert!(tasks.len() >= 4, "want several tasks, got {}", tasks.len());
    (survey, store, init, tasks, dir)
}

fn quick_cfg() -> celeste_sched::CampaignConfig {
    celeste_sched::CampaignConfig {
        n_nodes: 1,
        threads_per_node: 2,
        fit: FitConfig {
            bca_passes: 1,
            newton: NewtonConfig {
                max_iters: 10,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_params_bitwise(a: &[SourceParams], b: &[SourceParams], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: catalog sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{what}: id order differs");
        assert_eq!(x.params, y.params, "{what}: source {} diverged", x.id);
    }
}

#[test]
fn resume_from_any_checkpoint_prefix_is_bit_identical() {
    let (survey, store, init, tasks, dir) = fixture("prefix");
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = quick_cfg();

    for width in [1usize, 2] {
        let pool = ThreadPool::new(width);
        pool.install(|| {
            // Uninterrupted baseline, collecting the completion order.
            let (tx, rx) = crossbeam::channel::unbounded();
            let (baseline, report) = run_campaign_with(
                &survey,
                &store,
                &init,
                &tasks,
                &priors,
                &cfg,
                RunOptions {
                    sink: Some(&tx),
                    ..Default::default()
                },
            )
            .unwrap();
            drop(tx);
            assert_eq!(report.tasks_completed, tasks.len());
            let completed: Vec<RegionResult> = rx.iter().collect();
            assert_eq!(completed.len(), tasks.len());

            // "Kill" the campaign after 1, half, and all-but-one
            // completions: the checkpoint then holds exactly that
            // prefix, as if the process died at the boundary.
            let n = completed.len();
            for cut in [1, n / 2, n - 1] {
                let ck = Checkpoint {
                    fingerprint: plan_fingerprint(&tasks),
                    completed: completed[..cut].to_vec(),
                };
                let (resumed, resumed_report) = run_campaign_with(
                    &survey,
                    &store,
                    &init,
                    &tasks,
                    &priors,
                    &cfg,
                    RunOptions {
                        resume: Some(ck),
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    resumed_report.tasks_restored, cut,
                    "width {width} cut {cut}"
                );
                assert_eq!(resumed_report.tasks_completed, tasks.len());
                assert_params_bitwise(
                    &resumed,
                    &baseline,
                    &format!("width {width}, resume after {cut}/{n}"),
                );
            }
        });
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

fn parity_session() -> Session {
    Celeste::builder()
        .threads(2)
        .n_nodes(1)
        .fit(FitConfig {
            bca_passes: 1,
            newton: NewtonConfig {
                max_iters: 10,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap()
}

#[test]
fn facade_resume_after_live_cancellation_is_bit_identical() {
    let (survey, store, init, tasks, dir) = fixture("cancel");
    let session = parity_session();
    let baseline = session
        .run_campaign(&survey, &store, &init, &tasks)
        .unwrap();

    // Run the same campaign with a checkpoint, cancelling from the
    // consumer after two results — a live mid-campaign shutdown.
    // Each region is slowed 20ms (a sleep changes no arithmetic, so
    // checkpointed results stay bit-identical) to guarantee the
    // cancellation lands while work remains.
    let ckpt = CheckpointConfig::new(dir.join("campaign.sckp"), 1);
    let mut cfg = session.config().campaign();
    cfg.faults = Some(celeste_sched::FaultPlan {
        slow_rate: 1.0,
        slow_for: std::time::Duration::from_millis(20),
        ..Default::default()
    });
    let priors = session.config().priors.clone();
    let cancel = CancelToken::default();
    let (tx, rx) = crossbeam::channel::unbounded();
    let seen = AtomicUsize::new(0);
    let (cancelled_params, cancelled_report) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let r = run_campaign_with(
                &survey,
                &store,
                &init,
                &tasks,
                &priors,
                &cfg,
                RunOptions {
                    sink: Some(&tx),
                    checkpoint: Some(&ckpt),
                    cancel: Some(&cancel),
                    ..Default::default()
                },
            );
            drop(tx);
            r
        });
        for _ in rx.iter() {
            if seen.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                cancel.cancel();
            }
        }
        handle.join().unwrap().unwrap()
    });
    assert!(cancelled_report.cancelled, "cancellation must be recorded");
    let done = cancelled_report.tasks_completed;
    assert!(
        (2..tasks.len()).contains(&done),
        "want a partial run, completed {done} of {}",
        tasks.len()
    );
    let _ = cancelled_params;

    // Resume through the facade: only the remaining tasks run, and
    // the merged catalog is bit-identical to the uninterrupted one.
    let outcome = session
        .resume_campaign(&survey, &store, &init, &tasks, &ckpt)
        .unwrap();
    assert_eq!(outcome.report.tasks_restored, done);
    assert_eq!(outcome.report.tasks_completed, tasks.len());
    assert!(!outcome.report.cancelled);
    assert_params_bitwise(&outcome.params, &baseline.params, "facade resume");
    // Restored regions are re-emitted, so the caller still sees the
    // complete region set.
    assert_eq!(outcome.regions.len(), tasks.len());
    let by_id: HashMap<u64, &RegionResult> =
        outcome.regions.iter().map(|r| (r.task_id, r)).collect();
    assert_eq!(by_id.len(), tasks.len(), "no duplicate regions");

    // Resuming a *finished* checkpoint restores everything and refits
    // nothing, still bit-identical.
    let again = session
        .resume_campaign(&survey, &store, &init, &tasks, &ckpt)
        .unwrap();
    assert_eq!(again.report.tasks_restored, tasks.len());
    assert_params_bitwise(&again.params, &baseline.params, "second resume");

    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn facade_checkpointed_run_matches_plain_run_and_guards_the_plan() {
    let (survey, store, init, tasks, dir) = fixture("facade");
    let session = parity_session();
    let plain = session
        .run_campaign(&survey, &store, &init, &tasks)
        .unwrap();

    // resume_campaign with no checkpoint file is a fresh run.
    let ckpt = CheckpointConfig::new(dir.join("fresh.sckp"), 2);
    assert!(!ckpt.path.exists());
    let fresh = session
        .resume_campaign(&survey, &store, &init, &tasks, &ckpt)
        .unwrap();
    assert_eq!(fresh.report.tasks_restored, 0);
    assert_params_bitwise(&fresh.params, &plain.params, "fresh checkpointed run");
    assert!(ckpt.path.exists(), "final flush must write the checkpoint");

    // Resuming against a different task plan is a typed error.
    let fewer = &tasks[..tasks.len() - 1];
    match session.resume_campaign(&survey, &store, &init, fewer, &ckpt) {
        Err(CelesteError::Campaign(CampaignError::Checkpoint(CheckpointError::PlanMismatch {
            ..
        }))) => {}
        other => panic!("want PlanMismatch, got {:?}", other.map(|_| ())),
    }

    // run_campaign_checkpointed is run_campaign plus durability.
    let ckpt2 = CheckpointConfig::new(dir.join("chk.sckp"), 3);
    let chk = session
        .run_campaign_checkpointed(&survey, &store, &init, &tasks, &ckpt2)
        .unwrap();
    assert_params_bitwise(&chk.params, &plain.params, "checkpointed run");
    assert_eq!(chk.regions.len(), tasks.len());
    let loaded = Checkpoint::load(&ckpt2.path, plan_fingerprint(&tasks)).unwrap();
    assert_eq!(loaded.completed.len(), tasks.len());

    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
