//! The catalog daemon end to end: start a `celeste-serve` daemon,
//! stream a live campaign into its store *while* TCP clients query
//! it, snapshot the catalog, then restart the daemon from the
//! snapshot and serve the same answers with zero refits.
//!
//! This is `examples/catalog_service.rs` promoted over the network —
//! the in-process `CatalogStore` polls become real `CatalogClient`
//! connections speaking `SCQP` frames.
//!
//! Run with: `cargo run --release --example celeste_served`

use std::sync::atomic::{AtomicBool, Ordering};

use celeste::survey::bands::Band;
use celeste::survey::skygeom::GeometryConfig;
use celeste::{
    partition_sky, CatalogClient, Celeste, ImageStore, PartitionConfig, ServeConfig, SkyCoord,
    SourceFilter, SurveyConfig, SyntheticSurvey,
};

fn main() -> Result<(), celeste::CelesteError> {
    let session = Celeste::builder().threads(2).n_nodes(1).build()?;

    // Same tiny survey as the in-process example.
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    });
    let dir = std::env::temp_dir().join(format!("celeste-served-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir)?;
    session.stage(&survey, &store)?;

    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    println!(
        "survey: {} fields, {} sources, {} region tasks\n",
        survey.geometry.fields.len(),
        survey.truth.len(),
        tasks.len()
    );

    // ── 1. Daemon up, campaign ingesting, clients querying ──────────
    let snapshot = dir.join("catalog.scst");
    let config = ServeConfig {
        snapshot: Some(snapshot.clone()),
        snapshot_on_shutdown: true,
        ..ServeConfig::default()
    };
    let daemon = session.serve("127.0.0.1:0", &config)?;
    let addr = daemon.addr();
    println!("daemon answering on {addr}");

    let center = SkyCoord {
        ra: (survey.geometry.footprint.ra_min + survey.geometry.footprint.ra_max) / 2.0,
        dec: (survey.geometry.footprint.dec_min + survey.geometry.footprint.dec_max) / 2.0,
    };
    let done = AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            // A live TCP client hammering the daemon mid-campaign:
            // every answer is a consistent snapshot, just incomplete.
            let mut client = CatalogClient::connect(addr).expect("connect poller");
            let mut polls = 0usize;
            while !done.load(Ordering::Acquire) {
                client.cone_search(&center, 3600.0).expect("cone over TCP");
                polls += 1;
            }
            polls
        });
        let outcome = session.run_campaign_into_store(
            &survey,
            &store,
            &init,
            &tasks,
            daemon.store().store(),
        )?;
        done.store(true, Ordering::Release);
        let polls = poller.join().expect("poller panicked");
        println!(
            "campaign done: {} tasks fitted while a TCP client served {polls} cone searches",
            outcome.report.tasks_completed
        );
        Ok::<_, celeste::CelesteError>(outcome)
    })?;
    assert_eq!(outcome.report.tasks_restored, 0, "first run, cold cache");

    // ── 2. Query the finished catalog over the wire ─────────────────
    let mut client = CatalogClient::connect(addr).map_err(celeste::CelesteError::Serve)?;
    let bright = client
        .brightest_n(3, None)
        .map_err(celeste::CelesteError::Serve)?;
    println!("\nbrightest 3 sources (over TCP):");
    for e in &bright {
        println!(
            "  id {:>4}  r-flux {:>8.2} nMgy  {:?}",
            e.id, e.flux_r_nmgy, e.source_type
        );
    }
    let galaxies = client
        .rect_search(
            &survey.geometry.footprint,
            &SourceFilter {
                source_type: Some(celeste::SourceType::Galaxy),
                min_flux: Some((Band::R, 1.0)),
            },
        )
        .map_err(celeste::CelesteError::Serve)?;
    let stats = client.stats().map_err(celeste::CelesteError::Serve)?;
    println!(
        "galaxies above 1 nMgy (r): {} of {} entries, {} cells, {} queries served",
        galaxies.len(),
        stats.entries,
        stats.cells,
        stats.queries
    );
    drop(client);

    // ── 3. Snapshot + restart: instant serving, zero refits ─────────
    let entries_before = stats.entries;
    daemon.shutdown().map_err(celeste::CelesteError::Serve)?;
    let reborn = session.serve("127.0.0.1:0", &config)?;
    let mut client = CatalogClient::connect(reborn.addr()).map_err(celeste::CelesteError::Serve)?;
    let stats = client.stats().map_err(celeste::CelesteError::Serve)?;
    let bright_again = client
        .brightest_n(3, None)
        .map_err(celeste::CelesteError::Serve)?;
    println!(
        "\nrestarted from {}: {} entries served instantly, {} regions refit",
        snapshot.file_name().unwrap().to_string_lossy(),
        stats.entries,
        stats.regions_ingested
    );
    assert_eq!(stats.entries, entries_before, "snapshot carries everything");
    assert_eq!(stats.regions_ingested, 0, "restart refits nothing");
    for (a, b) in bright_again.iter().zip(&bright) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.flux_r_nmgy.to_bits(),
            b.flux_r_nmgy.to_bits(),
            "restart answers bit-identically"
        );
    }
    drop(client);
    reborn.shutdown().map_err(celeste::CelesteError::Serve)?;

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
