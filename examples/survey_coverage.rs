//! Survey geometry illustrations: the Fig. 1 / Fig. 3 analogues.
//!
//! Prints an ASCII sky-coverage map (how many images cover each patch,
//! with the deep "Stripe 82" band standing out) and per-source image
//! multiplicity statistics (the paper's "between 5 and 480 images").
//!
//! Run with: `cargo run --release --example survey_coverage`

use celeste::survey::skygeom::GeometryConfig;
use celeste::{SurveyConfig, SyntheticSurvey};

fn main() {
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 4,
            fields_per_stripe: 6,
            stripe_overlap: 0.2,
            field_overlap: 0.15,
            epochs_per_stripe: 2,
            deep_stripe: Some(1),
            deep_epochs: 12,
            ..GeometryConfig::default()
        },
        source_density_per_sq_deg: 6000.0,
        ..SurveyConfig::default()
    });

    println!(
        "Synthetic survey: {} fields ({} stripes), {} sources, {:.1} MB of imagery\n",
        survey.geometry.fields.len(),
        4,
        survey.truth.len(),
        survey.total_image_bytes() as f64 / 1e6
    );
    println!("Sky coverage map (digit = number of covering images; Fig. 3 analogue):\n");
    println!("{}", survey.geometry.coverage_map(72, 20));

    // Image-multiplicity histogram (Fig. 1 discussion: overlaps mean a
    // source appears in many images).
    let mut histogram = std::collections::BTreeMap::new();
    for e in &survey.truth.entries {
        let n = survey.geometry.fields_containing(&e.pos).len();
        *histogram.entry(n).or_insert(0usize) += 1;
    }
    println!("images covering each source (multiplicity → sources):");
    for (n, count) in &histogram {
        println!(
            "  {n:>3} images: {count:>6} sources {}",
            "▪".repeat((count / 20).min(60))
        );
    }
    let max = histogram.keys().max().copied().unwrap_or(0);
    println!(
        "\nmax multiplicity: {max} images (the deep stripe; SDSS Stripe 82 reaches ~80 epochs)"
    );
}
