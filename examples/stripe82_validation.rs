//! Stripe 82 validation at example scale: the full §VIII protocol
//! (deep coadd → Photo "ground truth" → score Photo and Celeste on a
//! single epoch) on a small field.
//!
//! Run with: `cargo run --release --example stripe82_validation`
//! (the full-scale run is `cargo run --release -p celeste-bench --bin
//! table2_stripe82`).

use celeste::FitConfig;
use celeste_bench::{rows_better, run_table2, stripe82_scene};

fn main() {
    println!("Generating a Stripe 82-style deep field (12 epochs) …");
    let scene = stripe82_scene(12, 25_000.0, 0xE9);
    println!(
        "truth sources in field: {}   coadd depth: {:.0}× single epoch\n",
        scene.truth.len(),
        scene.coadds[2].nmgy_to_counts / scene.single_run[2].nmgy_to_counts
    );
    let fit = FitConfig::default();
    let result = run_table2(&scene, &fit, 4);
    println!("Scored against the generating truth catalog:\n");
    println!("{}", result.formatted);
    println!(
        "Celeste better on {}/12 rows (paper Table II: 11/12).",
        rows_better(&result.celeste, &result.photo)
    );
}
