//! Catalog-as-a-service: stream a campaign into a sky-sharded
//! [`CatalogStore`], serve queries while it is still running, then
//! re-run over the same footprint and watch the provenance cache
//! refit nothing — and, after nudging one source's initialization,
//! refit only the shards that source touches.
//!
//! Run with: `cargo run --release --example catalog_service`

use std::sync::atomic::{AtomicBool, Ordering};

use celeste::survey::bands::Band;
use celeste::survey::skygeom::GeometryConfig;
use celeste::{
    partition_sky, CatalogQuery, CatalogStore, Celeste, ImageStore, PartitionConfig, SkyCoord,
    SourceFilter, SurveyConfig, SyntheticSurvey,
};

fn main() -> Result<(), celeste::CelesteError> {
    let session = Celeste::builder().threads(2).n_nodes(1).build()?;

    // A small synthetic survey, staged to disk the way the paper
    // stages SDSS imagery onto the burst buffer.
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 64,
        source_density_per_sq_deg: 2500.0,
        ..SurveyConfig::default()
    });
    let dir = std::env::temp_dir().join(format!("celeste-catalog-service-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = ImageStore::open(&dir)?;
    session.stage(&survey, &store)?;

    let mut init = survey.truth.clone();
    for e in &mut init.entries {
        e.flux_r_nmgy *= 0.7;
    }
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    println!(
        "survey: {} fields, {} sources, {} region tasks\n",
        survey.geometry.fields.len(),
        survey.truth.len(),
        tasks.len()
    );

    // ── 1. Ingest while serving ─────────────────────────────────────
    let catalog = CatalogStore::new(Default::default());
    let center = SkyCoord {
        ra: (survey.geometry.footprint.ra_min + survey.geometry.footprint.ra_max) / 2.0,
        dec: (survey.geometry.footprint.dec_min + survey.geometry.footprint.dec_max) / 2.0,
    };
    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            // A concurrent reader polling the store mid-campaign:
            // every snapshot it sees is consistent, just incomplete.
            let mut polls = 0usize;
            while !done.load(Ordering::Acquire) {
                let _ = catalog.cone_search(&center, 3600.0);
                polls += 1;
                std::thread::yield_now();
            }
            polls
        });
        let outcome = session.run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)?;
        done.store(true, Ordering::Release);
        let polls = reader.join().expect("reader panicked");
        println!(
            "campaign done: {} tasks fitted while the reader served {polls} cone searches",
            outcome.report.tasks_completed
        );
        Ok::<_, celeste::CelesteError>(outcome.report)
    })?;
    assert_eq!(report.tasks_restored, 0, "first run has no cache to hit");

    // ── 2. Query the finished catalog ───────────────────────────────
    let bright = session.query(&catalog, &CatalogQuery::BrightestN { n: 3, within: None })?;
    println!("\nbrightest 3 sources:");
    for e in &bright {
        println!(
            "  id {:>4}  r-flux {:>8.2} nMgy  {:?}",
            e.id, e.flux_r_nmgy, e.source_type
        );
    }
    let galaxies = session.query(
        &catalog,
        &CatalogQuery::Rect {
            rect: survey.geometry.footprint,
            filter: SourceFilter {
                source_type: Some(celeste::SourceType::Galaxy),
                min_flux: Some((Band::R, 1.0)),
            },
        },
    )?;
    println!(
        "galaxies above 1 nMgy (r): {} of {} entries",
        galaxies.len(),
        catalog.len()
    );

    // ── 3. Unchanged re-run: every shard served from cache ──────────
    let rerun = session.run_campaign_into_store(&survey, &store, &init, &tasks, &catalog)?;
    println!(
        "\nunchanged re-run: {} of {} tasks restored from the provenance cache (refit {})",
        rerun.report.tasks_restored,
        tasks.len(),
        tasks.len() - rerun.report.tasks_restored
    );
    assert_eq!(rerun.report.tasks_restored, tasks.len());

    // ── 4. Perturb one source: only its shards refit ────────────────
    let mut init2 = init.clone();
    init2.entries[0].flux_r_nmgy *= 1.10;
    let tasks2 = partition_sky(
        &init2,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 600.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    let partial = session.run_campaign_into_store(&survey, &store, &init2, &tasks2, &catalog)?;
    println!(
        "after perturbing source {}: {} of {} tasks restored, {} refit (only the shards it touches)",
        init2.entries[0].id,
        partial.report.tasks_restored,
        tasks2.len(),
        tasks2.len() - partial.report.tasks_restored
    );
    assert!(partial.report.tasks_restored < tasks2.len());

    let stats = catalog.stats();
    println!(
        "\nstore: {} entries in {} cells, {} regions ingested, {} cache entries, {} hits",
        stats.entries, stats.cells, stats.regions_ingested, stats.cache_entries, stats.cache_hits
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
