//! Quickstart: simulate a patch of sky, run Celeste on one source
//! through the unified `celeste` facade, and print the posterior —
//! point estimates *and* uncertainties, the paper's headline advantage
//! over heuristic pipelines.
//!
//! Run with: `cargo run --release --example quickstart`

use celeste::survey::bands::{nmgy_to_mag, Band};
use celeste::survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste::survey::psf::Psf;
use celeste::survey::render::render_observed;
use celeste::survey::skygeom::{FieldId, SkyCoord, SkyRect};
use celeste::survey::wcs::Wcs;
use celeste::{Catalog, Celeste, CelesteError, Image, SourceParams};

fn main() -> Result<(), CelesteError> {
    // 1. The "universe": one galaxy with known true parameters.
    let truth = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.010, 0.010),
        source_type: SourceType::Galaxy,
        flux_r_nmgy: 30.0,
        colors: [0.9, 0.5, 0.3, 0.2],
        shape: GalaxyShape {
            frac_dev: 0.3,
            axis_ratio: 0.6,
            angle_rad: 0.8,
            radius_arcsec: 2.2,
        },
    };
    let catalog = Catalog::new(vec![truth.clone()]);

    // 2. Observe it: five bands of Poisson-noised imaging.
    let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
    let images: Vec<Image> = Band::ALL
        .iter()
        .map(|&band| {
            let mut img = Image::blank(
                FieldId {
                    run: 1,
                    camcol: 1,
                    field: 0,
                },
                band,
                Wcs::for_rect(&rect, 72, 72),
                72,
                72,
                150.0,
                300.0,
                Psf::core_halo(1.3),
            );
            render_observed(&catalog, &mut img, 7 + band.index() as u64);
            img
        })
        .collect();
    let refs: Vec<&Image> = images.iter().collect();

    // 3. One session configures the whole pipeline. Invalid knobs and
    //    invalid inputs come back as typed `CelesteError`s, not panics.
    let session = Celeste::builder().build()?;

    // 4. Initialize from a rough guess (what an earlier catalog would
    //    provide) and run variational inference.
    let mut guess = truth.clone();
    guess.flux_r_nmgy = 10.0;
    guess.shape = GalaxyShape::round_disk(1.0);
    guess.pos.ra += 0.7 / 3600.0;
    let mut source = SourceParams::init_from_entry(&guess);
    let stats = session.fit_source(&mut source, &refs, &[])?;

    // 5. Report the posterior.
    let fitted = source.to_entry();
    let unc = source.uncertainty();
    println!(
        "Celeste quickstart — one source, five bands, {} active pixels",
        stats.active_pixels
    );
    println!(
        "Newton iterations: {} (converged: {})\n",
        stats.newton.iterations, stats.newton.converged
    );
    println!("{:<22} {:>12} {:>12}", "", "truth", "posterior");
    println!(
        "{:<22} {:>12} {:>9.1}%",
        "P(galaxy)",
        "100%",
        100.0 * (1.0 - unc.star_prob)
    );
    println!(
        "{:<22} {:>12.2} {:>9.2} ± {:.2}",
        "flux_r (nmgy)", truth.flux_r_nmgy, fitted.flux_r_nmgy, unc.flux_sd_nmgy
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "r magnitude",
        nmgy_to_mag(truth.flux_r_nmgy),
        nmgy_to_mag(fitted.flux_r_nmgy)
    );
    for (i, name) in ["u-g", "g-r", "r-i", "i-z"].iter().enumerate() {
        println!(
            "{:<22} {:>12.3} {:>9.3} ± {:.3}",
            format!("color {name} (ln ratio)"),
            truth.colors[i],
            fitted.colors[i],
            unc.color_sd[i]
        );
    }
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "radius (arcsec)", truth.shape.radius_arcsec, fitted.shape.radius_arcsec
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "axis ratio", truth.shape.axis_ratio, fitted.shape.axis_ratio
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "deV fraction", truth.shape.frac_dev, fitted.shape.frac_dev
    );
    println!(
        "\nposition error: {:.3} arcsec (± {:.3} posterior sd)",
        fitted.pos.sep_arcsec(&truth.pos),
        unc.position_sd_arcsec[0]
    );
    Ok(())
}
