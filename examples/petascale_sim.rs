//! Simulate the petascale campaign: weak scaling to 8,192 nodes plus
//! the Table I sustained-rate summary, from a calibration measured on
//! this machine in a few seconds.
//!
//! Run with: `cargo run --release --example petascale_sim`

use celeste::model::flops::OBJECTIVE_OVERHEAD_FACTOR;
use celeste_cluster::report::{components_table, stacked_chart, table1};
use celeste_cluster::{calibrate_from_report, simulate_run, ClusterConfig};

fn main() {
    // The mini-campaign behind this calibration runs through the
    // `celeste` facade session (see `celeste_bench::run_calibration_campaign`).
    println!("Calibrating the simulator from a real mini-campaign on this machine …");
    let flops_per_visit =
        celeste_bench::audit_flops_per_visit() * celeste_bench::measure_deriv_cost_ratio();
    let report = celeste_bench::run_calibration_campaign(0x9E7A);
    let cal = calibrate_from_report(&report, flops_per_visit);
    println!(
        "  measured: {:.0} FLOP/visit, mean task {:.2}s, {:.2} GFLOP/s per process\n",
        flops_per_visit,
        cal.task_duration.mean(),
        cal.flops_per_proc / 1e9
    );

    println!("Weak scaling, 68 tasks/node (paper Fig. 4):\n");
    let mut rows = Vec::new();
    let mut nodes = 1usize;
    while nodes <= 8192 {
        let r = simulate_run(
            &cal,
            &ClusterConfig {
                nodes,
                ..Default::default()
            },
            nodes * 68,
            11 + nodes as u64,
            false,
        );
        rows.push((nodes.to_string(), r.components));
        nodes *= 8;
    }
    println!("{}", components_table(&rows));
    println!("{}", stacked_chart(&rows, 56));

    println!("Sustained-rate run (paper Table I):\n");
    let r = simulate_run(
        &cal,
        &ClusterConfig {
            nodes: 9600,
            ..Default::default()
        },
        326_400,
        0xF10,
        false,
    );
    println!("{}", table1(&r, OBJECTIVE_OVERHEAD_FACTOR));
}
