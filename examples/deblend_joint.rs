//! Joint inference on a blended pair — why "the optimal parameters for
//! one light source depend on the optimal parameters of nearby light
//! sources" (paper §I).
//!
//! Two overlapping stars are fit (a) independently, ignoring each
//! other, and (b) jointly via block coordinate ascent. Independent
//! fits over-attribute the shared photons to each source; joint BCA
//! divides them correctly.
//!
//! Run with: `cargo run --release --example deblend_joint`

use celeste::survey::bands::Band;
use celeste::survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste::survey::psf::Psf;
use celeste::survey::render::render_observed;
use celeste::survey::skygeom::{FieldId, SkyCoord, SkyRect};
use celeste::survey::wcs::Wcs;
use celeste::{Catalog, Celeste, CelesteError, FitConfig, Image, SourceParams};

fn star(id: u64, ra: f64, flux: f64) -> CatalogEntry {
    CatalogEntry {
        id,
        pos: SkyCoord::new(ra, 0.01),
        source_type: SourceType::Star,
        flux_r_nmgy: flux,
        colors: [0.5, 0.3, 0.2, 0.1],
        shape: GalaxyShape::round_disk(1.0),
    }
}

fn main() -> Result<(), CelesteError> {
    // Two stars 3.6 arcsec apart — about 2.5 pixels: heavily blended.
    let truth = vec![star(0, 0.0095, 24.0), star(1, 0.0095 + 3.6 / 3600.0, 8.0)];
    let catalog = Catalog::new(truth.clone());
    let images: Vec<Image> = [Band::R, Band::G, Band::I]
        .iter()
        .map(|&band| {
            let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
            let mut img = Image::blank(
                FieldId {
                    run: 1,
                    camcol: 1,
                    field: 0,
                },
                band,
                Wcs::for_rect(&rect, 72, 72),
                72,
                72,
                150.0,
                300.0,
                Psf::core_halo(1.4),
            );
            render_observed(&catalog, &mut img, 42 + band.index() as u64);
            img
        })
        .collect();
    let refs: Vec<&Image> = images.iter().collect();
    let session = Celeste::builder()
        .fit(FitConfig {
            bca_passes: 3,
            ..Default::default()
        })
        .build()?;

    let init = |e: &CatalogEntry| {
        let mut g = e.clone();
        g.flux_r_nmgy = 15.0; // both start at the same wrong flux
        SourceParams::init_from_entry(&g)
    };

    // (a) Independent: each source fit as if alone.
    let mut indep: Vec<SourceParams> = truth.iter().map(init).collect();
    for sp in &mut indep {
        session.fit_source(sp, &refs, &[])?;
    }

    // (b) Joint Cyclades block coordinate ascent.
    let mut joint: Vec<SourceParams> = truth.iter().map(init).collect();
    session.fit_region(&mut joint, &refs, &[], 42)?;

    println!("Blended pair, separation 3.6\" (~2.5 px), PSF fwhm ≈ 4.6\"\n");
    println!(
        "{:<10} {:>12} {:>18} {:>14}",
        "source", "true flux", "independent fit", "joint fit"
    );
    for i in 0..2 {
        println!(
            "{:<10} {:>12.1} {:>18.2} {:>14.2}",
            format!("star {i}"),
            truth[i].flux_r_nmgy,
            indep[i].to_entry().flux_r_nmgy,
            joint[i].to_entry().flux_r_nmgy
        );
    }
    let err = |fits: &[SourceParams]| -> f64 {
        fits.iter()
            .zip(&truth)
            .map(|(f, t)| (f.to_entry().flux_r_nmgy - t.flux_r_nmgy).abs() / t.flux_r_nmgy)
            .sum::<f64>()
            / 2.0
    };
    println!(
        "\nmean relative flux error: independent {:.1}%  vs  joint {:.1}%",
        100.0 * err(&indep),
        100.0 * err(&joint)
    );
    Ok(())
}
