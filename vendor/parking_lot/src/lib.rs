//! Minimal vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly, and
//! `Condvar::wait` takes `&mut MutexGuard`). Poisoned locks unwrap:
//! a panic while holding a lock is already fatal to our pipelines.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_pair() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            *s2.0.lock() = true;
            s2.1.notify_all();
        });
        let mut guard = shared.0.lock();
        while !*guard {
            shared.1.wait(&mut guard);
        }
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
