//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with clonable multi-producer,
//! multi-consumer endpoints, built on a `Mutex<VecDeque>` plus a
//! condvar. Unlike the earlier `std::sync::mpsc`-backed shim — whose
//! shared receiver held the mutex *through* the blocking `recv`,
//! serializing every consumer on one lock — a blocked `recv` here
//! waits on the condvar with the lock released, so idle consumers
//! never gate each other and a send wakes exactly the waiters it can
//! feed. Disconnect semantics match the real crate: `recv`/`iter` end
//! when every sender has dropped, and `send` fails once every
//! receiver has dropped.

pub mod channel {
    use std::collections::VecDeque;
    #[cfg(not(celeste_model))]
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    // Under the model instantiation (this file is compiled a second
    // time inside `celeste-check`; see that crate's build.rs) the
    // same names bind model-checked primitives, so lock/wait/notify
    // become yield points in the exhaustive interleaving search.
    #[cfg(celeste_model)]
    use crate::model_sync::{Arc, Condvar, Mutex, MutexGuard};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signaled on every send and on the last sender's drop.
        ready: Condvar,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut inner = self.0.lock();
                inner.senders -= 1;
                inner.senders == 0
            };
            if last {
                // Wake every blocked consumer so they observe the
                // disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            {
                let mut inner = self.0.lock();
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                inner.queue.push_back(value);
            }
            self.0.ready.notify_one();
            Ok(())
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        /// Block until a value or disconnect. The lock is released
        /// while waiting, so concurrent consumers make independent
        /// progress.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking iterator; ends when every sender has dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// A bounded channel (used here only to forge a disconnected
    /// sender on shutdown; capacity handling comes from the unbounded
    /// queue).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let _ = cap;
        unbounded()
    }
}

// These tests drive the channel with real OS threads and sleeps;
// under the model instantiation that would mean model primitives
// outside a `Model::check` execution, so they only build for the
// production instantiation (the model suite lives in celeste-check).
#[cfg(all(test, not(celeste_model)))]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn blocked_consumers_do_not_serialize_on_the_lock() {
        // Two consumers block in recv simultaneously; a send must
        // reach one of them even while the other stays blocked (the
        // old shim held the mutex through the blocking recv, so a
        // parked consumer could gate the others).
        let (tx, rx) = channel::unbounded::<u32>();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.recv())
            })
            .collect();
        // Let both consumers reach their blocking wait.
        std::thread::sleep(Duration::from_millis(30));
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .map(|h| h.join().unwrap().expect("value"))
            .collect();
        got.sort();
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_reports_disconnect_after_draining() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().ok(), Some(1));
        assert!(rx.recv().is_err());
    }
}
