//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with clonable multi-consumer
//! receivers, built on `std::sync::mpsc` plus a shared mutex on the
//! receiving side. Throughput is irrelevant at our usage site (a
//! handful of image-prefetch keys per task), correctness of the
//! disconnect semantics is what matters: `iter()` ends when all
//! senders drop, exactly like the real crate.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv()
                .map_err(|_| RecvError)
        }

        /// Blocking iterator; ends when every sender has dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// A bounded channel (used here only to forge a disconnected
    /// sender on shutdown; capacity handling comes from std).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // std's sync_channel has a distinct sender type; emulate a
        // plain channel and accept the relaxed capacity semantics —
        // our single call site uses bounded(0) purely for disconnect.
        let _ = cap;
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
