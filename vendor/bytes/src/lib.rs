//! Minimal vendored stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor API the image/catalog codec in
//! `celeste_survey::io` uses: `Buf` over `&[u8]` (reads advance the
//! slice), `BufMut` over a growable buffer, and the
//! `BytesMut::freeze() -> Bytes` handoff. `Bytes` here is a plain
//! cheaply-clonable shared byte buffer.

use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
        }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reading cursor over a byte source; reads consume from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    /// Panics if `dst` is longer than the remaining bytes, like the
    /// real crate; decoders length-check with `remaining` first.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Appending writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
