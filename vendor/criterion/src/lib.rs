//! Minimal vendored stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access. This shim implements
//! the subset of the criterion 0.5 API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with element throughput) with a simple
//! warmup-then-sample timing loop. Results print as
//! `<name>  time: <median> ns/iter (<per-element>)` — good enough to
//! compare kernels on one machine, which is all we do with it.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure given to `bench_function`; call `iter`.
pub struct Bencher {
    samples: usize,
    /// Median ns per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the median over `samples` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: aim for batches of ≥ ~2 ms so timer
        // resolution is irrelevant.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as f64;
        let batch = ((2e6 / once).ceil() as usize).clamp(1, 1_000_000);
        for _ in 0..(batch / 10).max(1) {
            std::hint::black_box(f());
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        ns_per_iter: 0.0,
    };
    f(&mut b);
    match throughput {
        Some(Throughput::Elements(n)) if n > 0 => {
            println!(
                "{name:<40} time: {:>12.1} ns/iter   ({:.2} ns/elem, {} elems)",
                b.ns_per_iter,
                b.ns_per_iter / n as f64,
                n
            );
        }
        Some(Throughput::Bytes(n)) if n > 0 => {
            println!(
                "{name:<40} time: {:>12.1} ns/iter   ({:.3} GiB/s)",
                b.ns_per_iter,
                n as f64 / b.ns_per_iter * 1e9 / (1u64 << 30) as f64
            );
        }
        _ => println!("{name:<40} time: {:>12.1} ns/iter", b.ns_per_iter),
    }
}

/// Mirrors criterion's `criterion_group!` (both config and plain forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.finish();
    }
}
