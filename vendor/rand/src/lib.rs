//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim provides
//! exactly the API surface the workspace uses: a seedable `StdRng`
//! (xoshiro256++, splitmix64-expanded seed), the `Rng`/`RngExt`
//! traits with `random::<T>()`, and `seq::SliceRandom::shuffle`.
//! Distributions live in `celeste_survey::sampling` by design, so
//! nothing beyond uniform draws is needed here.

/// A source of uniform random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension: `rng.random::<T>()`.
pub trait RngExt: Rng {
    #[inline]
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna). Seed state is expanded from the
    /// u64 seed with splitmix64, as the reference implementation
    /// recommends, so nearby seeds give unrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Debiased bounded draw (Lemire); bias is negligible for
                // our slice sizes but the rejection loop is cheap.
                let bound = (i + 1) as u64;
                let j = loop {
                    let x = rng.next_u64();
                    let r = x % bound;
                    if x.wrapping_sub(r) <= u64::MAX - (u64::MAX % bound) {
                        break r as usize;
                    }
                };
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
