//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim provides
//! the subset of the proptest API the workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, `Strategy`
//! with `prop_map`, range and tuple strategies, `prop::collection::vec`,
//! `prop::array::uniform4`, `any::<bool>()`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are drawn from a deterministic
//! per-test RNG (seeded from the test name) — no shrinking, which for
//! these numeric invariant tests mainly costs failure-message
//! minimality, not coverage.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic RNG for a named test.
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration (`cases` = property evaluations per test).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies are composable by reference too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.random::<f64>() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.random::<u64>() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Types with a canonical "anything" strategy, for [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Size specification for collections: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::RngExt;

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A `Vec` of values from `element`, length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo + (rng.random::<u64>() % span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod array {
        use super::super::{Strategy, TestRng};

        pub struct Uniform4<S>(S);

        /// A `[T; 4]` with each element drawn from `element`.
        pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
            Uniform4(element)
        }

        impl<S: Strategy> Strategy for Uniform4<S> {
            type Value = [S::Value; 4];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
                [
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                    self.0.generate(rng),
                ]
            }
        }
    }
}

pub mod prelude {
    pub use super::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its precondition fails. Expands to a
/// `return` from the per-case closure generated by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // `if cond {} else` rather than `if !cond`: float conditions
        // would otherwise trip clippy::neg_cmp_op_on_partial_ord at
        // every call site.
        if $cond {
        } else {
            return;
        }
    };
}

/// The property-test declaration macro. Supports the forms used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0.0..1.0f64, v in prop::collection::vec(0..10usize, 4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(stringify!($name));
                let __strats = ($($strat,)*);
                for __case in 0..__cfg.cases {
                    #[allow(unused_variables)]
                    let ($($arg,)*) = $crate::Strategy::generate(&__strats, &mut __rng);
                    // Per-case closure so prop_assume! can skip via return.
                    let mut __case_fn = move || $body;
                    __case_fn();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0f64, n in 1..10usize) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec((0.0..1.0f64).prop_map(|x| x * 2.0), 3)) {
            prop_assert_eq!(v.len(), 3);
            for x in v {
                prop_assert!((0.0..2.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(x in 0.0..1.0f64) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }

        #[test]
        fn tuples_and_arrays(t in (0.0..1.0f64, 0..5usize), a in prop::array::uniform4(0.0..1.0f64)) {
            prop_assert!(near(t.0, t.0));
            prop_assert!(t.1 < 5);
            prop_assert!(a.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn any_bool_takes_both_values(bs in prop::collection::vec(any::<bool>(), 64)) {
            prop_assert!(bs.iter().any(|&b| b) && bs.iter().any(|&b| !b));
        }
    }
}
