//! Minimal vendored stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access. This shim maps the
//! parallel-iterator entry points the workspace uses (`par_iter`,
//! `par_chunks`, `par_chunks_mut`) onto ordinary serial iterators, so
//! all call sites compile unchanged and stay deterministic. Real
//! node-level parallelism in this workspace comes from
//! `std::thread::scope` worker pools (see `celeste_sched::runtime`),
//! which never went through rayon in the first place.

pub mod prelude {
    /// `par_iter` / `par_chunks` on shared slices (serial fallback).
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` on mutable slices (serial fallback).
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_zip_roundtrip() {
        let mut dst = vec![0u32; 9];
        let src: Vec<u32> = (0..9).collect();
        dst.par_chunks_mut(3)
            .zip(src.par_chunks(3))
            .enumerate()
            .for_each(|(i, (d, s))| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = b + i as u32;
                }
            });
        assert_eq!(dst, vec![0, 1, 2, 4, 5, 6, 8, 9, 10]);
    }
}
