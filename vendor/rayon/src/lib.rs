//! Minimal vendored stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so this shim maps the
//! parallel-iterator entry points the workspace uses (`par_iter`,
//! `par_chunks`, `par_chunks_mut`, plus the `map`/`zip`/`enumerate`
//! adapters and `for_each`/`collect`/`sum` drivers) onto the
//! `celeste-par` work-stealing executor. Call sites compile unchanged
//! — and, unlike the old serial fallback, now genuinely fan out
//! across the node: work runs on the global `celeste-par` pool, sized
//! by `CELESTE_THREADS` (default: available parallelism).
//!
//! Drivers assemble order-sensitive results left-to-right, so output
//! is bit-identical to the serial path at any thread count.

pub use celeste_par::join;

pub mod prelude {
    pub use celeste_par::iter::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_zip_roundtrip() {
        let mut dst = vec![0u32; 9];
        let src: Vec<u32> = (0..9).collect();
        dst.par_chunks_mut(3)
            .zip(src.par_chunks(3))
            .enumerate()
            .for_each(|(i, (d, s))| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = b + i as u32;
                }
            });
        assert_eq!(dst, vec![0, 1, 2, 4, 5, 6, 8, 9, 10]);
    }

    #[test]
    fn collect_preserves_input_order() {
        let v: Vec<usize> = (0..4096).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..4096).map(|x| x * 3).collect::<Vec<_>>());
    }
}
