//! Light-source catalogs: the survey truth, initialization catalogs,
//! and fitted estimates all share these types.

use crate::bands::{fluxes_from_colors, NUM_BANDS, NUM_COLORS};
use crate::skygeom::{SkyCoord, SkyRect};

/// Star or galaxy — the paper's Bernoulli `a_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceType {
    Star,
    Galaxy,
}

/// Galaxy morphology parameters (the paper's φ_s): profile mix, axis
/// ratio, orientation, and angular size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GalaxyShape {
    /// Fraction of flux in the de Vaucouleurs component (0 = pure disk,
    /// 1 = pure bulge). The paper's "profile" metric.
    pub frac_dev: f64,
    /// Minor/major axis ratio in (0, 1]. 1 − axis_ratio is the paper's
    /// "eccentricity" metric.
    pub axis_ratio: f64,
    /// Major-axis position angle, radians in [0, π).
    pub angle_rad: f64,
    /// Half-light radius along the major axis, arcseconds ("scale").
    pub radius_arcsec: f64,
}

impl GalaxyShape {
    /// A canonical round disk, used for initialization.
    pub fn round_disk(radius_arcsec: f64) -> GalaxyShape {
        GalaxyShape {
            frac_dev: 0.5,
            axis_ratio: 0.8,
            angle_rad: 0.0,
            radius_arcsec,
        }
    }
}

/// One catalog record.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Survey-unique identifier.
    pub id: u64,
    /// Sky position.
    pub pos: SkyCoord,
    /// Star or galaxy.
    pub source_type: SourceType,
    /// Reference-band (r) flux in nanomaggies.
    pub flux_r_nmgy: f64,
    /// Adjacent-band log flux ratios (u-g, g-r, r-i, i-z order as
    /// `ln(f_next/f_prev)`).
    pub colors: [f64; NUM_COLORS],
    /// Galaxy shape; ignored for stars (kept for initialization).
    pub shape: GalaxyShape,
}

impl CatalogEntry {
    /// Per-band fluxes in nanomaggies.
    pub fn fluxes(&self) -> [f64; NUM_BANDS] {
        fluxes_from_colors(self.flux_r_nmgy, &self.colors)
    }

    /// Whether this entry is a star.
    pub fn is_star(&self) -> bool {
        self.source_type == SourceType::Star
    }
}

/// A collection of catalog entries.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    pub fn new(entries: Vec<CatalogEntry>) -> Catalog {
        Catalog { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries whose positions fall inside `rect`.
    pub fn in_rect(&self, rect: &SkyRect) -> Vec<&CatalogEntry> {
        self.entries
            .iter()
            .filter(|e| rect.contains(&e.pos))
            .collect()
    }

    /// Find the entry nearest to `pos`, returning `(entry, separation
    /// arcsec)`. `None` for an empty catalog, a non-finite `pos`, or a
    /// catalog whose every position is non-finite: entries at NaN or
    /// infinite positions (catalogs are often external data) are
    /// skipped, never a panic.
    pub fn nearest(&self, pos: &SkyCoord) -> Option<(&CatalogEntry, f64)> {
        self.entries
            .iter()
            .map(|e| (e, e.pos.sep_arcsec(pos)))
            .filter(|(_, sep)| sep.is_finite())
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Every entry within `radius_arcsec` of `center`, with its
    /// separation, sorted by (separation, id). Entries at non-finite
    /// positions are skipped. This is the brute-force O(catalog)
    /// reference the sharded `CatalogStore` cone search must agree
    /// with.
    pub fn cone_search(&self, center: &SkyCoord, radius_arcsec: f64) -> Vec<(&CatalogEntry, f64)> {
        let mut hits: Vec<(&CatalogEntry, f64)> = self
            .entries
            .iter()
            .map(|e| (e, e.pos.sep_arcsec(center)))
            .filter(|(_, sep)| sep.is_finite() && *sep <= radius_arcsec)
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        hits
    }

    /// The `n` brightest entries by r-band flux, brightest first, ties
    /// broken by id. Entries with non-finite flux are skipped. The
    /// brute-force reference for the store's sharded brightest-N.
    pub fn brightest_n(&self, n: usize) -> Vec<&CatalogEntry> {
        let mut bright: Vec<&CatalogEntry> = self
            .entries
            .iter()
            .filter(|e| e.flux_r_nmgy.is_finite())
            .collect();
        bright.sort_by(|a, b| {
            b.flux_r_nmgy
                .total_cmp(&a.flux_r_nmgy)
                .then(a.id.cmp(&b.id))
        });
        bright.truncate(n);
        bright
    }

    /// CSV export (one header plus one row per entry) — the human- and
    /// plot-friendly output format.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "id,ra,dec,type,flux_r_nmgy,c_ug,c_gr,c_ri,c_iz,frac_dev,axis_ratio,angle_rad,radius_arcsec\n",
        );
        for e in &self.entries {
            use std::fmt::Write;
            let _ = writeln!(
                s,
                "{},{:.8},{:.8},{},{:.6},{:.5},{:.5},{:.5},{:.5},{:.4},{:.4},{:.4},{:.4}",
                e.id,
                e.pos.ra,
                e.pos.dec,
                if e.is_star() { "star" } else { "galaxy" },
                e.flux_r_nmgy,
                e.colors[0],
                e.colors[1],
                e.colors[2],
                e.colors[3],
                e.shape.frac_dev,
                e.shape.axis_ratio,
                e.shape.angle_rad,
                e.shape.radius_arcsec,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, ra: f64, dec: f64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(ra, dec),
            source_type: SourceType::Star,
            flux_r_nmgy: 1.0,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    #[test]
    fn nearest_finds_closest() {
        let cat = Catalog::new(vec![
            entry(1, 0.0, 0.0),
            entry(2, 0.01, 0.0),
            entry(3, 1.0, 1.0),
        ]);
        let (e, sep) = cat.nearest(&SkyCoord::new(0.009, 0.0)).unwrap();
        assert_eq!(e.id, 2);
        assert!(sep < 4.0);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        assert!(Catalog::default()
            .nearest(&SkyCoord::new(0.0, 0.0))
            .is_none());
    }

    #[test]
    fn nearest_skips_non_finite_entries_instead_of_panicking() {
        // Regression: a NaN position used to abort the process via
        // `partial_cmp().unwrap()`.
        let cat = Catalog::new(vec![
            entry(1, f64::NAN, 0.0),
            entry(2, 0.01, 0.0),
            entry(3, f64::INFINITY, 5.0),
        ]);
        let (e, sep) = cat.nearest(&SkyCoord::new(0.0, 0.0)).unwrap();
        assert_eq!(e.id, 2);
        assert!(sep.is_finite());
        // All-NaN catalog: no finite candidate, not a panic.
        let poisoned = Catalog::new(vec![entry(1, f64::NAN, f64::NAN)]);
        assert!(poisoned.nearest(&SkyCoord::new(0.0, 0.0)).is_none());
        // Non-finite query position: every separation is NaN.
        assert!(cat.nearest(&SkyCoord::new(f64::NAN, 0.0)).is_none());
    }

    #[test]
    fn nearest_crosses_the_ra_seam() {
        let cat = Catalog::new(vec![entry(1, 359.999, 0.0), entry(2, 0.1, 0.0)]);
        let (e, sep) = cat.nearest(&SkyCoord::new(0.0005, 0.0)).unwrap();
        assert_eq!(e.id, 1, "seam neighbor must win, got sep {sep}");
        assert!(sep < 10.0);
    }

    #[test]
    fn cone_search_and_brightest_are_nan_safe_and_ordered() {
        let mut bright = entry(4, 0.002, 0.0);
        bright.flux_r_nmgy = 50.0;
        let mut nan_flux = entry(5, 0.003, 0.0);
        nan_flux.flux_r_nmgy = f64::NAN;
        let cat = Catalog::new(vec![
            entry(1, 0.0, 0.0),
            entry(2, 359.9995, 0.0), // inside a seam-straddling cone
            entry(3, f64::NAN, 0.0),
            bright,
            nan_flux,
        ]);
        let hits = cat.cone_search(&SkyCoord::new(0.0, 0.0), 10.0);
        let ids: Vec<u64> = hits.iter().map(|(e, _)| e.id).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
        let top: Vec<u64> = cat.brightest_n(2).iter().map(|e| e.id).collect();
        assert_eq!(top, vec![4, 1]);
    }

    #[test]
    fn in_rect_filters() {
        let cat = Catalog::new(vec![entry(1, 0.5, 0.5), entry(2, 2.0, 2.0)]);
        let hits = cat.in_rect(&SkyRect::new(0.0, 1.0, 0.0, 1.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cat = Catalog::new(vec![entry(7, 1.0, 2.0)]);
        let csv = cat.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("id,ra,dec"));
        assert!(lines[1].starts_with("7,"));
    }
}
