//! Galaxy light profiles as Gaussian mixtures.
//!
//! Celeste (and Photo, and Tractor) model galaxies as a convex mixture
//! of the exponential and de Vaucouleurs profiles, each approximated by
//! a mixture of concentric Gaussians so that PSF convolution stays
//! closed-form. The original approximations are from Hogg & Lang (2013);
//! we reproduce the construction rather than copying their tables: a
//! fixed geometric variance ladder per profile, with nonnegative
//! weights fit by least squares ([`celeste_linalg::nnls`]) against the
//! analytic radial profile, computed once and cached.

use crate::gmm::Cov2;
use celeste_linalg::{nnls, Mat};
use std::sync::OnceLock;

/// Ratio between the exponential profile's scale radius and its
/// half-light radius: `r_e = 1.67835 · r_s`.
const EXP_HALF_LIGHT: f64 = 1.678_346_99;

/// de Vaucouleurs shape constant (from the half-light definition).
const DEV_K: f64 = 7.669_249_4;

/// A radial profile approximated as a mixture of concentric isotropic
/// Gaussians, in units of the half-light radius (`r_e = 1`).
#[derive(Debug, Clone)]
pub struct MixtureProfile {
    /// Flux fraction per component; sums to 1.
    pub weights: Vec<f64>,
    /// Component variances in units of `r_e²`.
    pub vars: Vec<f64>,
}

/// Exponential-disk surface brightness at radius `r` (unit flux, unit
/// half-light radius).
pub fn exp_profile(r: f64) -> f64 {
    let rs = 1.0 / EXP_HALF_LIGHT;
    (-r / rs).exp() / (std::f64::consts::TAU * rs * rs)
}

/// de Vaucouleurs surface brightness at radius `r` (unit flux, unit
/// half-light radius). The normalization constant is
/// `∫ exp(−k(r^¼ − 1)) 2πr dr = 8π e^k · 7!/k⁸ = π e^k · 8!/k⁸` via the
/// substitution `u = k r^¼`.
pub fn dev_profile(r: f64) -> f64 {
    let norm = std::f64::consts::PI * DEV_K.exp() * factorial(8) / DEV_K.powi(8);
    (-DEV_K * (r.powf(0.25) - 1.0)).exp() / norm
}

fn factorial(n: u32) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

fn fit_profile(profile: fn(f64) -> f64, sigmas: &[f64]) -> MixtureProfile {
    // Log-spaced radii spanning core to far wings, weighted by annulus
    // area so the fit matches enclosed flux rather than peak brightness.
    let n_r = 240;
    let r_min: f64 = 5e-3;
    let r_max: f64 = 12.0;
    let log_step = (r_max / r_min).ln() / (n_r as f64 - 1.0);
    let radii: Vec<f64> = (0..n_r)
        .map(|j| r_min * (log_step * j as f64).exp())
        .collect();
    let mut design = Mat::zeros(n_r, sigmas.len());
    let mut target = vec![0.0; n_r];
    for (j, &r) in radii.iter().enumerate() {
        // Annulus flux weight: √(2πr·Δr) applied to both sides.
        let dr = r * log_step;
        let w = (std::f64::consts::TAU * r * dr).sqrt();
        for (k, &s) in sigmas.iter().enumerate() {
            let v = s * s;
            design[(j, k)] = w * (-0.5 * r * r / v).exp() / (std::f64::consts::TAU * v);
        }
        target[j] = w * profile(r);
    }
    let mut weights = nnls(&design, &target, 20_000);
    // Exact flux conservation: each unit Gaussian carries unit flux.
    let total: f64 = weights.iter().sum();
    assert!(total > 0.5, "profile fit degenerate: total weight {total}");
    for w in &mut weights {
        *w /= total;
    }
    MixtureProfile {
        weights,
        vars: sigmas.iter().map(|s| s * s).collect(),
    }
}

/// The 6-Gaussian exponential profile approximation (fit once, cached).
pub fn exp_mixture() -> &'static MixtureProfile {
    static CACHE: OnceLock<MixtureProfile> = OnceLock::new();
    CACHE.get_or_init(|| fit_profile(exp_profile, &[0.12, 0.22, 0.40, 0.72, 1.3, 2.4]))
}

/// The 8-Gaussian de Vaucouleurs profile approximation (fit once,
/// cached). The deV profile needs a much wider ladder: a cuspy core
/// plus wings carrying flux past 10 `r_e`.
pub fn dev_mixture() -> &'static MixtureProfile {
    static CACHE: OnceLock<MixtureProfile> = OnceLock::new();
    CACHE.get_or_init(|| fit_profile(dev_profile, &[0.018, 0.05, 0.12, 0.28, 0.62, 1.4, 3.2, 7.5]))
}

/// Sky-frame covariance (arcsec²) for one unit-variance profile
/// component under the source's shape: rotate by the position angle,
/// stretch to `radius` along the major axis and `radius · axis_ratio`
/// along the minor axis.
pub fn shape_covariance(
    unit_var: f64,
    radius_arcsec: f64,
    axis_ratio: f64,
    angle_rad: f64,
) -> Cov2 {
    let (s, c) = angle_rad.sin_cos();
    let major = unit_var * radius_arcsec * radius_arcsec;
    let minor = major * axis_ratio * axis_ratio;
    // R diag(major, minor) Rᵀ
    Cov2 {
        xx: c * c * major + s * s * minor,
        xy: s * c * (major - minor),
        yy: s * s * major + c * c * minor,
    }
}

/// The combined (deV/exp weighted) galaxy mixture in the sky frame:
/// a list of `(flux_weight, covariance_arcsec²)` pairs.
pub fn galaxy_mixture_sky(
    frac_dev: f64,
    radius_arcsec: f64,
    axis_ratio: f64,
    angle_rad: f64,
) -> Vec<(f64, Cov2)> {
    let mut out = Vec::with_capacity(14);
    let dev = dev_mixture();
    let exp = exp_mixture();
    for (w, v) in dev.weights.iter().zip(&dev.vars) {
        out.push((
            frac_dev * w,
            shape_covariance(*v, radius_arcsec, axis_ratio, angle_rad),
        ));
    }
    for (w, v) in exp.weights.iter().zip(&exp.vars) {
        out.push((
            (1.0 - frac_dev) * w,
            shape_covariance(*v, radius_arcsec, axis_ratio, angle_rad),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enclosed_flux(profile: fn(f64) -> f64, r_lim: f64) -> f64 {
        // Trapezoid over log-spaced radii.
        let n = 4000;
        let r_min: f64 = 1e-5;
        let step = (r_lim / r_min).ln() / n as f64;
        let mut total = 0.0;
        for j in 0..n {
            let r = r_min * ((j as f64 + 0.5) * step).exp();
            total += profile(r) * std::f64::consts::TAU * r * (r * step);
        }
        total
    }

    #[test]
    fn profiles_are_normalized() {
        assert!((enclosed_flux(exp_profile, 40.0) - 1.0).abs() < 1e-3);
        assert!((enclosed_flux(dev_profile, 4000.0) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn half_light_radius_is_one() {
        let e = enclosed_flux(exp_profile, 1.0);
        assert!((e - 0.5).abs() < 2e-3, "exp enclosed at r_e: {e}");
        let d = enclosed_flux(dev_profile, 1.0);
        assert!((d - 0.5).abs() < 2e-2, "deV enclosed at r_e: {d}");
    }

    #[test]
    fn mixtures_conserve_flux() {
        assert!((exp_mixture().weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dev_mixture().weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_tracks_exp_profile() {
        let m = exp_mixture();
        // Mixture surface brightness vs analytic, mid radii.
        for &r in &[0.3, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let mix: f64 = m
                .weights
                .iter()
                .zip(&m.vars)
                .map(|(w, v)| w * (-0.5 * r * r / v).exp() / (std::f64::consts::TAU * v))
                .sum();
            let truth = exp_profile(r);
            assert!(
                (mix - truth).abs() < 0.12 * truth + 1e-4,
                "exp mixture at r={r}: {mix} vs {truth}"
            );
        }
    }

    #[test]
    fn mixture_tracks_dev_profile() {
        let m = dev_mixture();
        for &r in &[0.2, 0.5, 1.0, 2.0, 4.0] {
            let mix: f64 = m
                .weights
                .iter()
                .zip(&m.vars)
                .map(|(w, v)| w * (-0.5 * r * r / v).exp() / (std::f64::consts::TAU * v))
                .sum();
            let truth = dev_profile(r);
            assert!(
                (mix - truth).abs() < 0.25 * truth + 1e-4,
                "deV mixture at r={r}: {mix} vs {truth}"
            );
        }
    }

    #[test]
    fn shape_covariance_round_source() {
        // axis_ratio = 1 must be rotation invariant.
        let a = shape_covariance(1.0, 2.0, 1.0, 0.0);
        let b = shape_covariance(1.0, 2.0, 1.0, 1.1);
        assert!((a.xx - b.xx).abs() < 1e-12 && (a.xy - b.xy).abs() < 1e-12);
        assert!((a.xx - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shape_covariance_rotates_major_axis() {
        // Angle π/2 swaps major/minor onto the axes.
        let c = shape_covariance(1.0, 3.0, 0.5, std::f64::consts::FRAC_PI_2);
        assert!((c.yy - 9.0).abs() < 1e-9);
        assert!((c.xx - 2.25).abs() < 1e-9);
        assert!(c.xy.abs() < 1e-9);
    }

    #[test]
    fn galaxy_mixture_weights_sum_to_one() {
        let g = galaxy_mixture_sky(0.3, 1.5, 0.7, 0.4);
        let total: f64 = g.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(g.len(), 14);
    }
}
