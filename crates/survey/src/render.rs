//! Forward simulation: render a catalog into survey images.
//!
//! This is the generative model of paper §III run forwards: every
//! source contributes `flux_band · ι · g_s(pixel)` expected counts,
//! where `g_s` is the PSF mixture for a star or the shape-transformed
//! profile mixture convolved with the PSF for a galaxy; pixel values
//! are then drawn `x ~ Poisson(F)`.

use crate::catalog::{Catalog, CatalogEntry};
use crate::galaxy::galaxy_mixture_sky;
use crate::gmm::{BvnComponent, Gmm};
use crate::image::Image;
use crate::sampling::poisson;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Number of sigmas of support rendered around each source.
const RENDER_NSIGMA: f64 = 5.0;

/// Build the pixel-space appearance (unit-flux Gaussian mixture) of a
/// source in a given image: PSF for stars, profile ⊛ PSF for galaxies.
pub fn source_gmm_pix(entry: &CatalogEntry, img: &Image) -> Gmm {
    let center = img.wcs.sky_to_pix(&entry.pos);
    let psf = img.psf.to_gmm();
    let base = if entry.is_star() {
        psf
    } else {
        let jac = img.wcs.jac_per_arcsec();
        let sky = galaxy_mixture_sky(
            entry.shape.frac_dev,
            entry.shape.radius_arcsec,
            entry.shape.axis_ratio,
            entry.shape.angle_rad,
        );
        let profile = Gmm::new(
            sky.iter()
                .map(|(w, cov)| BvnComponent {
                    weight: *w,
                    mean: [0.0, 0.0],
                    cov: cov.congruence(&jac),
                })
                .collect(),
        );
        profile.convolve(&psf)
    };
    base.shifted(center[0], center[1])
}

/// Add a catalog's expected counts into `expected` (length = pixels of
/// `img`), which should start at the sky level.
///
/// Rows are evaluated in parallel; each pixel still accumulates its
/// sources in catalog order, so the output is bit-identical to a
/// serial sweep at any thread count.
pub fn accumulate_expected(catalog: &Catalog, img: &Image, expected: &mut [f64]) {
    assert_eq!(expected.len(), img.len());
    let band = img.band.index();
    // Per-source appearance and clipped support box, prepared once up
    // front (cheap relative to the per-pixel mixture evaluations).
    struct Prepared {
        gmm: Gmm,
        flux_counts: f64,
        xs: std::ops::Range<usize>,
        ys: std::ops::Range<usize>,
    }
    let prepared: Vec<Prepared> = catalog
        .entries
        .iter()
        .filter_map(|entry| {
            let flux_counts = entry.fluxes()[band] * img.nmgy_to_counts;
            if flux_counts <= 0.0 {
                return None;
            }
            let gmm = source_gmm_pix(entry, img);
            let center = img.wcs.sky_to_pix(&entry.pos);
            let r = gmm
                .support_radius(RENDER_NSIGMA)
                .min(img.width.max(img.height) as f64);
            let (xs, ys) = img.clip_box(center[0] - r, center[0] + r, center[1] - r, center[1] + r);
            Some(Prepared {
                gmm,
                flux_counts,
                xs,
                ys,
            })
        })
        .collect();
    let width = img.width;
    expected
        .par_chunks_mut(width)
        .enumerate()
        .for_each(|(y, row)| {
            let py = y as f64 + 0.5;
            for p in &prepared {
                if !p.ys.contains(&y) {
                    continue;
                }
                for (dx, e) in row[p.xs.clone()].iter_mut().enumerate() {
                    let px = (p.xs.start + dx) as f64 + 0.5;
                    *e += p.flux_counts * p.gmm.eval(px, py);
                }
            }
        });
}

/// Expected counts per pixel for a catalog (sky + all sources).
pub fn render_expected(catalog: &Catalog, img: &Image) -> Vec<f64> {
    let mut expected = vec![img.sky_level; img.len()];
    accumulate_expected(catalog, img, &mut expected);
    expected
}

/// Render observed counts: Poisson noise applied to the expected rates.
/// Rows are drawn in parallel with deterministic per-row seeds derived
/// from `seed`, so output is reproducible regardless of thread count.
pub fn render_observed(catalog: &Catalog, img: &mut Image, seed: u64) {
    let expected = render_expected(catalog, img);
    let width = img.width;
    img.pixels
        .par_chunks_mut(width)
        .zip(expected.par_chunks(width))
        .enumerate()
        .for_each(|(y, (row, exp_row))| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (y as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for (p, &lam) in row.iter_mut().zip(exp_row) {
                *p = poisson(&mut rng, lam.max(0.0)) as f32;
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::Band;
    use crate::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use crate::psf::Psf;
    use crate::skygeom::{FieldId, SkyCoord, SkyRect};
    use crate::wcs::Wcs;

    fn test_image() -> Image {
        let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
        Image::blank(
            FieldId {
                run: 1,
                camcol: 1,
                field: 0,
            },
            Band::R,
            Wcs::for_rect(&rect, 96, 96),
            96,
            96,
            100.0,
            300.0,
            Psf::single(1.5),
        )
    }

    fn star_at_center(flux: f64) -> CatalogEntry {
        CatalogEntry {
            id: 1,
            pos: SkyCoord::new(0.01, 0.01),
            source_type: SourceType::Star,
            flux_r_nmgy: flux,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    #[test]
    fn star_flux_is_conserved_in_expected_image() {
        let img = test_image();
        let cat = Catalog::new(vec![star_at_center(10.0)]);
        let expected = render_expected(&cat, &img);
        let excess: f64 = expected.iter().map(|&e| e - img.sky_level).sum();
        // 10 nmgy × 300 counts/nmgy = 3000 counts, minus bounding-box tail.
        assert!((excess - 3000.0).abs() < 0.01 * 3000.0, "excess {excess}");
    }

    #[test]
    fn star_peak_at_source_position() {
        let img = test_image();
        let cat = Catalog::new(vec![star_at_center(10.0)]);
        let expected = render_expected(&cat, &img);
        let (imax, _) = expected
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (x, y) = (imax % img.width, imax / img.width);
        let c = img.wcs.sky_to_pix(&SkyCoord::new(0.01, 0.01));
        assert!((x as f64 + 0.5 - c[0]).abs() <= 1.0);
        assert!((y as f64 + 0.5 - c[1]).abs() <= 1.0);
    }

    #[test]
    fn galaxy_is_more_extended_than_star() {
        let img = test_image();
        let mut gal = star_at_center(10.0);
        gal.source_type = SourceType::Galaxy;
        gal.shape = GalaxyShape {
            frac_dev: 0.0,
            axis_ratio: 1.0,
            angle_rad: 0.0,
            radius_arcsec: 3.0,
        };
        let e_star = render_expected(&Catalog::new(vec![star_at_center(10.0)]), &img);
        let e_gal = render_expected(&Catalog::new(vec![gal]), &img);
        let peak = |e: &[f64]| e.iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            peak(&e_star) > 1.5 * peak(&e_gal),
            "star peak {} vs galaxy peak {}",
            peak(&e_star),
            peak(&e_gal)
        );
    }

    #[test]
    fn observed_render_is_deterministic_per_seed() {
        let mut a = test_image();
        let mut b = test_image();
        let cat = Catalog::new(vec![star_at_center(5.0)]);
        render_observed(&cat, &mut a, 7);
        render_observed(&cat, &mut b, 7);
        assert_eq!(a.pixels, b.pixels);
        let mut c = test_image();
        render_observed(&cat, &mut c, 8);
        assert_ne!(a.pixels, c.pixels);
    }

    #[test]
    fn observed_counts_near_expected_for_bright_source() {
        let mut img = test_image();
        let cat = Catalog::new(vec![star_at_center(100.0)]);
        render_observed(&cat, &mut img, 3);
        let total: f64 = img.pixels.iter().map(|&p| p as f64).sum();
        let expected: f64 = render_expected(&cat, &img).iter().sum();
        // Poisson sd ≈ √expected ≈ 1000; allow 5σ.
        assert!((total - expected).abs() < 5.0 * expected.sqrt());
    }

    #[test]
    fn off_image_source_contributes_nothing() {
        let img = test_image();
        let mut far = star_at_center(1000.0);
        far.pos = SkyCoord::new(5.0, 5.0);
        let expected = render_expected(&Catalog::new(vec![far]), &img);
        assert!(expected.iter().all(|&e| (e - img.sky_level).abs() < 1e-9));
    }
}
