//! Sky coordinates and the survey's stripe/run/field geometry.
//!
//! SDSS scans the sky in *stripes* along great circles (paper Fig. 3);
//! each scan of a stripe is a *run*, split across camera columns into
//! *fields* — the 12 MB image files of Fig. 1. Stripes overlap, and some
//! sky (Stripe 82) was imaged ~80 times. This module reproduces that
//! geometry on a flat-sky approximation: positions are (ra, dec) in
//! degrees, and fields are axis-aligned rectangles with configurable
//! overlap, so that — as in the paper — a light source may appear in
//! anywhere from 1 to ~80 images.

/// A position on the sky, in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SkyCoord {
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub dec: f64,
}

impl SkyCoord {
    pub fn new(ra: f64, dec: f64) -> Self {
        SkyCoord { ra, dec }
    }

    /// Angular separation in arcseconds (flat-sky, adequate for the
    /// sub-degree fields this survey generates).
    pub fn sep_arcsec(&self, other: &SkyCoord) -> f64 {
        let cosd = (0.5 * (self.dec + other.dec)).to_radians().cos();
        let dra = (self.ra - other.ra) * cosd;
        let ddec = self.dec - other.dec;
        (dra * dra + ddec * ddec).sqrt() * 3600.0
    }
}

/// An axis-aligned rectangle on the sky (degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyRect {
    pub ra_min: f64,
    pub ra_max: f64,
    pub dec_min: f64,
    pub dec_max: f64,
}

impl SkyRect {
    pub fn new(ra_min: f64, ra_max: f64, dec_min: f64, dec_max: f64) -> Self {
        debug_assert!(ra_min <= ra_max && dec_min <= dec_max);
        SkyRect {
            ra_min,
            ra_max,
            dec_min,
            dec_max,
        }
    }

    pub fn contains(&self, p: &SkyCoord) -> bool {
        p.ra >= self.ra_min && p.ra < self.ra_max && p.dec >= self.dec_min && p.dec < self.dec_max
    }

    pub fn center(&self) -> SkyCoord {
        SkyCoord::new(
            0.5 * (self.ra_min + self.ra_max),
            0.5 * (self.dec_min + self.dec_max),
        )
    }

    pub fn width_deg(&self) -> f64 {
        self.ra_max - self.ra_min
    }

    pub fn height_deg(&self) -> f64 {
        self.dec_max - self.dec_min
    }

    pub fn area_sq_deg(&self) -> f64 {
        self.width_deg() * self.height_deg()
    }

    pub fn intersects(&self, other: &SkyRect) -> bool {
        self.ra_min < other.ra_max
            && other.ra_min < self.ra_max
            && self.dec_min < other.dec_max
            && other.dec_min < self.dec_max
    }

    /// Grow the rectangle by `margin_deg` on every side.
    pub fn padded(&self, margin_deg: f64) -> SkyRect {
        SkyRect {
            ra_min: self.ra_min - margin_deg,
            ra_max: self.ra_max + margin_deg,
            dec_min: self.dec_min - margin_deg,
            dec_max: self.dec_max + margin_deg,
        }
    }

    /// Split along the longer axis at `frac` ∈ (0,1).
    pub fn split(&self, frac: f64) -> (SkyRect, SkyRect) {
        assert!(frac > 0.0 && frac < 1.0);
        if self.width_deg() >= self.height_deg() {
            let mid = self.ra_min + frac * self.width_deg();
            (
                SkyRect::new(self.ra_min, mid, self.dec_min, self.dec_max),
                SkyRect::new(mid, self.ra_max, self.dec_min, self.dec_max),
            )
        } else {
            let mid = self.dec_min + frac * self.height_deg();
            (
                SkyRect::new(self.ra_min, self.ra_max, self.dec_min, mid),
                SkyRect::new(self.ra_min, self.ra_max, mid, self.dec_max),
            )
        }
    }
}

/// Identifier of a single field image: (run, camcol, field, band).
///
/// `run` encodes both the stripe and the epoch: repeat scans of the same
/// stripe produce distinct runs covering the same sky, which is how the
/// survey ends up with 5–480 images of a given source (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId {
    pub run: u32,
    pub camcol: u16,
    pub field: u16,
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:06}-{}-{:04}", self.run, self.camcol, self.field)
    }
}

/// Metadata for one field: where it lies on the sky and which run/epoch
/// produced it. This is the paper's Λ_n "image metadata" constant.
#[derive(Debug, Clone)]
pub struct FieldMeta {
    pub id: FieldId,
    /// Sky footprint of the field.
    pub rect: SkyRect,
    /// Epoch index within its stripe (0 for the first scan).
    pub epoch: u32,
    /// Stripe number this field belongs to.
    pub stripe: u32,
}

/// Layout of a synthetic survey's stripes and fields on the sky.
#[derive(Debug, Clone)]
pub struct SurveyGeometry {
    pub fields: Vec<FieldMeta>,
    /// Overall footprint.
    pub footprint: SkyRect,
}

/// Parameters for [`SurveyGeometry::generate`].
#[derive(Debug, Clone)]
pub struct GeometryConfig {
    /// Number of stripes stacked in declination.
    pub n_stripes: u32,
    /// Stripe height in degrees.
    pub stripe_height_deg: f64,
    /// Fractional overlap between adjacent stripes (0.0–0.5).
    pub stripe_overlap: f64,
    /// Fields per stripe along right ascension.
    pub fields_per_stripe: u32,
    /// Field width in degrees of RA.
    pub field_width_deg: f64,
    /// Fractional overlap between adjacent fields in a stripe.
    pub field_overlap: f64,
    /// Number of epochs (repeat scans) per stripe; index 0 gets
    /// `stripe82_epochs` if marked.
    pub epochs_per_stripe: u32,
    /// Stripe index (if any) that gets deep repeat imaging, like SDSS
    /// Stripe 82.
    pub deep_stripe: Option<u32>,
    /// Number of epochs for the deep stripe.
    pub deep_epochs: u32,
}

impl Default for GeometryConfig {
    fn default() -> Self {
        GeometryConfig {
            n_stripes: 3,
            stripe_height_deg: 0.1,
            stripe_overlap: 0.15,
            fields_per_stripe: 4,
            field_width_deg: 0.1,
            field_overlap: 0.1,
            epochs_per_stripe: 1,
            deep_stripe: Some(0),
            deep_epochs: 8,
        }
    }
}

impl SurveyGeometry {
    /// Lay out stripes and fields. Runs are numbered so that
    /// `run = stripe * 1000 + epoch`.
    pub fn generate(cfg: &GeometryConfig) -> SurveyGeometry {
        let mut fields = Vec::new();
        let stripe_step = cfg.stripe_height_deg * (1.0 - cfg.stripe_overlap);
        let field_step = cfg.field_width_deg * (1.0 - cfg.field_overlap);
        for stripe in 0..cfg.n_stripes {
            let dec0 = stripe as f64 * stripe_step;
            let epochs = if cfg.deep_stripe == Some(stripe) {
                cfg.deep_epochs
            } else {
                cfg.epochs_per_stripe
            };
            for epoch in 0..epochs {
                let run = stripe * 1000 + epoch;
                for f in 0..cfg.fields_per_stripe {
                    let ra0 = f as f64 * field_step;
                    fields.push(FieldMeta {
                        id: FieldId {
                            run,
                            camcol: 1,
                            field: f as u16,
                        },
                        rect: SkyRect::new(
                            ra0,
                            ra0 + cfg.field_width_deg,
                            dec0,
                            dec0 + cfg.stripe_height_deg,
                        ),
                        epoch,
                        stripe,
                    });
                }
            }
        }
        let footprint = fields
            .iter()
            .map(|f| f.rect)
            .fold(fields[0].rect, |acc, r| {
                SkyRect::new(
                    acc.ra_min.min(r.ra_min),
                    acc.ra_max.max(r.ra_max),
                    acc.dec_min.min(r.dec_min),
                    acc.dec_max.max(r.dec_max),
                )
            });
        SurveyGeometry { fields, footprint }
    }

    /// All fields whose footprint contains the given position.
    pub fn fields_containing(&self, p: &SkyCoord) -> Vec<&FieldMeta> {
        self.fields.iter().filter(|f| f.rect.contains(p)).collect()
    }

    /// All fields intersecting the given sky rectangle.
    pub fn fields_intersecting(&self, r: &SkyRect) -> Vec<&FieldMeta> {
        self.fields
            .iter()
            .filter(|f| f.rect.intersects(r))
            .collect()
    }

    /// ASCII sky-coverage map (paper Fig. 3 analogue): each cell counts
    /// how many images cover that patch of sky.
    pub fn coverage_map(&self, cols: usize, rows: usize) -> String {
        let fp = &self.footprint;
        let mut out = String::new();
        for j in (0..rows).rev() {
            for i in 0..cols {
                let p = SkyCoord::new(
                    fp.ra_min + (i as f64 + 0.5) / cols as f64 * fp.width_deg(),
                    fp.dec_min + (j as f64 + 0.5) / rows as f64 * fp.height_deg(),
                );
                let n = self.fields_containing(&p).len();
                let ch = match n {
                    0 => '.',
                    1..=9 => char::from_digit(n as u32, 10).unwrap(),
                    _ => '#',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sep_arcsec_known_offsets() {
        let a = SkyCoord::new(10.0, 0.0);
        let b = SkyCoord::new(10.0, 0.001); // 3.6 arcsec in dec
        assert!((a.sep_arcsec(&b) - 3.6).abs() < 1e-9);
        let c = SkyCoord::new(10.001, 0.0); // 3.6 arcsec in ra at dec 0
        assert!((a.sep_arcsec(&c) - 3.6).abs() < 1e-6);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = SkyRect::new(0.0, 1.0, 0.0, 1.0);
        assert!(r.contains(&SkyCoord::new(0.5, 0.5)));
        assert!(!r.contains(&SkyCoord::new(1.5, 0.5)));
        assert!(r.intersects(&SkyRect::new(0.9, 2.0, 0.9, 2.0)));
        assert!(!r.intersects(&SkyRect::new(1.1, 2.0, 0.0, 1.0)));
    }

    #[test]
    fn split_preserves_area() {
        let r = SkyRect::new(0.0, 2.0, 0.0, 1.0);
        let (a, b) = r.split(0.25);
        assert!((a.area_sq_deg() + b.area_sq_deg() - r.area_sq_deg()).abs() < 1e-12);
        assert!((a.area_sq_deg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometry_overlap_produces_multi_coverage() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        // A point in the deep stripe must be covered by ≥ deep_epochs images.
        let p = SkyCoord::new(0.05, 0.05);
        let n = g.fields_containing(&p).len();
        assert!(n >= 8, "expected deep coverage, got {n}");
        // A point in stripe overlap is covered by fields of two stripes.
        let q = SkyCoord::new(0.05, 0.09);
        let stripes: std::collections::HashSet<u32> =
            g.fields_containing(&q).iter().map(|f| f.stripe).collect();
        assert!(
            stripes.len() >= 2,
            "stripe overlap not covered: {stripes:?}"
        );
    }

    #[test]
    fn coverage_map_shape() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        let map = g.coverage_map(40, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        // Deep stripe (bottom rows) should show high counts.
        assert!(lines[9].contains('8') || lines[9].contains('9') || lines[9].contains('#'));
    }

    #[test]
    fn field_ids_unique() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        let mut ids: Vec<_> = g.fields.iter().map(|f| f.id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
