//! Sky coordinates and the survey's stripe/run/field geometry.
//!
//! SDSS scans the sky in *stripes* along great circles (paper Fig. 3);
//! each scan of a stripe is a *run*, split across camera columns into
//! *fields* — the 12 MB image files of Fig. 1. Stripes overlap, and some
//! sky (Stripe 82) was imaged ~80 times. This module reproduces that
//! geometry on a flat-sky approximation: positions are (ra, dec) in
//! degrees, and fields are axis-aligned rectangles with configurable
//! overlap, so that — as in the paper — a light source may appear in
//! anywhere from 1 to ~80 images.

/// A position on the sky, in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SkyCoord {
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub dec: f64,
}

/// Normalize a right-ascension difference to `(-180, 180]` degrees, so
/// separations and interval tests measure the short way around the
/// 0°/360° seam instead of treating RA as a plain number.
pub fn wrap_dra_deg(dra: f64) -> f64 {
    let d = dra.rem_euclid(360.0);
    if d > 180.0 {
        d - 360.0
    } else {
        d
    }
}

impl SkyCoord {
    pub fn new(ra: f64, dec: f64) -> Self {
        SkyCoord { ra, dec }
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.ra.is_finite() && self.dec.is_finite()
    }

    /// Angular separation in arcseconds (flat-sky, adequate for the
    /// sub-degree fields this survey generates). The RA difference is
    /// taken the short way around the sphere, so positions on either
    /// side of the 0°/360° seam are neighbors, not 360° apart.
    pub fn sep_arcsec(&self, other: &SkyCoord) -> f64 {
        let cosd = (0.5 * (self.dec + other.dec)).to_radians().cos();
        let dra = wrap_dra_deg(self.ra - other.ra) * cosd;
        let ddec = self.dec - other.dec;
        (dra * dra + ddec * ddec).sqrt() * 3600.0
    }
}

/// An axis-aligned rectangle on the sky (degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyRect {
    pub ra_min: f64,
    pub ra_max: f64,
    pub dec_min: f64,
    pub dec_max: f64,
}

impl SkyRect {
    pub fn new(ra_min: f64, ra_max: f64, dec_min: f64, dec_max: f64) -> Self {
        debug_assert!(ra_min <= ra_max && dec_min <= dec_max);
        SkyRect {
            ra_min,
            ra_max,
            dec_min,
            dec_max,
        }
    }

    /// Whether `p` lies inside the rectangle (half-open on the max
    /// edges). The RA interval is treated as an arc on the circle:
    /// a rect spanning the 0°/360° seam (e.g. `ra_min = 359.9,
    /// ra_max = 360.1`) contains `ra = 0.05`, and a point's RA may be
    /// given in any 360° alias. Rects of RA width ≥ 360° contain every
    /// RA.
    pub fn contains(&self, p: &SkyCoord) -> bool {
        // dra ∈ [0, 360), so a full-circle rect (width ≥ 360) accepts
        // every finite RA without a special case.
        let dra = (p.ra - self.ra_min).rem_euclid(360.0);
        dra < self.width_deg() && p.dec >= self.dec_min && p.dec < self.dec_max
    }

    pub fn center(&self) -> SkyCoord {
        SkyCoord::new(
            0.5 * (self.ra_min + self.ra_max),
            0.5 * (self.dec_min + self.dec_max),
        )
    }

    pub fn width_deg(&self) -> f64 {
        self.ra_max - self.ra_min
    }

    pub fn height_deg(&self) -> f64 {
        self.dec_max - self.dec_min
    }

    pub fn area_sq_deg(&self) -> f64 {
        self.width_deg() * self.height_deg()
    }

    /// Whether the two rectangles overlap with positive area. Like
    /// [`SkyRect::contains`], the RA intervals are arcs on the circle,
    /// so rects on opposite sides of the 0°/360° seam intersect when
    /// their arcs do; touching edges do not count as overlap.
    pub fn intersects(&self, other: &SkyRect) -> bool {
        // Offset of the other arc's start from ours, in [0, 360).
        // The arcs overlap iff that start falls inside our arc, or
        // ours falls inside theirs (equivalently the offset wraps back
        // within their width).
        let d = (other.ra_min - self.ra_min).rem_euclid(360.0);
        let ra_overlap = d < self.width_deg() || 360.0 - d < other.width_deg();
        ra_overlap && self.dec_min < other.dec_max && other.dec_min < self.dec_max
    }

    /// Grow the rectangle by `margin_deg` on every side.
    pub fn padded(&self, margin_deg: f64) -> SkyRect {
        SkyRect {
            ra_min: self.ra_min - margin_deg,
            ra_max: self.ra_max + margin_deg,
            dec_min: self.dec_min - margin_deg,
            dec_max: self.dec_max + margin_deg,
        }
    }

    /// Split along the longer axis at `frac` ∈ (0,1).
    pub fn split(&self, frac: f64) -> (SkyRect, SkyRect) {
        assert!(frac > 0.0 && frac < 1.0);
        if self.width_deg() >= self.height_deg() {
            let mid = self.ra_min + frac * self.width_deg();
            (
                SkyRect::new(self.ra_min, mid, self.dec_min, self.dec_max),
                SkyRect::new(mid, self.ra_max, self.dec_min, self.dec_max),
            )
        } else {
            let mid = self.dec_min + frac * self.height_deg();
            (
                SkyRect::new(self.ra_min, self.ra_max, self.dec_min, mid),
                SkyRect::new(self.ra_min, self.ra_max, mid, self.dec_max),
            )
        }
    }
}

/// Identifier of a single field image: (run, camcol, field, band).
///
/// `run` encodes both the stripe and the epoch: repeat scans of the same
/// stripe produce distinct runs covering the same sky, which is how the
/// survey ends up with 5–480 images of a given source (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId {
    pub run: u32,
    pub camcol: u16,
    pub field: u16,
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:06}-{}-{:04}", self.run, self.camcol, self.field)
    }
}

/// Metadata for one field: where it lies on the sky and which run/epoch
/// produced it. This is the paper's Λ_n "image metadata" constant.
#[derive(Debug, Clone)]
pub struct FieldMeta {
    pub id: FieldId,
    /// Sky footprint of the field.
    pub rect: SkyRect,
    /// Epoch index within its stripe (0 for the first scan).
    pub epoch: u32,
    /// Stripe number this field belongs to.
    pub stripe: u32,
}

/// Layout of a synthetic survey's stripes and fields on the sky.
#[derive(Debug, Clone)]
pub struct SurveyGeometry {
    pub fields: Vec<FieldMeta>,
    /// Overall footprint.
    pub footprint: SkyRect,
}

/// Parameters for [`SurveyGeometry::generate`].
#[derive(Debug, Clone)]
pub struct GeometryConfig {
    /// Number of stripes stacked in declination.
    pub n_stripes: u32,
    /// Stripe height in degrees.
    pub stripe_height_deg: f64,
    /// Fractional overlap between adjacent stripes (0.0–0.5).
    pub stripe_overlap: f64,
    /// Fields per stripe along right ascension.
    pub fields_per_stripe: u32,
    /// Field width in degrees of RA.
    pub field_width_deg: f64,
    /// Fractional overlap between adjacent fields in a stripe.
    pub field_overlap: f64,
    /// Number of epochs (repeat scans) per stripe; index 0 gets
    /// `stripe82_epochs` if marked.
    pub epochs_per_stripe: u32,
    /// Stripe index (if any) that gets deep repeat imaging, like SDSS
    /// Stripe 82.
    pub deep_stripe: Option<u32>,
    /// Number of epochs for the deep stripe.
    pub deep_epochs: u32,
}

impl Default for GeometryConfig {
    fn default() -> Self {
        GeometryConfig {
            n_stripes: 3,
            stripe_height_deg: 0.1,
            stripe_overlap: 0.15,
            fields_per_stripe: 4,
            field_width_deg: 0.1,
            field_overlap: 0.1,
            epochs_per_stripe: 1,
            deep_stripe: Some(0),
            deep_epochs: 8,
        }
    }
}

impl SurveyGeometry {
    /// Lay out stripes and fields. Runs are numbered so that
    /// `run = stripe * 1000 + epoch`.
    pub fn generate(cfg: &GeometryConfig) -> SurveyGeometry {
        let mut fields = Vec::new();
        let stripe_step = cfg.stripe_height_deg * (1.0 - cfg.stripe_overlap);
        let field_step = cfg.field_width_deg * (1.0 - cfg.field_overlap);
        for stripe in 0..cfg.n_stripes {
            let dec0 = stripe as f64 * stripe_step;
            let epochs = if cfg.deep_stripe == Some(stripe) {
                cfg.deep_epochs
            } else {
                cfg.epochs_per_stripe
            };
            for epoch in 0..epochs {
                let run = stripe * 1000 + epoch;
                for f in 0..cfg.fields_per_stripe {
                    let ra0 = f as f64 * field_step;
                    fields.push(FieldMeta {
                        id: FieldId {
                            run,
                            camcol: 1,
                            field: f as u16,
                        },
                        rect: SkyRect::new(
                            ra0,
                            ra0 + cfg.field_width_deg,
                            dec0,
                            dec0 + cfg.stripe_height_deg,
                        ),
                        epoch,
                        stripe,
                    });
                }
            }
        }
        // A degenerate config (0 stripes or 0 fields per stripe) is a
        // legal empty footprint, not an index-out-of-bounds panic.
        let footprint = match fields.first() {
            None => SkyRect::new(0.0, 0.0, 0.0, 0.0),
            Some(first) => fields.iter().map(|f| f.rect).fold(first.rect, |acc, r| {
                SkyRect::new(
                    acc.ra_min.min(r.ra_min),
                    acc.ra_max.max(r.ra_max),
                    acc.dec_min.min(r.dec_min),
                    acc.dec_max.max(r.dec_max),
                )
            }),
        };
        SurveyGeometry { fields, footprint }
    }

    /// All fields whose footprint contains the given position.
    pub fn fields_containing(&self, p: &SkyCoord) -> Vec<&FieldMeta> {
        self.fields.iter().filter(|f| f.rect.contains(p)).collect()
    }

    /// All fields intersecting the given sky rectangle.
    pub fn fields_intersecting(&self, r: &SkyRect) -> Vec<&FieldMeta> {
        self.fields
            .iter()
            .filter(|f| f.rect.intersects(r))
            .collect()
    }

    /// ASCII sky-coverage map (paper Fig. 3 analogue): each cell counts
    /// how many images cover that patch of sky.
    pub fn coverage_map(&self, cols: usize, rows: usize) -> String {
        let fp = &self.footprint;
        let mut out = String::new();
        for j in (0..rows).rev() {
            for i in 0..cols {
                let p = SkyCoord::new(
                    fp.ra_min + (i as f64 + 0.5) / cols as f64 * fp.width_deg(),
                    fp.dec_min + (j as f64 + 0.5) / rows as f64 * fp.height_deg(),
                );
                let n = self.fields_containing(&p).len();
                let ch = match n {
                    0 => '.',
                    1..=9 => char::from_digit(n as u32, 10).unwrap(),
                    _ => '#',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

/// Finest supported [`CellId`] level (cells of ~0.00017°); beyond this
/// the per-level column counts would overflow `u32`.
pub const MAX_CELL_LEVEL: u8 = 20;

/// One cell of the hierarchical sky grid: at `level` L the sphere is
/// tiled by `2·2^L × 2^L` equal cells of `180/2^L` degrees on a side
/// (RA columns wrap around the 0°/360° seam; dec rows span ±90°).
/// Level 0 is two hemispheric cells; each refinement splits a cell
/// into four [`CellId::children`]. This is the spatial-partitioning
/// shape survey catalogs shard on (MOC/HATS-style), flattened to the
/// survey's flat-sky metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Refinement level, 0 ..= [`MAX_CELL_LEVEL`].
    pub level: u8,
    /// RA column, `0 .. 2·2^level`, counting east from RA 0°.
    pub ix: u32,
    /// Dec row, `0 .. 2^level`, counting north from dec −90°.
    pub iy: u32,
}

impl CellId {
    /// Cell side length in degrees at `level`.
    pub fn side_deg(level: u8) -> f64 {
        180.0 / (1u64 << level.min(MAX_CELL_LEVEL)) as f64
    }

    /// Number of RA columns at `level`.
    pub fn n_ra(level: u8) -> u32 {
        2 << level.min(MAX_CELL_LEVEL)
    }

    /// Number of dec rows at `level`.
    pub fn n_dec(level: u8) -> u32 {
        1 << level.min(MAX_CELL_LEVEL)
    }

    /// The cell containing `p` at `level`. RA is taken mod 360°, dec
    /// is clamped to ±90°, so every finite position maps to exactly
    /// one cell; non-finite positions map to cell (0, 0) — callers
    /// that care filter such entries first.
    pub fn of(p: &SkyCoord, level: u8) -> CellId {
        let level = level.min(MAX_CELL_LEVEL);
        let side = CellId::side_deg(level);
        let ra = if p.ra.is_finite() {
            p.ra.rem_euclid(360.0)
        } else {
            0.0
        };
        let dec = if p.dec.is_finite() {
            p.dec.clamp(-90.0, 90.0)
        } else {
            -90.0
        };
        let ix = ((ra / side) as u32).min(CellId::n_ra(level) - 1);
        let iy = (((dec + 90.0) / side) as u32).min(CellId::n_dec(level) - 1);
        CellId { level, ix, iy }
    }

    /// The cell's sky footprint.
    pub fn rect(&self) -> SkyRect {
        let side = CellId::side_deg(self.level);
        SkyRect::new(
            self.ix as f64 * side,
            (self.ix + 1) as f64 * side,
            self.iy as f64 * side - 90.0,
            (self.iy + 1) as f64 * side - 90.0,
        )
    }

    /// The enclosing cell one level coarser (`None` at level 0).
    pub fn parent(&self) -> Option<CellId> {
        if self.level == 0 {
            return None;
        }
        Some(CellId {
            level: self.level - 1,
            ix: self.ix / 2,
            iy: self.iy / 2,
        })
    }

    /// The four cells tiling this one at the next finer level.
    pub fn children(&self) -> [CellId; 4] {
        let level = (self.level + 1).min(MAX_CELL_LEVEL);
        let (ix, iy) = (self.ix * 2, self.iy * 2);
        [
            CellId { level, ix, iy },
            CellId {
                level,
                ix: ix + 1,
                iy,
            },
            CellId {
                level,
                ix,
                iy: iy + 1,
            },
            CellId {
                level,
                ix: ix + 1,
                iy: iy + 1,
            },
        ]
    }

    /// Every cell at `level` whose footprint overlaps `rect` (RA
    /// handled periodically, like [`SkyRect::intersects`]). A point
    /// contained in `rect` is always inside one of the returned cells.
    pub fn covering(rect: &SkyRect, level: u8) -> Vec<CellId> {
        let level = level.min(MAX_CELL_LEVEL);
        let side = CellId::side_deg(level);
        let (n_ra, n_dec) = (CellId::n_ra(level), CellId::n_dec(level));
        let width = rect.width_deg();
        let height = rect.height_deg();
        if !(width > 0.0 && height > 0.0) {
            return Vec::new();
        }
        // Dec rows whose (half-open) span overlaps the rect's.
        let lo = ((rect.dec_min.clamp(-90.0, 90.0) + 90.0) / side) as u32;
        let hi_edge = (rect.dec_max.clamp(-90.0, 90.0) + 90.0) / side;
        let hi = (hi_edge.ceil() as i64 - 1).clamp(0, (n_dec - 1) as i64) as u32;
        // RA columns, walked eastward from the one containing ra_min;
        // a column is covered while its start angle precedes the arc's
        // (unwrapped) end.
        let start = rect.ra_min.rem_euclid(360.0);
        let end = start + width.min(360.0);
        let c0 = ((start / side) as u32).min(n_ra - 1);
        let mut cells = Vec::new();
        let mut k = 0u32;
        while k < n_ra && (c0 + k) as f64 * side < end {
            let ix = (c0 + k) % n_ra;
            for iy in lo.min(n_dec - 1)..=hi {
                cells.push(CellId { level, ix, iy });
            }
            k += 1;
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sep_arcsec_known_offsets() {
        let a = SkyCoord::new(10.0, 0.0);
        let b = SkyCoord::new(10.0, 0.001); // 3.6 arcsec in dec
        assert!((a.sep_arcsec(&b) - 3.6).abs() < 1e-9);
        let c = SkyCoord::new(10.001, 0.0); // 3.6 arcsec in ra at dec 0
        assert!((a.sep_arcsec(&c) - 3.6).abs() < 1e-6);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = SkyRect::new(0.0, 1.0, 0.0, 1.0);
        assert!(r.contains(&SkyCoord::new(0.5, 0.5)));
        assert!(!r.contains(&SkyCoord::new(1.5, 0.5)));
        assert!(r.intersects(&SkyRect::new(0.9, 2.0, 0.9, 2.0)));
        assert!(!r.intersects(&SkyRect::new(1.1, 2.0, 0.0, 1.0)));
    }

    #[test]
    fn split_preserves_area() {
        let r = SkyRect::new(0.0, 2.0, 0.0, 1.0);
        let (a, b) = r.split(0.25);
        assert!((a.area_sq_deg() + b.area_sq_deg() - r.area_sq_deg()).abs() < 1e-12);
        assert!((a.area_sq_deg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometry_overlap_produces_multi_coverage() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        // A point in the deep stripe must be covered by ≥ deep_epochs images.
        let p = SkyCoord::new(0.05, 0.05);
        let n = g.fields_containing(&p).len();
        assert!(n >= 8, "expected deep coverage, got {n}");
        // A point in stripe overlap is covered by fields of two stripes.
        let q = SkyCoord::new(0.05, 0.09);
        let stripes: std::collections::HashSet<u32> =
            g.fields_containing(&q).iter().map(|f| f.stripe).collect();
        assert!(
            stripes.len() >= 2,
            "stripe overlap not covered: {stripes:?}"
        );
    }

    #[test]
    fn coverage_map_shape() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        let map = g.coverage_map(40, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
        // Deep stripe (bottom rows) should show high counts.
        assert!(lines[9].contains('8') || lines[9].contains('9') || lines[9].contains('#'));
    }

    #[test]
    fn field_ids_unique() {
        let g = SurveyGeometry::generate(&GeometryConfig::default());
        let mut ids: Vec<_> = g.fields.iter().map(|f| f.id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn sep_arcsec_wraps_the_ra_seam() {
        // 0.001° apart across the seam, not 359.998° apart.
        let a = SkyCoord::new(359.9995, 0.0);
        let b = SkyCoord::new(0.0005, 0.0);
        assert!(
            (a.sep_arcsec(&b) - 3.6).abs() < 1e-6,
            "{}",
            a.sep_arcsec(&b)
        );
        assert!((b.sep_arcsec(&a) - 3.6).abs() < 1e-6);
        // Aliased RA values measure the same separation.
        let c = SkyCoord::new(-0.0005, 0.0);
        assert!((a.sep_arcsec(&b) - c.sep_arcsec(&b)).abs() < 1e-9);
        // The long way is never reported: antipodal-in-RA is 180°.
        let d = SkyCoord::new(190.0, 0.0);
        let e = SkyCoord::new(10.0, 0.0);
        assert!((d.sep_arcsec(&e) / 3600.0 - 180.0).abs() < 1e-9);
    }

    #[test]
    fn rect_contains_and_intersects_across_the_seam() {
        let r = SkyRect::new(359.9, 360.1, -0.5, 0.5);
        assert!(r.contains(&SkyCoord::new(0.05, 0.0)));
        assert!(r.contains(&SkyCoord::new(359.95, 0.0)));
        assert!(r.contains(&SkyCoord::new(-0.05, 0.0)), "aliased ra");
        assert!(!r.contains(&SkyCoord::new(0.15, 0.0)));
        assert!(!r.contains(&SkyCoord::new(180.0, 0.0)));
        assert!(r.intersects(&SkyRect::new(0.05, 1.0, 0.0, 1.0)));
        assert!(SkyRect::new(0.05, 1.0, 0.0, 1.0).intersects(&r));
        assert!(!r.intersects(&SkyRect::new(0.1, 1.0, 0.0, 1.0)), "touching");
        assert!(!r.intersects(&SkyRect::new(10.0, 20.0, 0.0, 1.0)));
        // Non-wrapping behavior is unchanged.
        let p = SkyRect::new(0.0, 1.0, 0.0, 1.0);
        assert!(p.contains(&SkyCoord::new(0.5, 0.5)));
        assert!(!p.contains(&SkyCoord::new(1.5, 0.5)));
        assert!(!p.contains(&SkyCoord::new(0.5, f64::NAN)));
        assert!(!p.contains(&SkyCoord::new(f64::NAN, 0.5)));
    }

    #[test]
    fn degenerate_geometry_configs_yield_empty_footprints() {
        for cfg in [
            GeometryConfig {
                n_stripes: 0,
                ..GeometryConfig::default()
            },
            GeometryConfig {
                fields_per_stripe: 0,
                ..GeometryConfig::default()
            },
        ] {
            let g = SurveyGeometry::generate(&cfg);
            assert!(g.fields.is_empty());
            assert_eq!(g.footprint.area_sq_deg(), 0.0);
            assert!(g.fields_containing(&SkyCoord::new(0.0, 0.0)).is_empty());
            assert!(g
                .fields_intersecting(&SkyRect::new(0.0, 1.0, 0.0, 1.0))
                .is_empty());
        }
    }

    #[test]
    fn cell_of_and_rect_are_consistent() {
        for level in [0u8, 2, 5, 9] {
            for &(ra, dec) in &[
                (0.0, 0.0),
                (359.999, -89.999),
                (0.001, 89.9),
                (180.0, 45.0),
                (-0.5, -45.0), // aliased ra
                (725.0, 0.0),  // aliased ra
            ] {
                let p = SkyCoord::new(ra, dec);
                let cell = CellId::of(&p, level);
                assert!(cell.ix < CellId::n_ra(level));
                assert!(cell.iy < CellId::n_dec(level));
                assert!(
                    cell.rect().contains(&p),
                    "cell {cell:?} does not contain ({ra}, {dec})"
                );
            }
        }
    }

    #[test]
    fn cell_hierarchy_roundtrips() {
        let p = SkyCoord::new(123.4, -12.3);
        let cell = CellId::of(&p, 7);
        assert_eq!(cell.parent().unwrap(), CellId::of(&p, 6));
        assert!(cell.parent().unwrap().children().contains(&cell));
        assert!(CellId::of(&p, 0).parent().is_none());
    }

    #[test]
    fn covering_finds_every_containing_cell() {
        let level = 6;
        // Straddle the seam and a cell boundary.
        let rect = SkyRect::new(359.4, 360.8, -1.3, 2.2);
        let cells = CellId::covering(&rect, level);
        assert!(!cells.is_empty());
        // Every returned cell genuinely intersects, and every point of
        // a fine sample grid inside the rect lands in a returned cell.
        for c in &cells {
            assert!(c.rect().intersects(&rect), "{c:?}");
        }
        for i in 0..40 {
            for j in 0..40 {
                let p = SkyCoord::new(
                    359.4 + 1.4 * (i as f64 + 0.5) / 40.0,
                    -1.3 + 3.5 * (j as f64 + 0.5) / 40.0,
                );
                assert!(rect.contains(&p));
                assert!(
                    cells.contains(&CellId::of(&p, level)),
                    "point ({}, {}) in no covering cell",
                    p.ra,
                    p.dec
                );
            }
        }
        // Degenerate rects cover nothing.
        assert!(CellId::covering(&SkyRect::new(1.0, 1.0, 0.0, 1.0), level).is_empty());
        // A full-sky rect covers every cell exactly once.
        let all = CellId::covering(&SkyRect::new(0.0, 360.0, -90.0, 90.0), 2);
        assert_eq!(all.len(), (CellId::n_ra(2) * CellId::n_dec(2)) as usize);
    }
}
