//! On-disk image store and prefetching loader.
//!
//! Real Celeste stages 178 TB of FITS files through Cori's Burst Buffer
//! and prefetches the images for a node's next task while the current
//! one computes (paper §IV-A, §VII). This module provides the same
//! moving parts at laptop scale: a binary container ("SIMG"), a
//! directory-backed [`ImageStore`], and a [`Prefetcher`] that loads
//! images on background threads ahead of use.

use crate::bands::Band;
use crate::image::Image;
use crate::psf::{Psf, PsfComponent};
use crate::skygeom::{FieldId, SkyCoord};
use crate::wcs::Wcs;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"SIMG";
const CAT_MAGIC: &[u8; 4] = b"SCAT";
const VERSION: u8 = 1;

/// Errors from the image store.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// The file did not parse as a SIMG container.
    Format(String),
    /// A background prefetch worker failed to load the image (the
    /// underlying store error, carried as text across the worker
    /// boundary).
    Prefetch(String),
    /// A deterministic fault-injection failure (chaos testing): the
    /// store was configured with [`LoadFaults`] and this load drew a
    /// scheduled error.
    Injected(String),
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Prefetch(m) => write!(f, "prefetch failed: {m}"),
            IoError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) | IoError::Prefetch(_) | IoError::Injected(_) => None,
        }
    }
}

/// Serialize an image to the SIMG binary layout.
pub fn encode_image(img: &Image) -> Bytes {
    let mut b = BytesMut::with_capacity(128 + img.pixels.len() * 4);
    b.put_slice(MAGIC);
    b.put_u8(VERSION);
    b.put_u32_le(img.field.run);
    b.put_u16_le(img.field.camcol);
    b.put_u16_le(img.field.field);
    b.put_u8(img.band.index() as u8);
    b.put_u32_le(img.width as u32);
    b.put_u32_le(img.height as u32);
    b.put_f64_le(img.wcs.sky0.ra);
    b.put_f64_le(img.wcs.sky0.dec);
    b.put_f64_le(img.wcs.pix0[0]);
    b.put_f64_le(img.wcs.pix0[1]);
    for row in &img.wcs.jac {
        for &v in row {
            b.put_f64_le(v);
        }
    }
    b.put_f64_le(img.sky_level);
    b.put_f64_le(img.nmgy_to_counts);
    b.put_u8(img.psf.components.len() as u8);
    for c in &img.psf.components {
        b.put_f64_le(c.weight);
        b.put_f64_le(c.sigma_px);
    }
    for &p in &img.pixels {
        b.put_f32_le(p);
    }
    b.freeze()
}

/// Parse a SIMG buffer back into an [`Image`].
pub fn decode_image(mut buf: &[u8]) -> Result<Image, IoError> {
    let need = |buf: &[u8], n: usize, what: &str| -> Result<(), IoError> {
        if buf.remaining() < n {
            Err(IoError::Format(format!("truncated reading {what}")))
        } else {
            Ok(())
        }
    };
    need(buf, 5, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    need(buf, 4 + 2 + 2 + 1 + 8, "ids")?;
    let field = FieldId {
        run: buf.get_u32_le(),
        camcol: buf.get_u16_le(),
        field: buf.get_u16_le(),
    };
    let band_idx = buf.get_u8() as usize;
    if band_idx >= 5 {
        return Err(IoError::Format(format!("bad band {band_idx}")));
    }
    let band = Band::from_index(band_idx);
    let width = buf.get_u32_le() as usize;
    let height = buf.get_u32_le() as usize;
    need(buf, 8 * 8 + 16 + 1, "wcs+calib")?;
    let sky0 = SkyCoord::new(buf.get_f64_le(), buf.get_f64_le());
    let pix0 = [buf.get_f64_le(), buf.get_f64_le()];
    let jac = [
        [buf.get_f64_le(), buf.get_f64_le()],
        [buf.get_f64_le(), buf.get_f64_le()],
    ];
    let sky_level = buf.get_f64_le();
    let nmgy_to_counts = buf.get_f64_le();
    let ncomp = buf.get_u8() as usize;
    need(buf, ncomp * 16, "psf")?;
    let mut components = Vec::with_capacity(ncomp);
    for _ in 0..ncomp {
        components.push(PsfComponent {
            weight: buf.get_f64_le(),
            sigma_px: buf.get_f64_le(),
        });
    }
    need(buf, width * height * 4, "pixels")?;
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        pixels.push(buf.get_f32_le());
    }
    Ok(Image {
        field,
        band,
        wcs: Wcs { sky0, pix0, jac },
        width,
        height,
        pixels,
        sky_level,
        nmgy_to_counts,
        psf: std::sync::Arc::new(Psf { components }),
    })
}

/// Serialize a catalog to the SCAT binary layout.
pub fn encode_catalog(catalog: &crate::catalog::Catalog) -> Bytes {
    let mut b = BytesMut::with_capacity(16 + catalog.len() * 96);
    b.put_slice(CAT_MAGIC);
    b.put_u8(VERSION);
    b.put_u32_le(catalog.len() as u32);
    for e in &catalog.entries {
        b.put_u64_le(e.id);
        b.put_f64_le(e.pos.ra);
        b.put_f64_le(e.pos.dec);
        b.put_u8(u8::from(!e.is_star()));
        b.put_f64_le(e.flux_r_nmgy);
        for &c in &e.colors {
            b.put_f64_le(c);
        }
        b.put_f64_le(e.shape.frac_dev);
        b.put_f64_le(e.shape.axis_ratio);
        b.put_f64_le(e.shape.angle_rad);
        b.put_f64_le(e.shape.radius_arcsec);
    }
    b.freeze()
}

/// Parse a SCAT buffer back into a catalog.
pub fn decode_catalog(mut buf: &[u8]) -> Result<crate::catalog::Catalog, IoError> {
    use crate::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    if buf.remaining() < 9 {
        return Err(IoError::Format("truncated catalog header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != CAT_MAGIC {
        return Err(IoError::Format("bad catalog magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(IoError::Format(format!(
            "unsupported catalog version {version}"
        )));
    }
    let n = buf.get_u32_le() as usize;
    let per_entry = 8 + 16 + 1 + 8 + 32 + 32;
    if buf.remaining() < n * per_entry {
        return Err(IoError::Format("truncated catalog entries".into()));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let id = buf.get_u64_le();
        let pos = SkyCoord::new(buf.get_f64_le(), buf.get_f64_le());
        let is_gal = buf.get_u8() != 0;
        let flux_r_nmgy = buf.get_f64_le();
        let mut colors = [0.0; 4];
        for c in &mut colors {
            *c = buf.get_f64_le();
        }
        let shape = GalaxyShape {
            frac_dev: buf.get_f64_le(),
            axis_ratio: buf.get_f64_le(),
            angle_rad: buf.get_f64_le(),
            radius_arcsec: buf.get_f64_le(),
        };
        entries.push(CatalogEntry {
            id,
            pos,
            source_type: if is_gal {
                SourceType::Galaxy
            } else {
                SourceType::Star
            },
            flux_r_nmgy,
            colors,
            shape,
        });
    }
    Ok(Catalog::new(entries))
}

/// A key identifying one stored image.
pub type ImageKey = (FieldId, Band);

/// Deterministic I/O fault injection for [`ImageStore::load`]: the
/// k-th load of a given key fails with [`IoError::Injected`] iff a
/// seeded hash of `(seed, key, k)` falls below `rate`, independent of
/// thread interleaving — the same store sees the same fault schedule
/// on every run. At most `max_per_key` failures are injected per key,
/// so retrying loaders always heal (set it above the retry budget to
/// force quarantine instead).
///
/// This exercises the *production* load path — the prefetcher, the
/// campaign's blocking fetches, and their error handling all see the
/// injected error exactly where a real filesystem error would appear.
pub struct LoadFaults {
    seed: u64,
    rate: f64,
    max_per_key: u32,
    /// Per-key (loads attempted, failures injected).
    counts: Mutex<HashMap<ImageKey, (u32, u32)>>,
    injected: std::sync::atomic::AtomicU64,
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LoadFaults {
    /// A fault schedule failing roughly `rate` of loads (per key, per
    /// load attempt), at most `max_per_key` times per key.
    pub fn new(seed: u64, rate: f64, max_per_key: u32) -> LoadFaults {
        LoadFaults {
            seed,
            rate,
            max_per_key,
            counts: Mutex::new(HashMap::new()),
            injected: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Total failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether the k-th load of `key` is scheduled to fail (pure
    /// function of the seed — what `check` consults).
    pub fn scheduled(&self, key: &ImageKey, k: u32) -> bool {
        let (f, b) = key;
        let kh = ((f.run as u64) << 32) ^ ((f.camcol as u64) << 16) ^ f.field as u64;
        let h = mix64(self.seed ^ mix64(kh ^ ((b.index() as u64) << 48)) ^ k as u64);
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.rate
    }

    fn check(&self, key: &ImageKey) -> Result<(), IoError> {
        let mut counts = self.counts.lock();
        let entry = counts.entry(*key).or_insert((0, 0));
        let k = entry.0;
        entry.0 += 1;
        if entry.1 < self.max_per_key && self.scheduled(key, k) {
            entry.1 += 1;
            self.injected
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let (f, b) = key;
            return Err(IoError::Injected(format!(
                "scheduled load failure for {:?}/{} (load #{k})",
                f,
                b.name()
            )));
        }
        Ok(())
    }
}

impl std::fmt::Debug for LoadFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadFaults")
            .field("seed", &self.seed)
            .field("rate", &self.rate)
            .field("max_per_key", &self.max_per_key)
            .field("injected", &self.injected())
            .finish()
    }
}

/// Directory-backed image storage, one SIMG file per (field, band).
#[derive(Debug, Clone)]
pub struct ImageStore {
    root: PathBuf,
    /// Optional deterministic fault schedule applied to loads.
    faults: Option<Arc<LoadFaults>>,
}

impl ImageStore {
    /// Open (creating the directory if needed).
    pub fn open(root: impl AsRef<Path>) -> Result<ImageStore, IoError> {
        std::fs::create_dir_all(root.as_ref())?;
        Ok(ImageStore {
            root: root.as_ref().to_path_buf(),
            faults: None,
        })
    }

    /// This store with a deterministic load-fault schedule attached
    /// (saves and catalog I/O are unaffected). Clones share the
    /// schedule's counters.
    pub fn with_load_faults(mut self, faults: Arc<LoadFaults>) -> ImageStore {
        self.faults = Some(faults);
        self
    }

    /// The file path for a key.
    pub fn path_for(&self, key: &ImageKey) -> PathBuf {
        let (f, b) = key;
        self.root.join(format!(
            "{:06}-{}-{:04}-{}.simg",
            f.run,
            f.camcol,
            f.field,
            b.name()
        ))
    }

    /// Persist an image.
    pub fn save(&self, img: &Image) -> Result<(), IoError> {
        let bytes = encode_image(img);
        let path = self.path_for(&(img.field, img.band));
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(())
    }

    /// Load an image. With [`ImageStore::with_load_faults`] attached,
    /// scheduled loads fail with [`IoError::Injected`] before touching
    /// the filesystem.
    pub fn load(&self, key: &ImageKey) -> Result<Image, IoError> {
        if let Some(faults) = &self.faults {
            faults.check(key)?;
        }
        let mut data = Vec::new();
        std::fs::File::open(self.path_for(key))?.read_to_end(&mut data)?;
        decode_image(&data)
    }

    /// Persist a catalog under `name` (e.g. the campaign output).
    pub fn save_catalog(
        &self,
        name: &str,
        catalog: &crate::catalog::Catalog,
    ) -> Result<(), IoError> {
        let bytes = encode_catalog(catalog);
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            self.root.join(format!("{name}.scat")),
        )?);
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(())
    }

    /// Load a catalog previously saved with [`ImageStore::save_catalog`].
    pub fn load_catalog(&self, name: &str) -> Result<crate::catalog::Catalog, IoError> {
        let mut data = Vec::new();
        std::fs::File::open(self.root.join(format!("{name}.scat")))?.read_to_end(&mut data)?;
        decode_catalog(&data)
    }

    /// All keys currently stored.
    pub fn list(&self) -> Result<Vec<ImageKey>, IoError> {
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".simg") {
                let parts: Vec<&str> = stem.split('-').collect();
                if parts.len() == 4 {
                    let run = parts[0].parse().ok();
                    let camcol = parts[1].parse().ok();
                    let field = parts[2].parse().ok();
                    let band = Band::ALL.iter().find(|b| b.name() == parts[3]).copied();
                    if let (Some(run), Some(camcol), Some(field), Some(band)) =
                        (run, camcol, field, band)
                    {
                        keys.push((FieldId { run, camcol, field }, band));
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

enum Slot {
    Pending,
    Ready(Arc<Image>),
    Failed(String),
}

struct PrefetchShared {
    slots: Mutex<HashMap<ImageKey, Slot>>,
    ready: Condvar,
}

/// Background image loader: request keys ahead of time, then block on
/// [`Prefetcher::get`] only if the load hasn't finished yet. This is
/// the laptop-scale analogue of the paper's image prefetch that hides
/// Burst Buffer latency behind the previous task's compute.
pub struct Prefetcher {
    shared: Arc<PrefetchShared>,
    tx: crossbeam::channel::Sender<ImageKey>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn `n_workers` loader threads over the store.
    pub fn new(store: ImageStore, n_workers: usize) -> Prefetcher {
        let shared = Arc::new(PrefetchShared {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
        });
        let (tx, rx) = crossbeam::channel::unbounded::<ImageKey>();
        let workers = (0..n_workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                let store = store.clone();
                std::thread::spawn(move || {
                    for key in rx.iter() {
                        let result = store.load(&key);
                        let mut slots = shared.slots.lock();
                        match result {
                            Ok(img) => slots.insert(key, Slot::Ready(Arc::new(img))),
                            Err(e) => slots.insert(key, Slot::Failed(e.to_string())),
                        };
                        shared.ready.notify_all();
                    }
                })
            })
            .collect();
        Prefetcher {
            shared,
            tx,
            workers,
        }
    }

    /// Queue keys for background loading (idempotent per key).
    pub fn request(&self, keys: &[ImageKey]) {
        let mut slots = self.shared.slots.lock();
        for key in keys {
            if !slots.contains_key(key) {
                slots.insert(*key, Slot::Pending);
                // The worker channel outlives all requests; a send
                // error only happens when the prefetcher is shutting
                // down, in which case the key is simply not loaded.
                let _ = self.tx.send(*key);
            }
        }
    }

    /// Get an image, blocking until its background load completes.
    /// Requests the key first if it was never requested.
    pub fn get(&self, key: &ImageKey) -> Result<Arc<Image>, IoError> {
        let mut slots = self.shared.slots.lock();
        loop {
            match slots.get(key) {
                Some(Slot::Ready(img)) => return Ok(Arc::clone(img)),
                Some(Slot::Failed(msg)) => return Err(IoError::Prefetch(msg.clone())),
                Some(Slot::Pending) => self.shared.ready.wait(&mut slots),
                // Absent: never requested, or a concurrent `evict`
                // dropped the finished load while we were waiting
                // (tasks share image keys, so one task's completion
                // can evict a key another getter still wants). Either
                // way, waiting would block forever — no worker
                // repopulates a missing slot — so re-issue the load.
                None => {
                    slots.insert(*key, Slot::Pending);
                    let _ = self.tx.send(*key);
                }
            }
        }
    }

    /// Drop a cached image to bound memory (next `get` reloads it).
    pub fn evict(&self, key: &ImageKey) {
        self.shared.slots.lock().remove(key);
    }

    /// Number of images currently resident.
    pub fn resident(&self) -> usize {
        self.shared
            .slots
            .lock()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Closing the channel stops the workers.
        let (tx, _) = crossbeam::channel::bounded(0);
        drop(std::mem::replace(&mut self.tx, tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skygeom::SkyRect;

    fn test_image(run: u32, band: Band) -> Image {
        let rect = SkyRect::new(0.0, 0.1, 0.0, 0.1);
        let mut img = Image::blank(
            FieldId {
                run,
                camcol: 1,
                field: 3,
            },
            band,
            Wcs::for_rect(&rect, 16, 16),
            16,
            16,
            100.0,
            300.0,
            Psf::core_halo(1.3),
        );
        for (i, p) in img.pixels.iter_mut().enumerate() {
            *p = i as f32 * 0.5;
        }
        img
    }

    #[test]
    fn encode_decode_roundtrip() {
        let img = test_image(42, Band::G);
        let decoded = decode_image(&encode_image(&img)).unwrap();
        assert_eq!(decoded.field, img.field);
        assert_eq!(decoded.band, img.band);
        assert_eq!(decoded.pixels, img.pixels);
        assert_eq!(decoded.wcs, img.wcs);
        assert_eq!(decoded.psf, img.psf);
        assert_eq!(decoded.sky_level, img.sky_level);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_image(b"not an image").is_err());
        assert!(decode_image(b"SIM").is_err());
        // Truncated after header.
        let full = encode_image(&test_image(1, Band::R));
        assert!(decode_image(&full[..40]).is_err());
    }

    #[test]
    fn store_save_load_list() {
        let dir = std::env::temp_dir().join(format!("celeste-io-test-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let img = test_image(7, Band::Z);
        store.save(&img).unwrap();
        let key = (img.field, img.band);
        let loaded = store.load(&key).unwrap();
        assert_eq!(loaded.pixels, img.pixels);
        assert_eq!(store.list().unwrap(), vec![key]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_loads_in_background() {
        let dir =
            std::env::temp_dir().join(format!("celeste-prefetch-test-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let keys: Vec<ImageKey> = (0..6)
            .map(|i| {
                let img = test_image(i, Band::R);
                store.save(&img).unwrap();
                (img.field, img.band)
            })
            .collect();
        let pf = Prefetcher::new(store, 3);
        pf.request(&keys);
        for key in &keys {
            let img = pf.get(key).unwrap();
            assert_eq!((img.field, img.band), *key);
        }
        assert_eq!(pf.resident(), 6);
        pf.evict(&keys[0]);
        assert_eq!(pf.resident(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catalog_roundtrip() {
        use crate::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
        let cat = Catalog::new(vec![
            CatalogEntry {
                id: 3,
                pos: SkyCoord::new(1.25, -0.75),
                source_type: SourceType::Galaxy,
                flux_r_nmgy: 4.5,
                colors: [0.1, -0.2, 0.3, 0.4],
                shape: GalaxyShape {
                    frac_dev: 0.6,
                    axis_ratio: 0.4,
                    angle_rad: 1.2,
                    radius_arcsec: 2.5,
                },
            },
            CatalogEntry {
                id: 9,
                pos: SkyCoord::new(0.0, 0.0),
                source_type: SourceType::Star,
                flux_r_nmgy: 10.0,
                colors: [0.0; 4],
                shape: GalaxyShape::round_disk(1.0),
            },
        ]);
        let decoded = decode_catalog(&encode_catalog(&cat)).unwrap();
        assert_eq!(decoded.entries, cat.entries);
        assert!(decode_catalog(b"garbage").is_err());
    }

    #[test]
    fn store_catalog_roundtrip() {
        use crate::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
        let dir = std::env::temp_dir().join(format!("celeste-scat-test-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let cat = Catalog::new(vec![CatalogEntry {
            id: 1,
            pos: SkyCoord::new(0.5, 0.5),
            source_type: SourceType::Star,
            flux_r_nmgy: 2.0,
            colors: [0.2; 4],
            shape: GalaxyShape::round_disk(1.0),
        }]);
        store.save_catalog("output", &cat).unwrap();
        let loaded = store.load_catalog("output").unwrap();
        assert_eq!(loaded.entries, cat.entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_faults_are_deterministic_and_bounded() {
        let dir = std::env::temp_dir().join(format!("celeste-faults-test-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let img = test_image(3, Band::R);
        store.save(&img).unwrap();
        let key = (img.field, img.band);

        // rate = 1.0 with a failure cap of 2: exactly the first two
        // loads fail, every later load succeeds.
        let faults = Arc::new(LoadFaults::new(11, 1.0, 2));
        let store = store.with_load_faults(Arc::clone(&faults));
        assert!(matches!(store.load(&key), Err(IoError::Injected(_))));
        assert!(matches!(store.load(&key), Err(IoError::Injected(_))));
        assert!(store.load(&key).is_ok());
        assert!(store.load(&key).is_ok());
        assert_eq!(faults.injected(), 2);

        // The schedule is a pure function of (seed, key, attempt):
        // two independent instances agree on every decision.
        let a = LoadFaults::new(42, 0.5, u32::MAX);
        let b = LoadFaults::new(42, 0.5, u32::MAX);
        for k in 0..64 {
            assert_eq!(a.scheduled(&key, k), b.scheduled(&key, k));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_reports_missing_file() {
        let dir =
            std::env::temp_dir().join(format!("celeste-prefetch-miss-{}", std::process::id()));
        let store = ImageStore::open(&dir).unwrap();
        let pf = Prefetcher::new(store, 1);
        let missing = (
            FieldId {
                run: 999,
                camcol: 9,
                field: 9,
            },
            Band::U,
        );
        assert!(pf.get(&missing).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
