//! Prior distributions over catalog entries (the paper's Φ, Υ, Ξ).
//!
//! The paper learns these "from preexisting astronomical catalogs"
//! (§III). Here they serve double duty: the synthetic survey *samples*
//! truth catalogs from them, and Celeste's variational objective
//! penalizes divergence from them — which is also how the Bayesian
//! model earns its accuracy advantage over the Photo heuristic in the
//! Table II reproduction. [`Priors::fit_from_catalog`] reproduces the
//! "learned from a catalog" path by moment estimation.

use crate::bands::NUM_COLORS;
use crate::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
use crate::sampling;
use rand::{Rng, RngExt};

/// Number of mixture components in each color prior.
pub const NUM_COLOR_COMPONENTS: usize = 5;

/// Log-normal prior on reference-band flux.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluxPrior {
    /// Mean of ln(flux / 1 nmgy).
    pub mu: f64,
    /// Standard deviation of ln flux.
    pub sigma: f64,
}

/// One component of a color prior: an axis-aligned Gaussian in 4-dim
/// color space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorComponent {
    pub weight: f64,
    pub mean: [f64; NUM_COLORS],
    pub var: [f64; NUM_COLORS],
}

/// Mixture-of-Gaussians color prior for one source type.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorPrior {
    pub components: Vec<ColorComponent>,
}

/// Priors over galaxy shape parameters. `frac_dev` and `axis_ratio`
/// get logit-normal priors, the radius a log-normal; the position
/// angle is uniform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapePrior {
    pub frac_dev_logit_mu: f64,
    pub frac_dev_logit_sigma: f64,
    pub axis_ratio_logit_mu: f64,
    pub axis_ratio_logit_sigma: f64,
    pub radius_ln_mu: f64,
    pub radius_ln_sigma: f64,
}

/// The complete prior set. Index 0 = star, 1 = galaxy throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct Priors {
    /// Prior probability that a source is a star (paper's Φ).
    pub star_prob: f64,
    /// Per-type flux priors (paper's Υ).
    pub flux: [FluxPrior; 2],
    /// Per-type color priors (paper's Ξ).
    pub color: [ColorPrior; 2],
    /// Galaxy shape priors.
    pub shape: ShapePrior,
}

impl Priors {
    /// Default priors loosely matched to SDSS source populations: stars
    /// are rarer than galaxies at depth, redder color loci for stars,
    /// ~1.5 arcsec typical galaxy radii.
    pub fn sdss_default() -> Priors {
        let star_color = ColorPrior {
            components: vec![
                // A crude stellar locus: from blue (hot) to red (cool).
                comp(0.15, [0.8, 0.3, 0.1, 0.0], 0.03),
                comp(0.25, [1.1, 0.5, 0.2, 0.1], 0.03),
                comp(0.25, [1.4, 0.7, 0.3, 0.15], 0.04),
                comp(0.20, [1.9, 1.0, 0.45, 0.25], 0.05),
                comp(0.15, [2.4, 1.4, 0.8, 0.45], 0.08),
            ],
        };
        let gal_color = ColorPrior {
            components: vec![
                comp(0.25, [1.0, 0.4, 0.25, 0.15], 0.06),
                comp(0.25, [1.4, 0.7, 0.40, 0.25], 0.06),
                comp(0.20, [1.8, 1.0, 0.55, 0.35], 0.07),
                comp(0.15, [0.7, 0.3, 0.15, 0.10], 0.08),
                comp(0.15, [2.1, 1.3, 0.70, 0.45], 0.10),
            ],
        };
        Priors {
            star_prob: 0.28,
            flux: [
                FluxPrior {
                    mu: 0.9,
                    sigma: 1.1,
                },
                FluxPrior {
                    mu: 0.6,
                    sigma: 0.9,
                },
            ],
            color: [star_color, gal_color],
            shape: ShapePrior {
                frac_dev_logit_mu: -0.4,
                frac_dev_logit_sigma: 1.2,
                axis_ratio_logit_mu: 0.5,
                axis_ratio_logit_sigma: 0.9,
                radius_ln_mu: 0.4, // e^0.4 ≈ 1.5 arcsec
                radius_ln_sigma: 0.5,
            },
        }
    }

    /// Sample one catalog entry from the priors.
    pub fn sample_entry<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: u64,
        pos: crate::skygeom::SkyCoord,
    ) -> CatalogEntry {
        let is_star = rng.random::<f64>() < self.star_prob;
        let t = usize::from(!is_star);
        let flux_r = sampling::log_normal(rng, self.flux[t].mu, self.flux[t].sigma);
        let weights: Vec<f64> = self.color[t].components.iter().map(|c| c.weight).collect();
        let k = sampling::categorical(rng, &weights);
        let cmp = &self.color[t].components[k];
        let mut colors = [0.0; NUM_COLORS];
        for i in 0..NUM_COLORS {
            colors[i] = sampling::normal(rng, cmp.mean[i], cmp.var[i].sqrt());
        }
        let sp = &self.shape;
        let shape = GalaxyShape {
            frac_dev: sigmoid(sampling::normal(
                rng,
                sp.frac_dev_logit_mu,
                sp.frac_dev_logit_sigma,
            )),
            axis_ratio: sigmoid(sampling::normal(
                rng,
                sp.axis_ratio_logit_mu,
                sp.axis_ratio_logit_sigma,
            ))
            .clamp(0.05, 1.0),
            angle_rad: rng.random::<f64>() * std::f64::consts::PI,
            radius_arcsec: sampling::log_normal(rng, sp.radius_ln_mu, sp.radius_ln_sigma)
                .clamp(0.3, 8.0),
        };
        CatalogEntry {
            id,
            pos,
            source_type: if is_star {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: flux_r,
            colors,
            shape,
        }
    }

    /// Re-learn priors from an existing catalog by moment estimation
    /// (the paper's preprocessing step). Color mixtures are refit with
    /// a few rounds of (hard-assignment) k-means-style EM around the
    /// existing component means.
    pub fn fit_from_catalog(&self, catalog: &Catalog) -> Priors {
        let mut fitted = self.clone();
        let n = catalog.len().max(1);
        let n_star = catalog.entries.iter().filter(|e| e.is_star()).count();
        // Laplace-smoothed class balance.
        fitted.star_prob = (n_star as f64 + 1.0) / (n as f64 + 2.0);
        for t in 0..2 {
            let logs: Vec<f64> = catalog
                .entries
                .iter()
                .filter(|e| e.is_star() == (t == 0) && e.flux_r_nmgy > 0.0)
                .map(|e| e.flux_r_nmgy.ln())
                .collect();
            if logs.len() >= 8 {
                fitted.flux[t] = FluxPrior {
                    mu: celeste_linalg::vecops::mean(&logs),
                    sigma: celeste_linalg::vecops::variance(&logs).sqrt().max(0.05),
                };
            }
            // Hard-EM refinement of color component means.
            let colors: Vec<[f64; NUM_COLORS]> = catalog
                .entries
                .iter()
                .filter(|e| e.is_star() == (t == 0))
                .map(|e| e.colors)
                .collect();
            if colors.len() >= 4 * NUM_COLOR_COMPONENTS {
                hard_em_refit(&mut fitted.color[t], &colors, 5);
            }
        }
        fitted
    }
}

fn comp(weight: f64, mean: [f64; NUM_COLORS], var: f64) -> ColorComponent {
    ColorComponent {
        weight,
        mean,
        var: [var; NUM_COLORS],
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn hard_em_refit(prior: &mut ColorPrior, data: &[[f64; NUM_COLORS]], rounds: usize) {
    let k = prior.components.len();
    for _ in 0..rounds {
        let mut sums = vec![[0.0; NUM_COLORS]; k];
        let mut sqsums = vec![[0.0; NUM_COLORS]; k];
        let mut counts = vec![0usize; k];
        for x in data {
            let mut best = 0;
            let mut best_d = f64::MAX;
            for (j, c) in prior.components.iter().enumerate() {
                let d: f64 = x.iter().zip(&c.mean).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            counts[best] += 1;
            for i in 0..NUM_COLORS {
                sums[best][i] += x[i];
                sqsums[best][i] += x[i] * x[i];
            }
        }
        for (j, c) in prior.components.iter_mut().enumerate() {
            if counts[j] < 3 {
                continue; // keep the seed component
            }
            let nj = counts[j] as f64;
            for i in 0..NUM_COLORS {
                let m = sums[j][i] / nj;
                c.mean[i] = m;
                c.var[i] = (sqsums[j][i] / nj - m * m).max(1e-3);
            }
            c.weight = nj / data.len() as f64;
        }
        // Renormalize weights (components that kept their seed weight).
        let total: f64 = prior.components.iter().map(|c| c.weight).sum();
        for c in &mut prior.components {
            c.weight /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skygeom::SkyCoord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_priors_are_normalized() {
        let p = Priors::sdss_default();
        for t in 0..2 {
            let total: f64 = p.color[t].components.iter().map(|c| c.weight).sum();
            assert!((total - 1.0).abs() < 1e-12, "type {t} weights {total}");
        }
        assert!(p.star_prob > 0.0 && p.star_prob < 1.0);
    }

    #[test]
    fn sampled_entries_are_physical() {
        let p = Priors::sdss_default();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..500 {
            let e = p.sample_entry(&mut rng, i, SkyCoord::new(0.0, 0.0));
            assert!(e.flux_r_nmgy > 0.0);
            assert!(e.shape.axis_ratio > 0.0 && e.shape.axis_ratio <= 1.0);
            assert!(e.shape.radius_arcsec > 0.0);
            assert!((0.0..std::f64::consts::PI).contains(&e.shape.angle_rad));
            assert!(e.fluxes().iter().all(|&f| f > 0.0));
        }
    }

    #[test]
    fn class_balance_matches_star_prob() {
        let p = Priors::sdss_default();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let stars = (0..n)
            .filter(|&i| {
                p.sample_entry(&mut rng, i, SkyCoord::new(0.0, 0.0))
                    .is_star()
            })
            .count();
        let frac = stars as f64 / n as f64;
        assert!((frac - p.star_prob).abs() < 0.02, "star fraction {frac}");
    }

    #[test]
    fn fit_recovers_class_balance_and_flux_scale() {
        let truth = Priors::sdss_default();
        let mut rng = StdRng::seed_from_u64(3);
        let entries: Vec<CatalogEntry> = (0..5000)
            .map(|i| truth.sample_entry(&mut rng, i, SkyCoord::new(0.0, 0.0)))
            .collect();
        let cat = Catalog::new(entries);
        let fitted = truth.fit_from_catalog(&cat);
        assert!((fitted.star_prob - truth.star_prob).abs() < 0.03);
        for t in 0..2 {
            assert!((fitted.flux[t].mu - truth.flux[t].mu).abs() < 0.1);
            assert!((fitted.flux[t].sigma - truth.flux[t].sigma).abs() < 0.1);
        }
    }
}
