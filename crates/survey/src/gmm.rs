//! Bivariate Gaussian mixtures — the shared representation for PSFs,
//! galaxy profiles, and rendered source appearances.
//!
//! Both the forward simulator ([`crate::render`]) and Celeste's
//! likelihood evaluate sources as mixtures of bivariate normals: a star
//! is the PSF mixture; a galaxy is its profile mixture convolved with
//! the PSF (convolution of Gaussians = sum of covariances).

/// Symmetric 2×2 covariance, stored as (xx, xy, yy) in pixel² units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cov2 {
    pub xx: f64,
    pub xy: f64,
    pub yy: f64,
}

impl Cov2 {
    /// Isotropic covariance σ²·I.
    pub fn isotropic(var: f64) -> Cov2 {
        Cov2 {
            xx: var,
            xy: 0.0,
            yy: var,
        }
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.xx * self.yy - self.xy * self.xy
    }

    /// Sum of covariances (Gaussian convolution).
    #[inline]
    pub fn add(&self, o: &Cov2) -> Cov2 {
        Cov2 {
            xx: self.xx + o.xx,
            xy: self.xy + o.xy,
            yy: self.yy + o.yy,
        }
    }

    /// Scale all entries (e.g. unit-radius profile × r_e²).
    #[inline]
    pub fn scaled(&self, s: f64) -> Cov2 {
        Cov2 {
            xx: self.xx * s,
            xy: self.xy * s,
            yy: self.yy * s,
        }
    }

    /// Congruence transform `J Σ Jᵀ` for a 2×2 Jacobian (sky→pixel
    /// mapping of a sky-frame covariance).
    pub fn congruence(&self, j: &[[f64; 2]; 2]) -> Cov2 {
        let a = j[0][0];
        let b = j[0][1];
        let c = j[1][0];
        let d = j[1][1];
        Cov2 {
            xx: a * a * self.xx + 2.0 * a * b * self.xy + b * b * self.yy,
            xy: a * c * self.xx + (a * d + b * c) * self.xy + b * d * self.yy,
            yy: c * c * self.xx + 2.0 * c * d * self.xy + d * d * self.yy,
        }
    }

    /// Largest marginal standard deviation — conservative bounding-box
    /// radius scale.
    pub fn max_sigma(&self) -> f64 {
        self.xx.max(self.yy).sqrt()
    }
}

/// One weighted bivariate normal component centered at `mean` (pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvnComponent {
    pub weight: f64,
    pub mean: [f64; 2],
    pub cov: Cov2,
}

impl BvnComponent {
    /// Density × weight at pixel (x, y).
    #[inline]
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let det = self.cov.det();
        debug_assert!(det > 0.0, "degenerate covariance {:?}", self.cov);
        let inv_det = 1.0 / det;
        let dx = x - self.mean[0];
        let dy = y - self.mean[1];
        // Quadratic form through the explicit 2×2 inverse.
        let q =
            (self.cov.yy * dx * dx - 2.0 * self.cov.xy * dx * dy + self.cov.xx * dy * dy) * inv_det;
        self.weight * (-0.5 * q).exp() * inv_det.sqrt() / std::f64::consts::TAU
    }
}

/// A mixture of bivariate normals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Gmm {
    pub components: Vec<BvnComponent>,
}

impl Gmm {
    pub fn new(components: Vec<BvnComponent>) -> Gmm {
        Gmm { components }
    }

    /// Total mixture weight (flux fraction represented).
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }

    /// Density at (x, y): sum of weighted component densities.
    #[inline]
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        self.components.iter().map(|c| c.eval(x, y)).sum()
    }

    /// Convolve with another centered mixture (e.g. profile ⊛ PSF):
    /// the pairwise product mixture with summed covariances. The other
    /// mixture's means are treated as offsets added to ours.
    pub fn convolve(&self, psf: &Gmm) -> Gmm {
        let mut out = Vec::with_capacity(self.components.len() * psf.components.len());
        for a in &self.components {
            for b in &psf.components {
                out.push(BvnComponent {
                    weight: a.weight * b.weight,
                    mean: [a.mean[0] + b.mean[0], a.mean[1] + b.mean[1]],
                    cov: a.cov.add(&b.cov),
                });
            }
        }
        Gmm::new(out)
    }

    /// Conservative radius (pixels) beyond which density is negligible:
    /// `nsigma` times the largest component sigma, measured from the
    /// weighted mean center.
    pub fn support_radius(&self, nsigma: f64) -> f64 {
        let max_sd = self
            .components
            .iter()
            .map(|c| c.cov.max_sigma())
            .fold(0.0_f64, f64::max);
        let max_off = self
            .components
            .iter()
            .map(|c| (c.mean[0].powi(2) + c.mean[1].powi(2)).sqrt())
            .fold(0.0_f64, f64::max);
        nsigma * max_sd + max_off
    }

    /// Shift every component mean by (dx, dy).
    pub fn shifted(&self, dx: f64, dy: f64) -> Gmm {
        Gmm::new(
            self.components
                .iter()
                .map(|c| BvnComponent {
                    weight: c.weight,
                    mean: [c.mean[0] + dx, c.mean[1] + dy],
                    cov: c.cov,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_gaussian_integrates_to_one() {
        let g = BvnComponent {
            weight: 1.0,
            mean: [0.0, 0.0],
            cov: Cov2::isotropic(1.0),
        };
        // Riemann sum over ±6σ.
        let mut total = 0.0;
        let step = 0.05;
        let n = (12.0 / step) as i64;
        for i in 0..n {
            for j in 0..n {
                let x = -6.0 + (i as f64 + 0.5) * step;
                let y = -6.0 + (j as f64 + 0.5) * step;
                total += g.eval(x, y) * step * step;
            }
        }
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    fn peak_value_matches_formula() {
        let var = 2.5;
        let g = BvnComponent {
            weight: 3.0,
            mean: [1.0, -1.0],
            cov: Cov2::isotropic(var),
        };
        let peak = g.eval(1.0, -1.0);
        assert!((peak - 3.0 / (std::f64::consts::TAU * var)).abs() < 1e-12);
    }

    #[test]
    fn anisotropic_quadratic_form() {
        let cov = Cov2 {
            xx: 4.0,
            xy: 1.0,
            yy: 2.0,
        };
        let g = BvnComponent {
            weight: 1.0,
            mean: [0.0, 0.0],
            cov,
        };
        // det = 7; at (1,0): q = yy/det = 2/7
        let expect = (-0.5_f64 * (2.0 / 7.0)).exp() / (std::f64::consts::TAU * 7.0_f64.sqrt());
        assert!((g.eval(1.0, 0.0) - expect).abs() < 1e-14);
    }

    #[test]
    fn convolution_adds_covariances() {
        let a = Gmm::new(vec![BvnComponent {
            weight: 1.0,
            mean: [0.0, 0.0],
            cov: Cov2::isotropic(1.0),
        }]);
        let b = Gmm::new(vec![BvnComponent {
            weight: 1.0,
            mean: [0.0, 0.0],
            cov: Cov2::isotropic(3.0),
        }]);
        let c = a.convolve(&b);
        assert_eq!(c.components.len(), 1);
        assert!((c.components[0].cov.xx - 4.0).abs() < 1e-15);
        assert!((c.total_weight() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn convolution_weight_is_product_sum() {
        let mk = |ws: &[f64]| {
            Gmm::new(
                ws.iter()
                    .map(|&w| BvnComponent {
                        weight: w,
                        mean: [0.0, 0.0],
                        cov: Cov2::isotropic(1.0),
                    })
                    .collect(),
            )
        };
        let a = mk(&[0.6, 0.4]);
        let b = mk(&[0.8, 0.2]);
        let c = a.convolve(&b);
        assert_eq!(c.components.len(), 4);
        assert!((c.total_weight() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn congruence_matches_direct_computation() {
        let cov = Cov2 {
            xx: 2.0,
            xy: 0.5,
            yy: 1.0,
        };
        let j = [[3.0, 0.0], [0.0, 2.0]];
        let t = cov.congruence(&j);
        assert!((t.xx - 18.0).abs() < 1e-14);
        assert!((t.xy - 3.0).abs() < 1e-14);
        assert!((t.yy - 4.0).abs() < 1e-14);
    }

    #[test]
    fn support_radius_bounds_density() {
        let g = Gmm::new(vec![BvnComponent {
            weight: 1.0,
            mean: [0.0, 0.0],
            cov: Cov2::isotropic(4.0),
        }]);
        let r = g.support_radius(5.0);
        assert!((r - 10.0).abs() < 1e-12);
        // At 5σ the density is e^{−12.5} ≈ 3.7e−6 of the peak.
        assert!(g.eval(r, 0.0) < 1e-5 * g.eval(0.0, 0.0));
    }
}
