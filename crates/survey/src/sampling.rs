//! Random-variate samplers built directly on `rand`.
//!
//! The workspace's allowed dependency set includes `rand` but not
//! `rand_distr`, so the handful of distributions the survey simulator
//! needs are implemented here: Normal (Box–Muller), LogNormal, Poisson
//! (Knuth for small rates, PTRS transformed-rejection for large rates),
//! and categorical draws.

use rand::{Rng, RngExt};

/// Draw a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log of zero).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Draw from a log-normal with the given log-space mean and sd.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draw from `Poisson(lambda)`.
///
/// Knuth's product-of-uniforms method below `lambda = 30`; above that,
/// the PTRS transformed-rejection sampler of Hörmann (1993), which has
/// bounded expected iterations for all large rates. Survey images have
/// per-pixel rates from ~100 (sky) to ~10⁶ (bright-star cores), so the
/// large-rate path is the hot one.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "poisson: bad rate {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        poisson_knuth(rng, lambda)
    } else {
        poisson_ptrs(rng, lambda)
    }
}

fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Hörmann's PTRS sampler. Valid for lambda ≥ 10; we use it from 30.
fn poisson_ptrs<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let slam = lambda.sqrt();
    let loglam = lambda.ln();
    let b = 0.931 + 2.53 * slam;
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u: f64 = rng.random::<f64>() - 0.5;
        let v: f64 = rng.random();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln()
            <= k * loglam - lambda - ln_gamma(k + 1.0)
        {
            return k as u64;
        }
    }
}

/// `ln Γ(x)` via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 for x > 0. Needed by the Poisson sampler and by Poisson
/// log-likelihoods elsewhere.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Draw an index from the (not necessarily normalized) weights.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical: weights must have positive sum");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Draw from `Beta(a, b)` via two Gamma draws (Marsaglia–Tsang).
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a);
    let y = gamma(rng, b);
    x / (x + y)
}

/// Draw from `Gamma(shape, 1)` with the Marsaglia–Tsang squeeze method.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0);
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u: f64 = rng.random();
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_small_rate_moments() {
        let mut r = rng();
        let n = 100_000;
        let lam = 4.5;
        let draws: Vec<f64> = (0..n).map(|_| poisson(&mut r, lam) as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - lam).abs() < 0.05, "mean {mean}");
        assert!((var - lam).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_rate_moments() {
        let mut r = rng();
        let n = 100_000;
        let lam = 900.0;
        let draws: Vec<f64> = (0..n).map(|_| poisson(&mut r, lam) as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - lam).abs() / lam < 0.005, "mean {mean}");
        assert!((var - lam).abs() / lam < 0.05, "var {var}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product::<f64>();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n}) mismatch"
            );
        }
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn categorical_frequencies() {
        let mut r = rng();
        let w = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[categorical(&mut r, &w)] += 1;
        }
        assert!((counts[2] as f64 / 1e5 - 0.7).abs() < 0.01);
        assert!((counts[1] as f64 / 1e5 - 0.2).abs() < 0.01);
    }

    #[test]
    fn beta_in_unit_interval_with_right_mean() {
        let mut r = rng();
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| beta(&mut r, 2.0, 5.0)).collect();
        assert!(draws.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gamma_mean_and_variance() {
        let mut r = rng();
        let n = 50_000;
        let shape = 3.7;
        let draws: Vec<f64> = (0..n).map(|_| gamma(&mut r, shape)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - shape).abs() < 0.05, "mean {mean}");
    }
}
