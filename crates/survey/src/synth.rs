//! End-to-end synthetic survey generation.
//!
//! Draws a truth catalog from the priors over the survey footprint,
//! then renders every (field, band) image with per-run seeing and
//! Poisson noise. Field/band rendering seeds are derived from the
//! survey seed deterministically, so any image can be regenerated
//! independently — the property the on-disk store and the prefetching
//! loader rely on in tests.

use crate::bands::Band;
use crate::catalog::{Catalog, CatalogEntry};
use crate::image::Image;
use crate::priors::Priors;
use crate::psf::Psf;
use crate::render::render_observed;
use crate::skygeom::{FieldMeta, GeometryConfig, SkyCoord, SurveyGeometry};
use crate::wcs::Wcs;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Configuration of a synthetic survey campaign.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    pub geometry: GeometryConfig,
    /// Image side length in pixels (fields are square).
    pub pixels_per_field: usize,
    /// Expected light sources per square degree.
    pub source_density_per_sq_deg: f64,
    /// Baseline sky background (r band), counts per pixel.
    pub sky_level_r: f64,
    /// Calibration, counts per nanomaggy.
    pub nmgy_to_counts: f64,
    /// Median seeing (PSF core sigma), pixels.
    pub seeing_px: f64,
    /// Fractional epoch-to-epoch seeing jitter.
    pub seeing_jitter: f64,
    /// Master random seed.
    pub seed: u64,
    pub priors: Priors,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            geometry: GeometryConfig::default(),
            pixels_per_field: 128,
            source_density_per_sq_deg: 12_000.0,
            sky_level_r: 150.0,
            nmgy_to_counts: 300.0,
            seeing_px: 1.3,
            seeing_jitter: 0.25,
            seed: 0xCE1E_57E0,
            priors: Priors::sdss_default(),
        }
    }
}

/// Relative sky brightness per band (u is darkest, z brightest in
/// counts for SDSS-like detectors).
fn band_sky_factor(band: Band) -> f64 {
    match band {
        Band::U => 0.35,
        Band::G => 0.7,
        Band::R => 1.0,
        Band::I => 1.35,
        Band::Z => 1.6,
    }
}

/// A fully-specified synthetic survey: geometry plus truth catalog.
/// Images are rendered on demand (deterministically).
#[derive(Debug, Clone)]
pub struct SyntheticSurvey {
    pub config: SurveyConfig,
    pub geometry: SurveyGeometry,
    pub truth: Catalog,
}

impl SyntheticSurvey {
    /// Generate geometry and truth catalog.
    pub fn generate(config: SurveyConfig) -> SyntheticSurvey {
        let geometry = SurveyGeometry::generate(&config.geometry);
        let fp = geometry.footprint;
        let n_sources = (config.source_density_per_sq_deg * fp.area_sq_deg()).round() as u64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let entries: Vec<CatalogEntry> = (0..n_sources)
            .map(|id| {
                let pos = SkyCoord::new(
                    fp.ra_min + rng.random::<f64>() * fp.width_deg(),
                    fp.dec_min + rng.random::<f64>() * fp.height_deg(),
                );
                config.priors.sample_entry(&mut rng, id, pos)
            })
            .collect();
        SyntheticSurvey {
            config,
            geometry,
            truth: Catalog::new(entries),
        }
    }

    /// Seeing for a run: deterministic log-normal jitter around the
    /// configured median (each epoch observes through a different
    /// atmosphere).
    pub fn psf_for_run(&self, run: u32, band: Band) -> Psf {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ (run as u64) << 3 ^ band.index() as u64);
        let jitter = (crate::sampling::standard_normal(&mut rng) * self.config.seeing_jitter).exp();
        Psf::core_halo(self.config.seeing_px * jitter)
    }

    /// A blank, calibrated image for (field, band) — geometry only.
    pub fn blank_image(&self, meta: &FieldMeta, band: Band) -> Image {
        let n = self.config.pixels_per_field;
        Image::blank(
            meta.id,
            band,
            Wcs::for_rect(&meta.rect, n, n),
            n,
            n,
            self.config.sky_level_r * band_sky_factor(band),
            self.config.nmgy_to_counts,
            self.psf_for_run(meta.id.run, band),
        )
    }

    /// Render the observed image for (field, band). Only truth entries
    /// near the field footprint contribute (padded by 30 arcsec so
    /// off-edge wings are included, like real frames).
    pub fn render_field(&self, meta: &FieldMeta, band: Band) -> Image {
        let mut img = self.blank_image(meta, band);
        let nearby = Catalog::new(
            self.truth
                .in_rect(&meta.rect.padded(30.0 / 3600.0))
                .into_iter()
                .cloned()
                .collect(),
        );
        let seed = self
            .config
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(((meta.id.run as u64) << 20) | ((meta.id.field as u64) << 4))
            .wrapping_add(band.index() as u64);
        render_observed(&nearby, &mut img, seed);
        img
    }

    /// Render every (field, band) image in parallel.
    pub fn render_all(&self) -> Vec<Image> {
        let jobs: Vec<(&FieldMeta, Band)> = self
            .geometry
            .fields
            .iter()
            .flat_map(|m| Band::ALL.iter().map(move |&b| (m, b)))
            .collect();
        jobs.par_iter()
            .map(|(m, b)| self.render_field(m, *b))
            .collect()
    }

    /// Total campaign pixel bytes (the "55 TB" figure for this survey).
    pub fn total_image_bytes(&self) -> usize {
        let per = self.config.pixels_per_field * self.config.pixels_per_field * 4;
        self.geometry.fields.len() * Band::ALL.len() * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SurveyConfig {
        SurveyConfig {
            geometry: GeometryConfig {
                n_stripes: 2,
                fields_per_stripe: 2,
                deep_stripe: Some(0),
                deep_epochs: 3,
                ..GeometryConfig::default()
            },
            pixels_per_field: 64,
            source_density_per_sq_deg: 4000.0,
            ..SurveyConfig::default()
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = SyntheticSurvey::generate(small_config());
        let b = SyntheticSurvey::generate(small_config());
        assert_eq!(a.truth.len(), b.truth.len());
        assert_eq!(a.truth.entries[0], b.truth.entries[0]);
    }

    #[test]
    fn truth_covers_footprint() {
        let s = SyntheticSurvey::generate(small_config());
        assert!(s.truth.len() > 50);
        let fp = s.geometry.footprint;
        assert!(s.truth.entries.iter().all(|e| fp.contains(&e.pos)));
    }

    #[test]
    fn render_field_is_deterministic_and_nonempty() {
        let s = SyntheticSurvey::generate(small_config());
        let meta = &s.geometry.fields[0];
        let a = s.render_field(meta, Band::R);
        let b = s.render_field(meta, Band::R);
        assert_eq!(a.pixels, b.pixels);
        // Sky alone would average ~sky_level; sources must add flux.
        let mean = a.pixels.iter().map(|&p| p as f64).sum::<f64>() / a.len() as f64;
        assert!(mean > a.sky_level, "mean {mean} vs sky {}", a.sky_level);
    }

    #[test]
    fn epochs_share_sky_but_differ_in_noise() {
        let s = SyntheticSurvey::generate(small_config());
        // Two epochs of the deep stripe cover the same footprint.
        let e0 = s
            .geometry
            .fields
            .iter()
            .find(|f| f.stripe == 0 && f.epoch == 0)
            .unwrap();
        let e1 = s
            .geometry
            .fields
            .iter()
            .find(|f| f.stripe == 0 && f.epoch == 1)
            .unwrap();
        assert_eq!(e0.rect, e1.rect);
        let a = s.render_field(e0, Band::R);
        let b = s.render_field(e1, Band::R);
        assert_ne!(
            a.pixels, b.pixels,
            "independent epochs must have fresh noise"
        );
    }

    #[test]
    fn psf_varies_across_runs() {
        let s = SyntheticSurvey::generate(small_config());
        let p0 = s.psf_for_run(0, Band::R);
        let p1 = s.psf_for_run(1, Band::R);
        assert_ne!(p0.components[0].sigma_px, p1.components[0].sigma_px);
    }
}
