//! The in-memory image type: one field in one band.

use crate::bands::Band;
use crate::psf::Psf;
use crate::skygeom::FieldId;
use crate::wcs::Wcs;
use std::sync::Arc;

/// One calibrated field image in a single band.
///
/// Pixels hold *observed counts* (photo-electrons). The deterministic
/// expected-rate model for a pixel is
/// `F = sky_level + nmgy_to_counts · Σ_s flux_s(band) · g_s(pixel)`
/// (paper §III), so the image carries its sky level ε and calibration
/// ι alongside the PSF fit for the field.
#[derive(Debug, Clone)]
pub struct Image {
    pub field: FieldId,
    pub band: Band,
    pub wcs: Wcs,
    pub width: usize,
    pub height: usize,
    /// Observed counts, row-major (`y * width + x`).
    pub pixels: Vec<f32>,
    /// Expected sky background, counts per pixel.
    pub sky_level: f64,
    /// Calibration: counts per nanomaggy of source flux.
    pub nmgy_to_counts: f64,
    /// The field's point-spread function in this band. Shared:
    /// per-source subproblems reference the same fitted PSF instead
    /// of cloning its mixture into every image block.
    pub psf: Arc<Psf>,
}

impl Image {
    /// A blank (all-zero) image with the given geometry and calibration.
    #[allow(clippy::too_many_arguments)]
    pub fn blank(
        field: FieldId,
        band: Band,
        wcs: Wcs,
        width: usize,
        height: usize,
        sky_level: f64,
        nmgy_to_counts: f64,
        psf: Psf,
    ) -> Image {
        Image {
            field,
            band,
            wcs,
            width,
            height,
            pixels: vec![0.0; width * height],
            sky_level,
            nmgy_to_counts,
            psf: Arc::new(psf),
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Observed counts at (x, y). Panics out of bounds in debug builds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = v;
    }

    /// The sky position of a pixel's center.
    pub fn pixel_center_sky(&self, x: usize, y: usize) -> crate::skygeom::SkyCoord {
        self.wcs.pix_to_sky(x as f64 + 0.5, y as f64 + 0.5)
    }

    /// Whether pixel coordinates (possibly fractional) are in bounds.
    #[inline]
    pub fn in_bounds(&self, x: f64, y: f64) -> bool {
        x >= 0.0 && y >= 0.0 && x < self.width as f64 && y < self.height as f64
    }

    /// Clip a bounding box `[x0, x1] × [y0, y1]` (fractional pixels) to
    /// the image and return integer pixel ranges `(xs..xe, ys..ye)`.
    pub fn clip_box(
        &self,
        x0: f64,
        x1: f64,
        y0: f64,
        y1: f64,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let xs = x0.floor().max(0.0) as usize;
        let ys = y0.floor().max(0.0) as usize;
        let xe = (x1.ceil().max(0.0) as usize).min(self.width);
        let ye = (y1.ceil().max(0.0) as usize).min(self.height);
        (xs..xe.max(xs), ys..ye.max(ys))
    }

    /// Total observed counts above the sky level (rough flux proxy).
    pub fn total_excess_counts(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64 - self.sky_level).sum()
    }

    /// Nominal per-image data volume in bytes (pixels only), used by the
    /// I/O models.
    pub fn nbytes(&self) -> usize {
        self.pixels.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skygeom::SkyRect;

    fn test_image() -> Image {
        let rect = SkyRect::new(0.0, 0.1, 0.0, 0.1);
        Image::blank(
            FieldId {
                run: 1,
                camcol: 1,
                field: 0,
            },
            Band::R,
            Wcs::for_rect(&rect, 64, 64),
            64,
            64,
            100.0,
            300.0,
            Psf::single(1.2),
        )
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = test_image();
        img.set(3, 5, 42.0);
        assert_eq!(img.get(3, 5), 42.0);
        assert_eq!(img.get(5, 3), 0.0);
    }

    #[test]
    fn clip_box_clamps_to_bounds() {
        let img = test_image();
        let (xs, ys) = img.clip_box(-5.0, 3.2, 60.9, 100.0);
        assert_eq!(xs, 0..4);
        assert_eq!(ys, 60..64);
    }

    #[test]
    fn clip_box_empty_when_outside() {
        let img = test_image();
        let (xs, _) = img.clip_box(100.0, 120.0, 0.0, 1.0);
        assert!(xs.is_empty());
    }

    #[test]
    fn pixel_center_sky_roundtrips() {
        let img = test_image();
        let s = img.pixel_center_sky(10, 20);
        let p = img.wcs.sky_to_pix(&s);
        assert!((p[0] - 10.5).abs() < 1e-9);
        assert!((p[1] - 20.5).abs() < 1e-9);
    }
}
