//! The point-spread function: a small isotropic Gaussian mixture.
//!
//! SDSS models its PSF as a sum of Gaussians whose parameters vary
//! per field with atmospheric seeing; Celeste fits "image-specific
//! parameters" at task start (paper §IV-D). We use a two-component
//! core + halo mixture with per-field seeing drawn by the simulator.

use crate::gmm::{BvnComponent, Cov2, Gmm};

/// One isotropic PSF component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsfComponent {
    /// Flux fraction in this component; components should sum to 1.
    pub weight: f64,
    /// Gaussian sigma in pixels.
    pub sigma_px: f64,
}

/// A per-field point-spread function.
#[derive(Debug, Clone, PartialEq)]
pub struct Psf {
    pub components: Vec<PsfComponent>,
}

impl Psf {
    /// A standard core+halo PSF: 85% of flux in a core of width
    /// `seeing_px`, 15% in a halo twice as wide.
    pub fn core_halo(seeing_px: f64) -> Psf {
        assert!(seeing_px > 0.0);
        Psf {
            components: vec![
                PsfComponent {
                    weight: 0.85,
                    sigma_px: seeing_px,
                },
                PsfComponent {
                    weight: 0.15,
                    sigma_px: 2.0 * seeing_px,
                },
            ],
        }
    }

    /// A single-Gaussian PSF (useful in unit tests).
    pub fn single(sigma_px: f64) -> Psf {
        Psf {
            components: vec![PsfComponent {
                weight: 1.0,
                sigma_px,
            }],
        }
    }

    /// Total flux fraction (≈ 1).
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }

    /// As a centered bivariate Gaussian mixture.
    pub fn to_gmm(&self) -> Gmm {
        Gmm::new(
            self.components
                .iter()
                .map(|c| BvnComponent {
                    weight: c.weight,
                    mean: [0.0, 0.0],
                    cov: Cov2::isotropic(c.sigma_px * c.sigma_px),
                })
                .collect(),
        )
    }

    /// Effective full width at half maximum, in pixels, from the
    /// weighted mean variance. Used by the Photo baseline's detection
    /// kernel and star/galaxy separator.
    pub fn fwhm_px(&self) -> f64 {
        let var: f64 = self
            .components
            .iter()
            .map(|c| c.weight * c.sigma_px * c.sigma_px)
            .sum::<f64>()
            / self.total_weight();
        2.0 * (2.0_f64.ln() * 2.0).sqrt() * var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_halo_weights_sum_to_one() {
        let p = Psf::core_halo(1.2);
        assert!((p.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmm_conversion_preserves_weight_and_width() {
        let p = Psf::core_halo(1.5);
        let g = p.to_gmm();
        assert_eq!(g.components.len(), 2);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
        assert!((g.components[0].cov.xx - 2.25).abs() < 1e-12);
    }

    #[test]
    fn single_gaussian_fwhm() {
        // FWHM of a Gaussian = 2√(2 ln 2) σ ≈ 2.3548 σ.
        let p = Psf::single(2.0);
        assert!((p.fwhm_px() - 2.0 * 2.354_820_045_030_949e0).abs() < 1e-9);
    }

    #[test]
    fn halo_widens_fwhm() {
        assert!(Psf::core_halo(1.0).fwhm_px() > Psf::single(1.0).fwhm_px());
    }
}
