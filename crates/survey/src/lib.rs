#![allow(clippy::needless_range_loop)] // lockstep-indexed numeric kernels
//! Synthetic SDSS-like imaging survey (DESIGN.md S5).
//!
//! The paper runs Celeste against the 55 TB Sloan Digital Sky Survey.
//! That data (and a FITS stack) is not available here, so this crate
//! builds the closest synthetic equivalent that exercises the same code
//! paths:
//!
//! * [`skygeom`] — sky coordinates, stripes scanned along great circles,
//!   runs/camcols/fields, and overlapping field layouts (paper Fig. 1/3);
//! * [`wcs`] — affine world-coordinate transforms between sky and pixel
//!   coordinates;
//! * [`bands`] — the five ugriz filter bands and magnitude conversions;
//! * [`gmm`] / [`psf`] / [`galaxy`] — bivariate Gaussian mixtures, the
//!   point-spread function, and Gaussian-mixture approximations of the
//!   exponential / de Vaucouleurs galaxy profiles;
//! * [`catalog`] — light-source records (the survey "truth" and fitted
//!   estimates share one type);
//! * [`render`] — forward simulation of images: per-band source
//!   rendering through the PSF plus Poisson photon noise;
//! * [`image`] / [`io`] — the in-memory image type, an on-disk binary
//!   container ("SIMG"), and a prefetching loader that stands in for
//!   the Burst Buffer staging path;
//! * [`coadd`] — inverse-variance stacking of repeat exposures (the
//!   Stripe 82 ground-truth protocol, paper §VIII);
//! * [`priors`] — the model prior parameters (paper's Φ, Υ, Ξ), both
//!   hard-coded defaults and moment-fits from an existing catalog;
//! * [`sampling`] — Normal/LogNormal/Poisson samplers built on `rand`
//!   (implemented here rather than pulling in `rand_distr`).

pub mod bands;
pub mod catalog;
pub mod coadd;
pub mod galaxy;
pub mod gmm;
pub mod image;
pub mod io;
pub mod priors;
pub mod psf;
pub mod render;
pub mod sampling;
pub mod skygeom;
pub mod synth;
pub mod wcs;

pub use bands::Band;
pub use catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
pub use image::Image;
pub use priors::Priors;
pub use skygeom::{CellId, SkyCoord, SkyRect};
pub use synth::{SurveyConfig, SyntheticSurvey};
pub use wcs::Wcs;
