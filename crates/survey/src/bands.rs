//! The five SDSS filter bands and photometric unit conversions.

/// An SDSS filter band, in wavelength order.
///
/// Fluxes are carried in *nanomaggies* (nmgy) as in SDSS: a source of
/// brightness 1 nmgy has AB magnitude 22.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Band {
    U,
    G,
    R,
    I,
    Z,
}

/// Number of bands in the survey.
pub const NUM_BANDS: usize = 5;

/// Number of colors (log flux ratios between adjacent bands).
pub const NUM_COLORS: usize = NUM_BANDS - 1;

/// Index of the reference band (r), whose flux the model parameterizes
/// directly; other bands are reached through colors.
pub const REFERENCE_BAND: usize = 2;

impl Band {
    /// All bands in wavelength order.
    pub const ALL: [Band; NUM_BANDS] = [Band::U, Band::G, Band::R, Band::I, Band::Z];

    /// Positional index (u=0 … z=4).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Band::U => 0,
            Band::G => 1,
            Band::R => 2,
            Band::I => 3,
            Band::Z => 4,
        }
    }

    /// Inverse of [`Band::index`]. Panics for `i ≥ 5`.
    pub fn from_index(i: usize) -> Band {
        Band::ALL[i]
    }

    /// One-letter name.
    pub fn name(self) -> &'static str {
        match self {
            Band::U => "u",
            Band::G => "g",
            Band::R => "r",
            Band::I => "i",
            Band::Z => "z",
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convert nanomaggies to AB magnitude.
pub fn nmgy_to_mag(nmgy: f64) -> f64 {
    22.5 - 2.5 * nmgy.log10()
}

/// Convert AB magnitude to nanomaggies.
pub fn mag_to_nmgy(mag: f64) -> f64 {
    10f64.powf((22.5 - mag) / 2.5)
}

/// Per-band fluxes from a reference-band flux plus adjacent-band colors.
///
/// Colors follow the paper's definition: `c[i] = ln(flux[i+1] / flux[i])`
/// for `i = 0..4` over (u,g,r,i,z). The reference band is r.
pub fn fluxes_from_colors(flux_r: f64, colors: &[f64; NUM_COLORS]) -> [f64; NUM_BANDS] {
    let mut f = [0.0; NUM_BANDS];
    f[REFERENCE_BAND] = flux_r;
    // Walk down toward u: flux[i] = flux[i+1] / exp(c[i]).
    for i in (0..REFERENCE_BAND).rev() {
        f[i] = f[i + 1] / colors[i].exp();
    }
    // Walk up toward z: flux[i+1] = flux[i] * exp(c[i]).
    for i in REFERENCE_BAND..NUM_COLORS {
        f[i + 1] = f[i] * colors[i].exp();
    }
    f
}

/// Recover (reference flux, colors) from per-band fluxes. All fluxes
/// must be strictly positive.
pub fn colors_from_fluxes(fluxes: &[f64; NUM_BANDS]) -> (f64, [f64; NUM_COLORS]) {
    let mut colors = [0.0; NUM_COLORS];
    for i in 0..NUM_COLORS {
        colors[i] = (fluxes[i + 1] / fluxes[i]).ln();
    }
    (fluxes[REFERENCE_BAND], colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_index_roundtrip() {
        for b in Band::ALL {
            assert_eq!(Band::from_index(b.index()), b);
        }
    }

    #[test]
    fn magnitude_zero_point() {
        assert!((nmgy_to_mag(1.0) - 22.5).abs() < 1e-12);
        assert!((mag_to_nmgy(22.5) - 1.0).abs() < 1e-12);
        // 100x flux = 5 magnitudes brighter.
        assert!((nmgy_to_mag(100.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn mag_nmgy_roundtrip() {
        for &m in &[15.0, 18.0, 20.0, 22.5, 25.0] {
            assert!((nmgy_to_mag(mag_to_nmgy(m)) - m).abs() < 1e-12);
        }
    }

    #[test]
    fn colors_roundtrip() {
        let flux_r = 7.3;
        let colors = [0.4, -0.2, 0.1, 0.6];
        let f = fluxes_from_colors(flux_r, &colors);
        assert!((f[REFERENCE_BAND] - flux_r).abs() < 1e-12);
        let (r2, c2) = colors_from_fluxes(&f);
        assert!((r2 - flux_r).abs() < 1e-12);
        for (a, b) in c2.iter().zip(&colors) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_colors_give_flat_sed() {
        let f = fluxes_from_colors(2.0, &[0.0; 4]);
        assert!(f.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }
}
