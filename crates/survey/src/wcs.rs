//! Affine world-coordinate system: sky (ra, dec degrees) ↔ pixel (x, y).
//!
//! Real SDSS frames carry full TAN-projection WCS headers; for the
//! sub-degree synthetic fields here an affine transform is exact to well
//! below a milli-pixel and keeps Jacobians constant, which the model's
//! position derivatives rely on.

use crate::skygeom::{SkyCoord, SkyRect};

/// Arcseconds per degree.
pub const ARCSEC_PER_DEG: f64 = 3600.0;

/// Affine mapping `pixel = J · (sky − sky0) + pix0` with `J` in units of
/// pixels per degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wcs {
    /// Reference sky position (degrees).
    pub sky0: SkyCoord,
    /// Reference pixel position (x, y).
    pub pix0: [f64; 2],
    /// Jacobian d(pixel)/d(sky): row-major 2×2, pixels per degree.
    pub jac: [[f64; 2]; 2],
}

impl Wcs {
    /// A WCS covering `rect` with an `nx × ny` pixel grid, axis-aligned.
    pub fn for_rect(rect: &SkyRect, nx: usize, ny: usize) -> Wcs {
        let sx = nx as f64 / rect.width_deg();
        let sy = ny as f64 / rect.height_deg();
        Wcs {
            sky0: SkyCoord::new(rect.ra_min, rect.dec_min),
            pix0: [0.0, 0.0],
            jac: [[sx, 0.0], [0.0, sy]],
        }
    }

    /// Sky → pixel.
    #[inline]
    pub fn sky_to_pix(&self, p: &SkyCoord) -> [f64; 2] {
        let dra = p.ra - self.sky0.ra;
        let ddec = p.dec - self.sky0.dec;
        [
            self.pix0[0] + self.jac[0][0] * dra + self.jac[0][1] * ddec,
            self.pix0[1] + self.jac[1][0] * dra + self.jac[1][1] * ddec,
        ]
    }

    /// Pixel → sky.
    #[inline]
    pub fn pix_to_sky(&self, x: f64, y: f64) -> SkyCoord {
        let dx = x - self.pix0[0];
        let dy = y - self.pix0[1];
        let det = self.jac[0][0] * self.jac[1][1] - self.jac[0][1] * self.jac[1][0];
        let ira = (self.jac[1][1] * dx - self.jac[0][1] * dy) / det;
        let idec = (-self.jac[1][0] * dx + self.jac[0][0] * dy) / det;
        SkyCoord::new(self.sky0.ra + ira, self.sky0.dec + idec)
    }

    /// Jacobian in pixels per *arcsecond* — the natural unit for source
    /// position offsets.
    #[inline]
    pub fn jac_per_arcsec(&self) -> [[f64; 2]; 2] {
        [
            [
                self.jac[0][0] / ARCSEC_PER_DEG,
                self.jac[0][1] / ARCSEC_PER_DEG,
            ],
            [
                self.jac[1][0] / ARCSEC_PER_DEG,
                self.jac[1][1] / ARCSEC_PER_DEG,
            ],
        ]
    }

    /// Mean pixel scale, arcseconds per pixel.
    pub fn pixel_scale_arcsec(&self) -> f64 {
        let det = (self.jac[0][0] * self.jac[1][1] - self.jac[0][1] * self.jac[1][0]).abs();
        ARCSEC_PER_DEG / det.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_wcs() -> Wcs {
        Wcs::for_rect(&SkyRect::new(10.0, 10.1, -1.0, -0.9), 256, 256)
    }

    #[test]
    fn corner_mapping() {
        let w = test_wcs();
        let p = w.sky_to_pix(&SkyCoord::new(10.0, -1.0));
        assert!((p[0]).abs() < 1e-9 && (p[1]).abs() < 1e-9);
        let p = w.sky_to_pix(&SkyCoord::new(10.1, -0.9));
        assert!((p[0] - 256.0).abs() < 1e-9 && (p[1] - 256.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip() {
        let w = test_wcs();
        for &(x, y) in &[(0.0, 0.0), (17.3, 200.1), (255.9, 0.5)] {
            let s = w.pix_to_sky(x, y);
            let p = w.sky_to_pix(&s);
            assert!((p[0] - x).abs() < 1e-9 && (p[1] - y).abs() < 1e-9);
        }
    }

    #[test]
    fn pixel_scale_matches_layout() {
        let w = test_wcs();
        // 0.1 degree / 256 px = 1.40625 arcsec/px
        assert!((w.pixel_scale_arcsec() - 360.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn jacobian_consistency_with_finite_difference() {
        let w = test_wcs();
        let base = SkyCoord::new(10.05, -0.95);
        let p0 = w.sky_to_pix(&base);
        let h = 1e-6;
        let pr = w.sky_to_pix(&SkyCoord::new(base.ra + h, base.dec));
        let pd = w.sky_to_pix(&SkyCoord::new(base.ra, base.dec + h));
        assert!(((pr[0] - p0[0]) / h - w.jac[0][0]).abs() < 1e-4);
        assert!(((pd[1] - p0[1]) / h - w.jac[1][1]).abs() < 1e-4);
        let ja = w.jac_per_arcsec();
        assert!((ja[0][0] * ARCSEC_PER_DEG - w.jac[0][0]).abs() < 1e-12);
    }
}
