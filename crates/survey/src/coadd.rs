//! Coaddition of repeat exposures — the Stripe 82 ground-truth protocol.
//!
//! Paper §VIII: "combine exposures from all Stripe-82 runs to produce a
//! very high signal-to-noise image, and estimate ground truth parameters
//! from that image." We coadd by *summing* counts: the sum of Poisson
//! images is Poisson with summed rates, so the coadd is statistically
//! identical to one long exposure with `Σ ι_e` calibration and `Σ ε_e`
//! sky — no reweighting bias, and √N deeper. The coadd PSF is the
//! flux-weighted mixture of the epoch PSFs.

use crate::image::Image;
use crate::psf::{Psf, PsfComponent};
use rayon::prelude::*;

/// Sum-coadd a set of same-footprint exposures (same band, same WCS
/// grid). Panics if geometries differ.
pub fn coadd(exposures: &[&Image]) -> Image {
    assert!(!exposures.is_empty(), "coadd of zero exposures");
    let first = exposures[0];
    for e in exposures {
        assert_eq!(e.width, first.width, "coadd: mixed widths");
        assert_eq!(e.height, first.height, "coadd: mixed heights");
        assert_eq!(e.band, first.band, "coadd: mixed bands");
        assert_eq!(e.wcs, first.wcs, "coadd: mixed WCS");
    }
    let mut out = first.clone();
    out.sky_level = exposures.iter().map(|e| e.sky_level).sum();
    out.nmgy_to_counts = exposures.iter().map(|e| e.nmgy_to_counts).sum();
    // Pixel-chunk parallel sum. Every pixel adds its exposures in
    // argument order, so the result is bit-identical to the serial
    // loop at any thread count.
    const COADD_CHUNK: usize = 4096;
    out.pixels
        .par_chunks_mut(COADD_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            chunk.fill(0.0);
            let base = ci * COADD_CHUNK;
            let len = chunk.len();
            for e in exposures {
                for (o, &p) in chunk.iter_mut().zip(&e.pixels[base..base + len]) {
                    *o += p;
                }
            }
        });
    // Flux-weighted mixture of per-epoch PSFs, renormalized to unit
    // weight. (Each epoch contributes flux ∝ its ι.)
    let total_iota = out.nmgy_to_counts;
    let mut comps: Vec<PsfComponent> = Vec::new();
    for e in exposures {
        let share = e.nmgy_to_counts / total_iota;
        for c in &e.psf.components {
            comps.push(PsfComponent {
                weight: c.weight * share,
                sigma_px: c.sigma_px,
            });
        }
    }
    out.psf = std::sync::Arc::new(Psf {
        components: merge_similar(comps),
    });
    out
}

/// Merge PSF components with near-identical widths to keep the coadd
/// mixture small (80 epochs × 2 components would otherwise be 160).
fn merge_similar(mut comps: Vec<PsfComponent>) -> Vec<PsfComponent> {
    comps.sort_by(|a, b| a.sigma_px.partial_cmp(&b.sigma_px).unwrap());
    let mut merged: Vec<PsfComponent> = Vec::new();
    for c in comps {
        match merged.last_mut() {
            Some(m) if (c.sigma_px - m.sigma_px).abs() < 0.05 * m.sigma_px => {
                // Weight-average the widths.
                let w = m.weight + c.weight;
                m.sigma_px = (m.sigma_px * m.weight + c.sigma_px * c.weight) / w;
                m.weight = w;
            }
            _ => merged.push(c),
        }
    }
    merged
}

/// Signal-to-noise proxy for a point source of `flux_nmgy` in an image:
/// `ι·flux / √(sky per effective PSF area)`.
pub fn point_source_snr(img: &Image, flux_nmgy: f64) -> f64 {
    let signal = img.nmgy_to_counts * flux_nmgy;
    // Effective number of pixels under the PSF ≈ 4π σ_eff².
    let sigma2: f64 = img
        .psf
        .components
        .iter()
        .map(|c| c.weight * c.sigma_px * c.sigma_px)
        .sum::<f64>()
        / img.psf.total_weight();
    let npix = 4.0 * std::f64::consts::PI * sigma2;
    signal / (npix * img.sky_level + signal).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::Band;
    use crate::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use crate::render::render_observed;
    use crate::skygeom::{FieldId, SkyCoord, SkyRect};
    use crate::wcs::Wcs;

    fn exposure(seed: u64) -> Image {
        let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
        let mut img = Image::blank(
            FieldId {
                run: seed as u32,
                camcol: 1,
                field: 0,
            },
            Band::R,
            Wcs::for_rect(&rect, 64, 64),
            64,
            64,
            100.0,
            300.0,
            Psf::core_halo(1.4),
        );
        let cat = Catalog::new(vec![CatalogEntry {
            id: 1,
            pos: SkyCoord::new(0.01, 0.01),
            source_type: SourceType::Star,
            flux_r_nmgy: 3.0,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        }]);
        render_observed(&cat, &mut img, seed);
        img
    }

    #[test]
    fn coadd_sums_counts_and_calibration() {
        let exps: Vec<Image> = (0..4).map(exposure).collect();
        let refs: Vec<&Image> = exps.iter().collect();
        let c = coadd(&refs);
        assert!((c.sky_level - 400.0).abs() < 1e-9);
        assert!((c.nmgy_to_counts - 1200.0).abs() < 1e-9);
        let manual: f32 = exps.iter().map(|e| e.pixels[100]).sum();
        assert_eq!(c.pixels[100], manual);
    }

    #[test]
    fn coadd_psf_weight_is_one() {
        let exps: Vec<Image> = (0..8).map(exposure).collect();
        let refs: Vec<&Image> = exps.iter().collect();
        let c = coadd(&refs);
        assert!((c.psf.total_weight() - 1.0).abs() < 1e-9);
        // Merged: far fewer than 16 components.
        assert!(c.psf.components.len() <= 8);
    }

    #[test]
    fn coadd_improves_snr_like_sqrt_n() {
        let one = exposure(1);
        let exps: Vec<Image> = (0..16).map(exposure).collect();
        let refs: Vec<&Image> = exps.iter().collect();
        let deep = coadd(&refs);
        let r = point_source_snr(&deep, 1.0) / point_source_snr(&one, 1.0);
        assert!((r - 4.0).abs() < 0.5, "SNR ratio {r}, expected ≈ 4");
    }

    #[test]
    #[should_panic(expected = "mixed")]
    fn coadd_rejects_mismatched_geometry() {
        let a = exposure(1);
        let mut b = exposure(2);
        b.wcs.sky0.ra += 1.0;
        let _ = coadd(&[&a, &b]);
    }
}
