//! Property-based tests for the survey substrate.

use celeste_survey::bands::{colors_from_fluxes, fluxes_from_colors, mag_to_nmgy, nmgy_to_mag};
use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::galaxy::{galaxy_mixture_sky, shape_covariance};
use celeste_survey::io::{decode_catalog, decode_image, encode_catalog, encode_image};
use celeste_survey::psf::Psf;
use celeste_survey::render::{render_expected, source_gmm_pix};
use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
use celeste_survey::wcs::Wcs;
use celeste_survey::Image;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = GalaxyShape> {
    (
        0.0..1.0f64,
        0.1..1.0f64,
        0.0..std::f64::consts::PI,
        0.3..5.0f64,
    )
        .prop_map(
            |(frac_dev, axis_ratio, angle_rad, radius_arcsec)| GalaxyShape {
                frac_dev,
                axis_ratio,
                angle_rad,
                radius_arcsec,
            },
        )
}

fn arb_entry() -> impl Strategy<Value = CatalogEntry> {
    (
        0.002..0.028f64,
        0.002..0.028f64,
        any::<bool>(),
        0.5..50.0f64,
        prop::array::uniform4(-1.0..1.5f64),
        arb_shape(),
    )
        .prop_map(|(ra, dec, star, flux, colors, shape)| CatalogEntry {
            id: 0,
            pos: SkyCoord::new(ra, dec),
            source_type: if star {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: flux,
            colors,
            shape,
        })
}

fn test_image(psf_sigma: f64) -> Image {
    let rect = SkyRect::new(0.0, 0.03, 0.0, 0.03);
    Image::blank(
        FieldId {
            run: 1,
            camcol: 1,
            field: 0,
        },
        celeste_survey::Band::R,
        Wcs::for_rect(&rect, 96, 96),
        96,
        96,
        120.0,
        250.0,
        Psf::core_halo(psf_sigma),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn color_flux_roundtrip(flux in 0.01..1000.0f64, colors in prop::array::uniform4(-2.0..2.0f64)) {
        let f = fluxes_from_colors(flux, &colors);
        prop_assert!(f.iter().all(|&x| x > 0.0));
        let (r, c) = colors_from_fluxes(&f);
        prop_assert!((r - flux).abs() < 1e-9 * flux);
        for (a, b) in c.iter().zip(&colors) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn magnitude_roundtrip(mag in 10.0..28.0f64) {
        prop_assert!((nmgy_to_mag(mag_to_nmgy(mag)) - mag).abs() < 1e-10);
    }

    #[test]
    fn wcs_roundtrip_arbitrary_affine(
        ra0 in 0.0..300.0f64,
        dec0 in -60.0..60.0f64,
        sx in 500.0..20000.0f64,
        sy in 500.0..20000.0f64,
        skew in -100.0..100.0f64,
        x in -50.0..500.0f64,
        y in -50.0..500.0f64,
    ) {
        let w = Wcs {
            sky0: SkyCoord::new(ra0, dec0),
            pix0: [10.0, -5.0],
            jac: [[sx, skew], [-skew, sy]],
        };
        let s = w.pix_to_sky(x, y);
        let p = w.sky_to_pix(&s);
        prop_assert!((p[0] - x).abs() < 1e-6, "x {} vs {}", p[0], x);
        prop_assert!((p[1] - y).abs() < 1e-6);
    }

    #[test]
    fn shape_covariance_is_positive_definite(
        v in 0.01..4.0f64,
        r in 0.1..6.0f64,
        q in 0.05..1.0f64,
        th in 0.0..std::f64::consts::PI,
    ) {
        let c = shape_covariance(v, r, q, th);
        prop_assert!(c.xx > 0.0);
        prop_assert!(c.det() > 0.0, "det {}", c.det());
        // Trace is rotation invariant: xx + yy = v r² (1 + q²).
        let tr = c.xx + c.yy;
        let expect = v * r * r * (1.0 + q * q);
        prop_assert!((tr - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn galaxy_mixture_weights_always_sum_to_one(shape in arb_shape()) {
        let mix = galaxy_mixture_sky(
            shape.frac_dev,
            shape.radius_arcsec,
            shape.axis_ratio,
            shape.angle_rad,
        );
        let total: f64 = mix.iter().map(|(w, _)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(mix.iter().all(|(w, c)| *w >= -1e-12 && c.det() > 0.0));
    }

    #[test]
    fn rendered_flux_is_conserved(entry in arb_entry()) {
        // An in-bounds source renders ~all its flux into the image
        // (bounded by bounding-box truncation).
        let mut entry = entry;
        entry.pos = SkyCoord::new(0.015, 0.015); // center of the field
        entry.shape.radius_arcsec = entry.shape.radius_arcsec.min(2.0);
        let img = test_image(1.2);
        let cat = Catalog::new(vec![entry.clone()]);
        let expected = render_expected(&cat, &img);
        let excess: f64 = expected.iter().map(|&e| e - img.sky_level).sum();
        let want = entry.fluxes()[2] * img.nmgy_to_counts;
        prop_assert!(
            (excess - want).abs() < 0.06 * want,
            "excess {} vs flux {}", excess, want
        );
    }

    #[test]
    fn source_gmm_is_normalized(entry in arb_entry()) {
        let img = test_image(1.4);
        let gmm = source_gmm_pix(&entry, &img);
        let total = gmm.total_weight();
        prop_assert!((total - 1.0).abs() < 1e-6, "weight {}", total);
    }

    #[test]
    fn image_codec_roundtrip(
        seed_px in prop::collection::vec(0.0..65000.0f32, 16),
        sky in 1.0..500.0f64,
        iota in 10.0..1000.0f64,
    ) {
        let mut img = Image::blank(
            FieldId { run: 77, camcol: 2, field: 5 },
            celeste_survey::Band::Z,
            Wcs::for_rect(&SkyRect::new(0.0, 0.01, 0.0, 0.01), 4, 4),
            4,
            4,
            sky,
            iota,
            Psf::core_halo(1.1),
        );
        img.pixels.copy_from_slice(&seed_px);
        let decoded = decode_image(&encode_image(&img)).unwrap();
        prop_assert_eq!(decoded.pixels, img.pixels);
        prop_assert_eq!(decoded.sky_level, img.sky_level);
        prop_assert_eq!(decoded.nmgy_to_counts, img.nmgy_to_counts);
    }

    #[test]
    fn catalog_codec_roundtrip(entries in prop::collection::vec(arb_entry(), 0..20)) {
        let mut entries = entries;
        for (i, e) in entries.iter_mut().enumerate() {
            e.id = i as u64;
        }
        let cat = Catalog::new(entries);
        let decoded = decode_catalog(&encode_catalog(&cat)).unwrap();
        prop_assert_eq!(decoded.entries, cat.entries);
    }
}
