//! Shared experiment harness for the paper reproductions.
//!
//! Every table and figure of the evaluation has a binary in
//! `src/bin/`; this library holds the pieces they share: standard
//! scenes, the Stripe 82 validation protocol (paper §VIII), the FLOP
//! audit (§VI-B), and a real mini-campaign runner used to calibrate
//! the cluster simulator.
//!
//! Experiment scale is controlled by the `CELESTE_SCALE` environment
//! variable (a positive float, default 1.0): CI sets 0.2 for smoke
//! runs, the committed EXPERIMENTS.md numbers use 1.0.

use celeste::Celeste;
use celeste_ad::{op_count, reset_op_count, Counting};
use celeste_core::generic;
use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_photo::{compare_catalogs, TableII};
use celeste_sched::{partition_sky, CampaignReport, PartitionConfig};
use celeste_survey::bands::Band;
use celeste_survey::coadd::coadd;
use celeste_survey::io::ImageStore;
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
use celeste_survey::{Catalog, Image, Priors};

/// Experiment scale factor from `CELESTE_SCALE` (default 1).
pub fn scale() -> f64 {
    std::env::var("CELESTE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Scale an integer quantity, keeping at least `min`.
pub fn scaled(base: usize, min: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(min)
}

/// Audit the FLOP cost of one active-pixel visit by running the
/// generic ELBO under the op-counting float (the in-process stand-in
/// for the paper's Intel SDE measurement; §VI-B reports 32,317
/// FLOPs/visit for the full derivative path — our audited value covers
/// the value path and is scaled by the measured derivative ratio).
pub fn audit_flops_per_visit() -> f64 {
    let (params, blocks) = audit_fixture();
    reset_op_count();
    let lifted: [Counting; celeste_core::NUM_PARAMS] = generic::lift(&params);
    let _ = generic::likelihood(&lifted, &blocks);
    let ops = op_count();
    let pixels: usize = blocks.iter().map(|b| b.pixels.len()).sum();
    ops.total_weighted(20) as f64 / pixels as f64
}

/// Measure the full-derivative / value-only cost ratio (the paper's
/// "computing the Hessian along with the gradient … takes 3x longer").
pub fn measure_deriv_cost_ratio() -> f64 {
    use std::time::Instant;
    let (params, blocks) = audit_fixture();
    let reps = 50;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = celeste_core::likelihood::likelihood_value(&params, &blocks);
    }
    let value_t = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        let mut g = [0.0; celeste_core::NUM_PARAMS];
        let mut h = celeste_linalg::Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
        let _ = celeste_core::likelihood::add_likelihood(&params, &blocks, &mut g, &mut h);
    }
    let deriv_t = t1.elapsed().as_secs_f64();
    deriv_t / value_t.max(1e-12)
}

fn audit_fixture() -> (
    [f64; celeste_core::NUM_PARAMS],
    Vec<celeste_core::likelihood::ImageBlock>,
) {
    use celeste_core::likelihood::{ActivePixel, ImageBlock};
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::skygeom::SkyCoord;
    let entry = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.0, 0.0),
        source_type: SourceType::Galaxy,
        flux_r_nmgy: 5.0,
        colors: [0.5, 0.3, 0.2, 0.1],
        shape: GalaxyShape {
            frac_dev: 0.4,
            axis_ratio: 0.7,
            angle_rad: 0.6,
            radius_arcsec: 1.8,
        },
    };
    let sp = SourceParams::init_from_entry(&entry);
    // Large enough that per-pixel work dominates the per-block
    // preparation (inverse covariances etc.), as in production tasks.
    let mut pixels = Vec::new();
    for y in 0..28 {
        for x in 0..28 {
            let dx = x as f64 - 14.0;
            let dy = y as f64 - 14.0;
            pixels.push(ActivePixel {
                px: 30.0 + dx,
                py: 30.0 + dy,
                x: (140.0 + 300.0 * (-0.3 * (dx * dx + dy * dy)).exp()).round(),
                eps: 140.0,
            });
        }
    }
    let block = ImageBlock {
        band: 2,
        iota: 300.0,
        jac: [[0.71, 0.0], [0.0, 0.71]],
        center0: [30.0, 30.0],
        psf: std::sync::Arc::new(Psf::core_halo(1.3)),
        pixels,
    };
    (sp.params, vec![block])
}

/// The Stripe 82 validation scene: a deep field imaged `epochs` times
/// plus the single "science run" epoch used for the comparison.
pub struct Stripe82Scene {
    pub survey: SyntheticSurvey,
    /// The single-epoch images (5 bands) of the validation field.
    pub single_run: Vec<Image>,
    /// The per-band coadds of every epoch.
    pub coadds: Vec<Image>,
    /// The field's truth entries (for protocol sanity checks only —
    /// scoring uses the coadd-derived catalog, as in the paper).
    pub truth: Catalog,
}

/// Build the validation scene. `epochs` repeat exposures (paper: ~80),
/// `density` sources per square degree.
pub fn stripe82_scene(epochs: u32, density: f64, seed: u64) -> Stripe82Scene {
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 1,
            deep_stripe: Some(0),
            deep_epochs: epochs,
            stripe_overlap: 0.0,
            field_overlap: 0.0,
            // A field sampled finely: 0.06° / 384 px = 0.56 arcsec/px,
            // close to SDSS's 0.396 — typical 1.5" galaxies must be
            // resolved for classification to make sense at all.
            stripe_height_deg: 0.06,
            field_width_deg: 0.06,
            ..GeometryConfig::default()
        },
        pixels_per_field: 384,
        source_density_per_sq_deg: density,
        // A single epoch is noisy (the paper: "most light sources will
        // be near the detection limit") but deep enough that galaxies
        // are detectable; the coadd's stacked calibration is what
        // makes the truth catalog clean.
        nmgy_to_counts: 200.0,
        seed,
        ..SurveyConfig::default()
    });
    let fields: Vec<_> = survey.geometry.fields.clone();
    let single_run: Vec<Image> = Band::ALL
        .iter()
        .map(|&b| survey.render_field(&fields[0], b))
        .collect();
    let coadds: Vec<Image> = Band::ALL
        .iter()
        .map(|&b| {
            let exposures: Vec<Image> = fields.iter().map(|f| survey.render_field(f, b)).collect();
            let refs: Vec<&Image> = exposures.iter().collect();
            coadd(&refs)
        })
        .collect();
    let truth = Catalog::new(
        survey
            .truth
            .in_rect(&fields[0].rect)
            .into_iter()
            .cloned()
            .collect(),
    );
    Stripe82Scene {
        survey,
        single_run,
        coadds,
        truth,
    }
}

/// Results of the Table II protocol.
pub struct TableIIResult {
    /// Scored against the *generating* truth catalog (primary).
    pub photo: TableII,
    pub celeste: TableII,
    /// Scored against the coadd-Photo catalog (the paper's §VIII
    /// protocol, reported for comparison).
    pub photo_coadd: TableII,
    pub celeste_coadd: TableII,
    /// The coadd-derived catalog size.
    pub truth_sources: usize,
    /// Real-truth comparison table.
    pub formatted: String,
    /// Coadd-protocol comparison table.
    pub formatted_coadd: String,
}

/// Run the Table II validation.
///
/// The paper (§VIII) scores against Photo run on an ~80-epoch coadd
/// because "absolute truth is unknowable" for real sky — and notes
/// that this protocol's systematic errors "typically favor Photo".
/// Our survey is synthetic, so absolute truth *is* knowable: the
/// primary scoring here uses the generating catalog, and the paper's
/// coadd protocol is reported alongside (see DESIGN.md S5/S6 notes).
///
/// Pipeline: Photo on the deep coadds (prior learning + the coadd
/// protocol's reference), Photo on the single run (baseline + Celeste
/// initialization), Celeste on the single run, then score.
pub fn run_table2(scene: &Stripe82Scene, fit: &FitConfig, n_threads: usize) -> TableIIResult {
    let detector = Celeste::session();
    let coadd_refs: Vec<&Image> = scene.coadds.iter().collect();
    let coadd_catalog = detector.detect(&coadd_refs).expect("one image per band");

    let single_refs: Vec<&Image> = scene.single_run.iter().collect();
    let photo_catalog = detector.detect(&single_refs).expect("one image per band");

    // Celeste: init from the single-run Photo catalog, learn priors
    // from the coadd catalog (the "preexisting catalog" of §III).
    let session = Celeste::builder()
        .threads(n_threads)
        .fit(*fit)
        .priors(ModelPriors::new(
            Priors::sdss_default().fit_from_catalog(&coadd_catalog),
        ))
        .build()
        .expect("valid fit config");
    let mut sources = session.init_sources(&photo_catalog);
    session
        .fit_region(&mut sources, &single_refs, &[], 0xC0FFEE)
        .expect("finite inputs");
    let celeste_catalog = Catalog::new(sources.iter().map(|s| s.to_entry()).collect());

    let cmp_cfg = celeste_photo::compare::CompareConfig {
        pixel_scale_arcsec: scene.single_run[0].wcs.pixel_scale_arcsec(),
        ..Default::default()
    };
    let photo_t = compare_catalogs(&scene.truth, &photo_catalog, &cmp_cfg);
    let celeste_t = compare_catalogs(&scene.truth, &celeste_catalog, &cmp_cfg);
    let photo_c = compare_catalogs(&coadd_catalog, &photo_catalog, &cmp_cfg);
    let celeste_c = compare_catalogs(&coadd_catalog, &celeste_catalog, &cmp_cfg);
    let formatted = celeste_photo::compare::format_table(&photo_t, &celeste_t);
    let formatted_coadd = celeste_photo::compare::format_table(&photo_c, &celeste_c);
    TableIIResult {
        photo: photo_t,
        celeste: celeste_t,
        photo_coadd: photo_c,
        celeste_coadd: celeste_c,
        truth_sources: coadd_catalog.len(),
        formatted,
        formatted_coadd,
    }
}

/// Run a real mini-campaign on this machine and return its measured
/// report (simulator calibration input).
pub fn run_calibration_campaign(seed: u64) -> CampaignReport {
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 1,
            fields_per_stripe: 2,
            deep_stripe: None,
            epochs_per_stripe: 1,
            ..GeometryConfig::default()
        },
        pixels_per_field: 96,
        source_density_per_sq_deg: 3000.0,
        seed,
        ..SurveyConfig::default()
    });
    let dir = std::env::temp_dir().join(format!("celeste-calib-{}", std::process::id()));
    let store = ImageStore::open(&dir).expect("open store");
    let init = survey.truth.clone();
    let tasks = partition_sky(
        &init,
        &survey.geometry.footprint,
        &PartitionConfig {
            target_work: 800.0,
            max_sources: 40,
            ..Default::default()
        },
    );
    let session = Celeste::builder()
        .threads(2)
        .n_nodes(2)
        .fit(FitConfig {
            bca_passes: 1,
            newton: celeste_core::NewtonConfig {
                max_iters: 15,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .expect("valid fit config");
    session.stage(&survey, &store).expect("writable store");
    let outcome = session
        .run_campaign(&survey, &store, &init, &tasks)
        .expect("staged campaign");
    std::fs::remove_dir_all(&dir).ok();
    outcome.report
}

/// Count of Table II rows where `a` is strictly better (lower mean).
pub fn rows_better(a: &TableII, b: &TableII) -> usize {
    a.rows()
        .iter()
        .zip(b.rows())
        .filter(|((_, ra), (_, rb))| ra.n > 0 && rb.n > 0 && ra.mean < rb.mean)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_audit_is_stable_and_plausible() {
        let a = audit_flops_per_visit();
        let b = audit_flops_per_visit();
        assert_eq!(a, b, "audit must be deterministic");
        assert!(a > 1_000.0 && a < 200_000.0, "flops/visit {a}");
    }

    #[test]
    fn stripe82_scene_has_deep_coadds() {
        let scene = stripe82_scene(6, 20_000.0, 42);
        assert_eq!(scene.single_run.len(), 5);
        assert_eq!(scene.coadds.len(), 5);
        // Coadd is 6× deeper in calibration.
        let single_iota = scene.single_run[2].nmgy_to_counts;
        let coadd_iota = scene.coadds[2].nmgy_to_counts;
        assert!((coadd_iota / single_iota - 6.0).abs() < 1e-9);
        assert!(!scene.truth.is_empty());
    }

    #[test]
    fn scale_env_parsing() {
        // No env set in tests: default 1.0.
        assert_eq!(scale(), 1.0);
        assert_eq!(scaled(10, 2), 10);
    }
}
