//! Figure 5 reproduction: strong scaling on the full 557,056-task
//! campaign at 2,048 / 4,096 / 8,192 nodes.
//!
//! Expected shape (paper §VII-C2): image loading and task processing
//! scale near-perfectly, "other" is flat and small, load imbalance
//! grows in relative importance; ~65% efficiency 2k → 4k and ~50%
//! 2k → 8k.

use celeste_bench::{audit_flops_per_visit, measure_deriv_cost_ratio, run_calibration_campaign};
use celeste_cluster::report::{components_csv, components_table, stacked_chart};
use celeste_cluster::{calibrate_from_report, simulate_run, ClusterConfig};

fn main() {
    eprintln!("[fig5] calibrating from a real mini-campaign …");
    let flops_per_visit = audit_flops_per_visit() * measure_deriv_cost_ratio();
    let cal = calibrate_from_report(&run_calibration_campaign(0xF165), flops_per_visit);

    const TOTAL_TASKS: usize = 557_056;
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for nodes in [2048usize, 4096, 8192] {
        let cfg = ClusterConfig {
            nodes,
            ..Default::default()
        };
        let r = simulate_run(&cal, &cfg, TOTAL_TASKS, 555 + nodes as u64, false);
        totals.push((nodes, r.makespan));
        rows.push((nodes.to_string(), r.components));
    }

    println!("Figure 5 — strong scaling ({TOTAL_TASKS} tasks)\n");
    println!("{}", components_table(&rows));
    println!("{}", stacked_chart(&rows, 60));
    println!("CSV:\n{}", components_csv(&rows));

    let eff = |a: (usize, f64), b: (usize, f64)| {
        let ideal = b.0 as f64 / a.0 as f64;
        (a.1 / b.1) / ideal * 100.0
    };
    println!(
        "scaling efficiency: 2k→4k {:.0}% (paper 65%), 2k→8k {:.0}% (paper 50%)",
        eff(totals[0], totals[1]),
        eff(totals[0], totals[2]),
    );
}
