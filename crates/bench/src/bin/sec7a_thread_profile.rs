//! §VII-A reproduction: per-thread runtime breakdown.
//!
//! The paper profiles a worker thread: 67% generated (model) code, 18%
//! native dependencies / runtime, 10% system math library, 3% MKL, 2%
//! kernel. Our analogue instruments the same roles in the Rust port:
//! the ELBO kernels (model code), linear algebra (eigen + Cholesky =
//! the MKL role), image I/O + decoding (native deps), and everything
//! else (scheduling, allocation, misc).

use celeste_core::likelihood::{add_likelihood, likelihood_value};
use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_linalg::{solve_tr_subproblem, Mat};
use celeste_survey::io::{decode_image, encode_image};
use celeste_survey::render::render_observed;
use celeste_survey::Priors;
use std::time::Instant;

fn main() {
    // One realistic source-fit workload, instrumented by role.
    let scene = celeste_bench::stripe82_scene(1, 25_000.0, 0x7A);
    let refs: Vec<&celeste_survey::Image> = scene.single_run.iter().collect();
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = FitConfig::default();
    let brightest = scene
        .truth
        .entries
        .iter()
        .max_by(|a, b| a.flux_r_nmgy.partial_cmp(&b.flux_r_nmgy).unwrap())
        .expect("nonempty scene");
    let sp = SourceParams::init_from_entry(brightest);
    let problem = celeste_core::SourceProblem::build(&sp, &refs, &[], &priors, &cfg);

    // Role 1: ELBO kernels (the "Julia generated code" role).
    let reps = 40;
    let t = Instant::now();
    for _ in 0..reps {
        let mut g = [0.0; celeste_core::NUM_PARAMS];
        let mut h = Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
        add_likelihood(&sp.params, &problem.blocks, &mut g, &mut h);
        let _ = likelihood_value(&sp.params, &problem.blocks);
    }
    let t_model = t.elapsed().as_secs_f64();

    // Role 2: dense linear algebra (the "MKL" role): the TR solve.
    let mut g = [0.0; celeste_core::NUM_PARAMS];
    let mut h = Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
    add_likelihood(&sp.params, &problem.blocks, &mut g, &mut h);
    h.scale(-1.0);
    h.symmetrize();
    let t = Instant::now();
    for _ in 0..reps {
        let _ = solve_tr_subproblem(&h, &g, 1.0);
    }
    let t_linalg = t.elapsed().as_secs_f64();

    // Role 3: image I/O + rendering (the "native dependencies" role).
    let t = Instant::now();
    for i in 0..reps {
        let mut img = scene.single_run[i % 5].clone();
        render_observed(&scene.truth, &mut img, i as u64);
        let bytes = encode_image(&img);
        let _ = decode_image(&bytes).expect("roundtrip");
    }
    let t_io = t.elapsed().as_secs_f64();

    // Role 4: everything else — approximate with the scheduling +
    // bookkeeping overhead of a region pass minus the measured roles.
    let t = Instant::now();
    let mut sources = vec![sp.clone()];
    celeste_sched::process_region(&mut sources, &refs, &[], &priors, &cfg, 1, 1);
    let t_region = t.elapsed().as_secs_f64();

    let total = t_model + t_linalg + t_io + t_region.max(0.0);
    println!("Per-thread runtime breakdown (paper §VII-A analogue)\n");
    let row = |name: &str, t: f64, paper: &str| {
        println!("{name:<34} {:>6.1}%   (paper: {paper})", 100.0 * t / total);
    };
    row("model/ELBO kernels", t_model, "67% Julia generated code");
    row(
        "image I/O + decode (native deps)",
        t_io,
        "18% native dependencies",
    );
    row("dense linear algebra (TR solve)", t_linalg, "3% Intel MKL");
    row(
        "scheduling/alloc/other",
        t_region,
        "10% libm + 2% kernel/libc",
    );
    println!(
        "\n(absolute: model {:.2}s, io {:.2}s, linalg {:.3}s, other {:.2}s over the probe workload)",
        t_model, t_io, t_linalg, t_region
    );
}
