//! Ablation: exact-Hessian Newton vs first-order ascent (§IV-D).
//!
//! The paper's claim: "By using Newton steps with exact Hessians
//! rather than L-BFGS or a first-order optimization method, we attain
//! a 1–2 order-of-magnitude speed-up … taking up to 2000 iterations to
//! converge [first-order] … Newton's method converges reliably in tens
//! of iterations", while "computing the Hessian along with the
//! gradient … takes 3x longer" per evaluation.

use celeste_core::newton::{maximize, NewtonConfig, Objective};
use celeste_core::{ModelPriors, SourceParams};
use celeste_linalg::vecops;
use celeste_survey::Priors;
use std::time::Instant;

/// Gradient ascent with backtracking line search on the same objective.
fn gradient_ascent(
    obj: &impl Objective,
    x: &mut [f64],
    max_iters: usize,
    tol: f64,
) -> (usize, f64) {
    let mut f = obj.value(x);
    let mut step = 1e-3;
    for iter in 0..max_iters {
        let (_, grad, _) = obj.eval(x);
        if vecops::max_abs(&grad) < tol {
            return (iter, f);
        }
        // Backtracking.
        let mut accepted = false;
        for _ in 0..30 {
            let trial: Vec<f64> = x.iter().zip(&grad).map(|(xi, gi)| xi + step * gi).collect();
            let ft = obj.value(&trial);
            if ft > f {
                x.copy_from_slice(&trial);
                f = ft;
                step *= 1.6;
                accepted = true;
                break;
            }
            step *= 0.4;
        }
        if !accepted {
            return (iter, f);
        }
    }
    (max_iters, f)
}

fn main() {
    let scene = celeste_bench::stripe82_scene(1, 25_000.0, 0xAB1A);
    let refs: Vec<&celeste_survey::Image> = scene.single_run.iter().collect();
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = celeste_core::FitConfig::default();

    // Take the handful of brightest sources as fit problems.
    let mut entries = scene.truth.entries.clone();
    entries.sort_by(|a, b| b.flux_r_nmgy.partial_cmp(&a.flux_r_nmgy).unwrap());
    let n_probes = celeste_bench::scaled(6, 2);

    println!("Newton-with-exact-Hessian vs gradient ascent ({n_probes} sources)\n");
    println!(
        "{:>8} {:>14} {:>12} {:>16} {:>12} {:>12}",
        "source", "newton iters", "newton (s)", "gradient iters", "grad (s)", "ELBO gap"
    );
    let (mut tot_ni, mut tot_gi) = (0usize, 0usize);
    for e in entries.iter().take(n_probes) {
        let sp = SourceParams::init_from_entry(e);
        let problem = celeste_core::SourceProblem::build(&sp, &refs, &[], &priors, &cfg);
        if problem.blocks.is_empty() {
            continue;
        }
        // Newton TR.
        let mut xn = sp.params.to_vec();
        let t0 = Instant::now();
        let stats = maximize(&problem, &mut xn, &NewtonConfig::default());
        let t_newton = t0.elapsed().as_secs_f64();
        // First-order.
        let mut xg = sp.params.to_vec();
        let t1 = Instant::now();
        let (g_iters, g_val) = gradient_ascent(&problem, &mut xg, 2000, 1e-6);
        let t_grad = t1.elapsed().as_secs_f64();

        println!(
            "{:>8} {:>14} {:>12.3} {:>16} {:>12.3} {:>12.4}",
            e.id,
            stats.iterations,
            t_newton,
            g_iters,
            t_grad,
            stats.value - g_val
        );
        tot_ni += stats.iterations;
        tot_gi += g_iters;
    }
    println!(
        "\niteration ratio (gradient / Newton): {:.1}×   (paper: 1–2 orders of magnitude)",
        tot_gi as f64 / tot_ni.max(1) as f64
    );
    println!(
        "per-eval cost ratio (grad+Hessian / value): {:.2}×   (paper: ~3×)",
        celeste_bench::measure_deriv_cost_ratio()
    );
}
