//! Table II reproduction: Stripe 82 validation, Photo vs Celeste.
//!
//! Paper §VIII: coadd ~80 repeat exposures of Stripe 82, treat Photo's
//! estimates on the deep coadd as ground truth, then compare Photo and
//! Celeste run on a single epoch. Scale with `CELESTE_SCALE` (1.0 →
//! 24 epochs, ~8k sources/sq-deg validation field).

use celeste_bench::{rows_better, run_table2, scaled, stripe82_scene};
use celeste_core::FitConfig;

fn main() {
    let epochs = scaled(24, 4) as u32;
    let density = 40_000.0 * celeste_bench::scale().min(1.5);
    eprintln!("[table2] generating Stripe 82 scene: {epochs} epochs, density {density:.0}/sq-deg");
    let scene = stripe82_scene(epochs, density, 0x5712_8202);
    eprintln!(
        "[table2] field truth sources: {}, running protocol …",
        scene.truth.len()
    );
    let fit = FitConfig {
        bca_passes: 2,
        ..Default::default()
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let result = run_table2(&scene, &fit, threads);

    println!("Table II — average error on the Stripe 82 validation field");
    println!("== Primary: scored against the generating truth catalog ==\n");
    println!("{}", result.formatted);
    let better = rows_better(&result.celeste, &result.photo);
    println!(
        "Celeste better on {better}/12 rows (paper: 11/12, Photo ahead only on missed galaxies)\n"
    );
    println!(
        "== Secondary: the paper's §VIII protocol (truth = Photo on the {}-epoch coadd, {} sources) ==\n",
        epochs, result.truth_sources
    );
    println!("{}", result.formatted_coadd);
    println!(
        "Celeste better on {}/12 rows under the coadd protocol — the paper itself notes this\n\
         protocol's systematics 'typically favor Photo' (its reference shares single-epoch\n\
         Photo's aperture and deblending biases).",
        rows_better(&result.celeste_coadd, &result.photo_coadd)
    );
}
