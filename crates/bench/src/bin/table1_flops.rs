//! Table I reproduction: sustained FLOP rate on the 9,600-node run.
//!
//! Methodology (paper §VI-B): audit FLOPs per active-pixel visit (our
//! op-counting float stands in for Intel SDE), count visits at
//! runtime, apply the measured objective-overhead factor, and divide
//! by the cumulative component times. Calibration comes from a real
//! mini-campaign on this machine; the 9,600-node run is simulated.

use celeste_bench::{audit_flops_per_visit, measure_deriv_cost_ratio, run_calibration_campaign};
use celeste_cluster::report::table1;
use celeste_cluster::{calibrate_from_report, simulate_run, ClusterConfig};
use celeste_core::flops::OBJECTIVE_OVERHEAD_FACTOR;

fn main() {
    eprintln!("[table1] auditing FLOPs per active-pixel visit …");
    let value_flops = audit_flops_per_visit();
    let deriv_ratio = measure_deriv_cost_ratio();
    let flops_per_visit = value_flops * deriv_ratio;
    eprintln!(
        "[table1] value path: {value_flops:.0} FLOP/visit × deriv ratio {deriv_ratio:.2} \
         = {flops_per_visit:.0} FLOP/visit (paper: 32,317)"
    );

    eprintln!("[table1] running calibration campaign …");
    let report = run_calibration_campaign(0xCA11B);
    let cal = calibrate_from_report(&report, flops_per_visit);
    eprintln!(
        "[table1] calibrated: task duration mean {:.2}s, {:.2} GFLOP/s per process",
        cal.task_duration.mean(),
        cal.flops_per_proc / 1e9
    );

    // Paper §VII-D sustained-rate configuration: 9,600 nodes, 326,400
    // tasks (~2 tasks/process), KNL process teams.
    let cfg = ClusterConfig {
        nodes: 9600,
        processes_per_node: 17,
        threads_per_process: 8,
        calibration_threads: 2,
        ..Default::default()
    };
    let result = simulate_run(&cal, &cfg, 326_400, 96, false);
    println!("{}", table1(&result, OBJECTIVE_OVERHEAD_FACTOR));
    let rates = result.flop_rates(OBJECTIVE_OVERHEAD_FACTOR);
    println!(
        "shape check: rate ratios 1 : {:.2} : {:.2}   (paper 693.69/413.19/211.94 → 1 : 0.60 : 0.31)",
        rates[1] / rates[0],
        rates[2] / rates[0]
    );
    println!(
        "run completed {} tasks in {:.1} virtual minutes (paper: ~7 minutes)",
        result.tasks,
        result.makespan / 60.0
    );
}
