//! Bvn-kernel probe: per-route chunk histogram, per-route timing, and
//! a dispatched-vs-portable parity check on a realistic prepared
//! galaxy + star. Timings are informational (not a benchmark of
//! record); the parity check is a gate — any mismatch beyond 1e-12
//! exits nonzero, so CI can run this as a smoke test.

use celeste_core::bvn::{GalaxyGeo, GeoEval, PreparedGalaxy, PreparedStar, RouteCounts};
use celeste_survey::psf::Psf;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

fn time_ns<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    for _ in 0..reps / 4 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64 * 1e9);
    }
    best
}

/// Pixels bucketed by the route their screening chunks take, so each
/// route's cost is timed over pixels that actually exercise it.
struct RouteBuckets {
    /// Every chunk skipped (far wings).
    all_skip: Vec<(f64, f64)>,
    /// At least one full/half batch chunk (core pixels).
    batch: Vec<(f64, f64)>,
    /// At least one masked chunk, none batched (boundary ring).
    masked: Vec<(f64, f64)>,
    /// Survivors but neither batch nor masked chunks (scalar stream).
    scalar: Vec<(f64, f64)>,
}

fn bucket(pts: &[(f64, f64)], counts_of: impl Fn(f64, f64) -> RouteCounts) -> RouteBuckets {
    let mut b = RouteBuckets {
        all_skip: Vec::new(),
        batch: Vec::new(),
        masked: Vec::new(),
        scalar: Vec::new(),
    };
    for &(x, y) in pts {
        let c = counts_of(x, y);
        if c.batch > 0 {
            b.batch.push((x, y));
        } else if c.masked > 0 {
            b.masked.push((x, y));
        } else if c.scalar > 0 {
            b.scalar.push((x, y));
        } else {
            b.all_skip.push((x, y));
        }
    }
    b
}

fn report_route(label: &str, pts: &[(f64, f64)], eval: impl FnMut() -> f64) {
    if pts.is_empty() {
        println!("  {label:<9}: {:>5} px (route not exercised)", 0);
        return;
    }
    let reps = 2000;
    let t = time_ns(reps, eval) / pts.len() as f64;
    println!("  {label:<9}: {:>5} px  {t:8.2} ns/px", pts.len());
}

/// Worst relative error between two evaluations, each block (value /
/// gradient / Hessian) normalized by the reference block's own
/// magnitude — mirrors the parity proptests' scaling, so a tiny value
/// next to a large Hessian entry is not misread as a huge error.
fn worst_rel_err(a: &GeoEval, r: &GeoEval) -> f64 {
    let gscale = 1.0 + r.grad.iter().fold(0.0_f64, |m, g| m.max(g.abs()));
    let hscale = 1.0 + r.hess.iter().flatten().fold(0.0_f64, |m, h| m.max(h.abs()));
    let mut worst = (a.val - r.val).abs() / (1.0 + r.val.abs());
    for i in 0..a.grad.len() {
        worst = worst.max((a.grad[i] - r.grad[i]).abs() / gscale);
    }
    for i in 0..a.hess.len() {
        for j in 0..a.hess.len() {
            worst = worst.max((a.hess[i][j] - r.hess[i][j]).abs() / hscale);
        }
    }
    worst
}

/// Culling tolerance both appearances are prepared at; bounds the
/// allowed deviation from the zero-tolerance reference kernel.
const CULL_TOL: f64 = 1e-9;

fn main() -> ExitCode {
    let jac = [[0.7, 0.04], [-0.02, 0.69]];
    let psf = Psf::core_halo(1.3);
    let geo = GalaxyGeo {
        fd_logit: 0.3,
        axis_logit: 0.5,
        angle: 0.8,
        ln_radius: 0.4,
    };
    let mut gal = PreparedGalaxy::default();
    gal.prepare(&psf, &geo, [10.0, 12.0], [0.1, -0.2], &jac, CULL_TOL);
    let mut star = PreparedStar::default();
    star.prepare(&psf, [10.0, 12.0], [0.1, -0.2], &jac, CULL_TOL);

    // A dense grid spanning core, boundary ring, and wings, so every
    // route (skip / batch / masked / scalar) is represented.
    let pts: Vec<(f64, f64)> = (0..32)
        .flat_map(|i| {
            (0..32).map(move |j| {
                (
                    10.0 + (i as f64 - 16.0) * 0.9,
                    12.0 + (j as f64 - 16.0) * 0.9,
                )
            })
        })
        .collect();

    // --- Chunk-route histogram (dispatched derivative routing) -----
    let mut gal_routes = RouteCounts::default();
    let mut star_routes = RouteCounts::default();
    for &(x, y) in &pts {
        gal_routes.add(&gal.route_counts(x, y));
        star_routes.add(&star.route_counts(x, y));
    }
    for (name, c) in [("galaxy", &gal_routes), ("star", &star_routes)] {
        let total = c.total().max(1);
        println!(
            "{name} chunk routes over {} px: skip={} batch={} masked={} scalar={} \
             ({:.1}% / {:.1}% / {:.1}% / {:.1}%)",
            pts.len(),
            c.skip,
            c.batch,
            c.masked,
            c.scalar,
            100.0 * c.skip as f64 / total as f64,
            100.0 * c.batch as f64 / total as f64,
            100.0 * c.masked as f64 / total as f64,
            100.0 * c.scalar as f64 / total as f64,
        );
    }

    // --- Per-route timing (galaxy derivative kernel) ---------------
    println!("galaxy deriv, per route bucket:");
    let buckets = bucket(&pts, |x, y| gal.route_counts(x, y));
    for (label, bpts) in [
        ("skip", &buckets.all_skip),
        ("batch", &buckets.batch),
        ("masked", &buckets.masked),
        ("scalar", &buckets.scalar),
    ] {
        report_route(label, bpts, || {
            bpts.iter().map(|&(x, y)| gal.eval(x, y).val).sum::<f64>()
        });
    }

    // --- Headline dispatched vs portable timings -------------------
    let reps = 2000;
    let n = pts.len() as f64;
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| gal.eval_value(x, y)).sum::<f64>()
    }) / n;
    println!("gal value dispatched : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| gal.eval_value_portable(x, y))
            .sum::<f64>()
    }) / n;
    println!("gal value portable   : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| gal.eval(x, y).val).sum::<f64>()
    }) / n;
    println!("gal deriv dispatched : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| gal.eval_portable(x, y).val)
            .sum::<f64>()
    }) / n;
    println!("gal deriv portable   : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| star.eval(x, y).val).sum::<f64>()
    }) / n;
    println!("star deriv dispatched: {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| star.eval_portable(x, y).val)
            .sum::<f64>()
    }) / n;
    println!("star deriv portable  : {t:8.2} ns/px");

    // --- Parity gate: dispatched vs portable vs reference ----------
    // Dispatched vs portable share the same screening cut, so they
    // must agree to 1e-12. The zero-tolerance reference differs by
    // the documented culling bound (comps × cull_tol), gated with a
    // 10× slack so genuine kernel breakage still trips it.
    let cull_bound = 10.0 * (gal.n_comps().max(star.n_comps())) as f64 * CULL_TOL;
    let mut worst_dp = 0.0_f64;
    let mut worst_ref = 0.0_f64;
    for &(x, y) in &pts {
        for (d, p, r) in [
            (
                gal.eval(x, y),
                gal.eval_portable(x, y),
                gal.eval_reference(x, y),
            ),
            (
                star.eval(x, y),
                star.eval_portable(x, y),
                star.eval_reference(x, y),
            ),
        ] {
            worst_dp = worst_dp.max(worst_rel_err(&d, &p));
            worst_ref = worst_ref
                .max(worst_rel_err(&d, &r))
                .max(worst_rel_err(&p, &r));
        }
        let vd = (gal.eval_value(x, y) - gal.eval_value_portable(x, y)).abs()
            / (1.0 + gal.eval_value_portable(x, y).abs());
        worst_dp = worst_dp.max(vd);
    }
    println!("parity dispatched vs portable : {worst_dp:.3e} (gate 1e-12)");
    println!("parity vs frozen reference    : {worst_ref:.3e} (culling bound {cull_bound:.1e})");
    if worst_dp > 1e-12 || worst_ref > cull_bound {
        eprintln!("bvn_probe: PARITY FAILURE — kernel instantiations disagree");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
