//! Quick bvn-kernel probe: per-call cost of the dispatched vs the
//! portable instantiations of the value and derivative kernels, on a
//! realistic prepared galaxy + star. Not a benchmark of record.

use celeste_core::bvn::{GalaxyGeo, PreparedGalaxy, PreparedStar};
use celeste_survey::psf::Psf;
use std::hint::black_box;
use std::time::Instant;

fn time_ns<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    for _ in 0..reps / 4 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64 * 1e9);
    }
    best
}

fn main() {
    let jac = [[0.7, 0.04], [-0.02, 0.69]];
    let psf = Psf::core_halo(1.3);
    let geo = GalaxyGeo {
        fd_logit: 0.3,
        axis_logit: 0.5,
        angle: 0.8,
        ln_radius: 0.4,
    };
    let mut gal = PreparedGalaxy::default();
    gal.prepare(&psf, &geo, [10.0, 12.0], [0.1, -0.2], &jac, 1e-9);
    let mut star = PreparedStar::default();
    star.prepare(&psf, [10.0, 12.0], [0.1, -0.2], &jac, 1e-9);

    // A spread of pixels: near center (all survive) to wings (culled).
    let pts: Vec<(f64, f64)> = (0..64)
        .map(|i| {
            let r = 0.25 * i as f64;
            (10.0 + r * 0.7, 12.0 + r * 0.45)
        })
        .collect();

    let reps = 2000;
    let n = pts.len() as f64;
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| gal.eval_value(x, y)).sum::<f64>()
    }) / n;
    println!("gal value dispatched : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| gal.eval_value_portable(x, y))
            .sum::<f64>()
    }) / n;
    println!("gal value portable   : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| star.eval_value(x, y)).sum::<f64>()
    }) / n;
    println!("star value dispatched: {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| star.eval_value_portable(x, y))
            .sum::<f64>()
    }) / n;
    println!("star value portable  : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| gal.eval(x, y).val).sum::<f64>()
    }) / n;
    println!("gal deriv dispatched : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| gal.eval_portable(x, y).val)
            .sum::<f64>()
    }) / n;
    println!("gal deriv portable   : {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter().map(|&(x, y)| star.eval(x, y).val).sum::<f64>()
    }) / n;
    println!("star deriv dispatched: {t:8.2} ns/px");
    let t = time_ns(reps, || {
        pts.iter()
            .map(|&(x, y)| star.eval_portable(x, y).val)
            .sum::<f64>()
    }) / n;
    println!("star deriv portable  : {t:8.2} ns/px");
}
