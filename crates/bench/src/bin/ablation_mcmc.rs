//! Ablation: variational inference vs MCMC (paper §II).
//!
//! "In practice, the resulting optimization problem is often orders of
//! magnitude faster to solve compared to MCMC approaches." Both
//! methods run on the same 44-parameter objective surface for the same
//! sources; the cost measure is objective evaluations (and wall time)
//! until each method localizes the optimum region.

use celeste_core::mcmc::{metropolis, McmcConfig};
use celeste_core::newton::Objective;
use celeste_core::{ModelPriors, SourceParams};
use celeste_survey::Priors;
use std::time::Instant;

fn main() {
    let scene = celeste_bench::stripe82_scene(1, 25_000.0, 0x3C3C);
    let refs: Vec<&celeste_survey::Image> = scene.single_run.iter().collect();
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = celeste_core::FitConfig::default();

    let mut entries = scene.truth.entries.clone();
    entries.sort_by(|a, b| b.flux_r_nmgy.partial_cmp(&a.flux_r_nmgy).unwrap());
    let n_probes = celeste_bench::scaled(3, 2);

    println!("Variational (Newton TR) vs MCMC (adaptive Metropolis) on the same objective\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "source", "VI evals", "VI (s)", "MCMC evals", "MCMC (s)", "objective gap"
    );
    for e in entries.iter().take(n_probes) {
        let sp = SourceParams::init_from_entry(e);
        let problem = celeste_core::SourceProblem::build(&sp, &refs, &[], &priors, &cfg);
        if problem.blocks.is_empty() {
            continue;
        }
        // VI: Newton trust region.
        let mut x = sp.params.to_vec();
        let t0 = Instant::now();
        let stats = celeste_core::maximize(&problem, &mut x, &cfg.newton);
        let t_vi = t0.elapsed().as_secs_f64();
        let vi_evals = stats.full_evals + stats.value_evals;

        // MCMC on the same surface, budgeted at ~100× VI's evaluations
        // (still far short of mixing a 44-dim chain).
        let mcmc_cfg = McmcConfig {
            samples: (vi_evals * 100).max(2000),
            burn_in: (vi_evals * 25).max(500),
            ..Default::default()
        };
        let t1 = Instant::now();
        let r = metropolis(|p| problem.value(p), &sp.params, &mcmc_cfg, 0xC4A1);
        let t_mcmc = t1.elapsed().as_secs_f64();

        println!(
            "{:>8} {:>12} {:>12.3} {:>12} {:>12.3} {:>14.3}",
            e.id,
            vi_evals,
            t_vi,
            r.evaluations,
            t_mcmc,
            stats.value - r.map_value
        );
    }
    println!(
        "\nVI converges in tens of objective evaluations; the Metropolis chain, given 100×\n\
         the budget, still trails the VI optimum (positive gap) — the paper's case for\n\
         variational inference at survey scale (§II)."
    );
}
