//! §VII-D reproduction: the performance run.
//!
//! "We prepared a specialized configuration … processes synchronize
//! after loading images, prior to the optimization step. We then
//! measure FLOPS … at one-minute intervals." 9,568 nodes × 17
//! processes × 8 threads = 1,301,248 threads; the paper reports a
//! 1.54 PFLOP/s peak over a ~10-minute optimization window.

use celeste_bench::{audit_flops_per_visit, measure_deriv_cost_ratio, run_calibration_campaign};
use celeste_cluster::{calibrate_from_report, simulate_run, ClusterConfig};
use celeste_core::flops::OBJECTIVE_OVERHEAD_FACTOR;

fn main() {
    eprintln!("[perf] calibrating from a real mini-campaign …");
    let flops_per_visit = audit_flops_per_visit() * measure_deriv_cost_ratio();
    let cal = calibrate_from_report(&run_calibration_campaign(0x9EEF), flops_per_visit);

    let cfg = ClusterConfig {
        nodes: 9568,
        ..Default::default()
    };
    let threads = cfg.nodes * cfg.processes_per_node * cfg.threads_per_process;
    // Production tasks jointly optimize ~500 sources (paper §IV-D);
    // the calibration campaign's tasks hold ~40. Scale durations to
    // production size so the run fills the paper's ~10-minute window.
    let mut cal = cal;
    cal.task_duration.ln_mu += (500.0_f64 / 40.0).ln();
    let speedup = cfg.threads_per_process as f64 / cfg.calibration_threads as f64;
    let effective_task_s = cal.task_duration.mean() / speedup;
    let tasks_per_proc = (600.0 / effective_task_s).ceil().max(2.0) as usize;
    let total_tasks = cfg.nodes * cfg.processes_per_node * tasks_per_proc;
    let r = simulate_run(&cal, &cfg, total_tasks, 0x154, true);

    println!(
        "Performance run: {} nodes, {} processes, {} threads (paper: 9,568 / 162,656 / 1,303,832)\n",
        cfg.nodes,
        r.processes,
        threads
    );
    println!("FLOP rate per one-minute interval:");
    for (i, f) in r.interval_flops.iter().enumerate() {
        let rate = f * OBJECTIVE_OVERHEAD_FACTOR / r.interval_s;
        println!(
            "  minute {:>3}: {:>8.3} PFLOP/s  {}",
            i + 1,
            rate / 1e15,
            "#".repeat(((rate / 1e15) * 20.0).min(80.0) as usize)
        );
    }
    let peak = r.peak_rate(OBJECTIVE_OVERHEAD_FACTOR);
    println!("\npeak: {:.3} PFLOP/s (paper: 1.54 PFLOP/s)", peak / 1e15);
    println!(
        "note: simulated processes run at this machine's measured FLOP rate; the paper's\n\
         KNL processes sustained ~9.5 GFLOP/s each (1.54 PF / 162,656 processes)."
    );
    println!(
        "window: {:.1} virtual minutes, {} tasks",
        r.makespan / 60.0,
        r.tasks
    );
}
