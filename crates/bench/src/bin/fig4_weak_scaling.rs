//! Figure 4 reproduction: weak scaling, 1 → 8,192 nodes.
//!
//! 68 tasks per node (4 per process) at every scale; runtime broken
//! into the paper's four components. Expected shape: task processing
//! and image loading flat, load imbalance growing to dominance past
//! ~32 nodes (an artifact of only 4 tasks/process, as the paper
//! discusses), total runtime growth ≈ 1.9× from 1 to 8,192 nodes.

use celeste_bench::{audit_flops_per_visit, measure_deriv_cost_ratio, run_calibration_campaign};
use celeste_cluster::report::{components_csv, components_table, stacked_chart};
use celeste_cluster::{calibrate_from_report, simulate_run, ClusterConfig};

fn main() {
    eprintln!("[fig4] calibrating from a real mini-campaign …");
    let flops_per_visit = audit_flops_per_visit() * measure_deriv_cost_ratio();
    let cal = calibrate_from_report(&run_calibration_campaign(0xF164), flops_per_visit);

    let mut rows = Vec::new();
    let mut nodes = 1usize;
    while nodes <= 8192 {
        let cfg = ClusterConfig {
            nodes,
            ..Default::default()
        };
        let tasks = nodes * 68; // 4 per process × 17 processes
        let r = simulate_run(&cal, &cfg, tasks, 4242 + nodes as u64, false);
        rows.push((nodes.to_string(), r.components));
        nodes *= 2;
    }

    println!("Figure 4 — weak scaling (68 tasks/node at every scale)\n");
    println!("{}", components_table(&rows));
    println!("{}", stacked_chart(&rows, 60));
    println!("CSV:\n{}", components_csv(&rows));

    let first = rows.first().expect("rows").1.total();
    let last = rows.last().expect("rows").1.total();
    println!(
        "runtime growth 1 → 8192 nodes: {:.2}× (paper: 1.9×)",
        last / first
    );
}
