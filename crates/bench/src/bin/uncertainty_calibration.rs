//! Posterior-uncertainty calibration — the paper's §VIII claim that
//! Celeste offers "a principled measure of the quality of inference
//! for each light source", with "no such analogue for Photo".
//!
//! Protocol: fit the same source under many independent noise
//! realizations, form the z-scores `(estimate − truth) / reported sd`,
//! and check empirical coverage of the nominal ±1σ / ±2σ intervals.
//! Calibrated posteriors give ≈ 68% / 95%.

use celeste_core::{fit_source, FitConfig, ModelPriors, SourceParams, SourceProblem};
use celeste_survey::bands::Band;
use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::psf::Psf;
use celeste_survey::render::render_observed;
use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
use celeste_survey::wcs::Wcs;
use celeste_survey::{Image, Priors};

fn main() {
    let truth = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.01, 0.01),
        source_type: SourceType::Star,
        flux_r_nmgy: 8.0,
        colors: [0.5, 0.3, 0.2, 0.1],
        shape: GalaxyShape::round_disk(1.0),
    };
    let priors = ModelPriors::new(Priors::sdss_default());
    let cfg = FitConfig::default();
    let reps = celeste_bench::scaled(60, 20);

    let mut z_flux = Vec::new();
    let mut z_color = Vec::new();
    for seed in 0..reps as u64 {
        let images: Vec<Image> = Band::ALL
            .iter()
            .map(|&band| {
                let rect = SkyRect::new(0.0, 0.02, 0.0, 0.02);
                let mut img = Image::blank(
                    FieldId {
                        run: 1,
                        camcol: 1,
                        field: 0,
                    },
                    band,
                    Wcs::for_rect(&rect, 64, 64),
                    64,
                    64,
                    150.0,
                    200.0,
                    Psf::core_halo(1.3),
                );
                render_observed(
                    &Catalog::new(vec![truth.clone()]),
                    &mut img,
                    seed * 7 + band.index() as u64,
                );
                img
            })
            .collect();
        let refs: Vec<&Image> = images.iter().collect();
        let mut sp = SourceParams::init_from_entry(&truth);
        let problem = SourceProblem::build(&sp, &refs, &[], &priors, &cfg);
        fit_source(&mut sp, &problem, &cfg);
        let unc = sp.uncertainty();
        let e = sp.to_entry();
        // Flux z-score in log space (the posterior is log-normal).
        let ln_sd = (unc.flux_sd_nmgy / e.flux_r_nmgy).max(1e-6);
        z_flux.push((e.flux_r_nmgy.ln() - truth.flux_r_nmgy.ln()) / ln_sd);
        for i in 0..4 {
            z_color.push((e.colors[i] - truth.colors[i]) / unc.color_sd[i].max(1e-6));
        }
    }

    let report = |name: &str, z: &[f64]| {
        let n = z.len() as f64;
        let within = |k: f64| z.iter().filter(|v| v.abs() <= k).count() as f64 / n * 100.0;
        let mean = z.iter().sum::<f64>() / n;
        let sd = (z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)).sqrt();
        println!(
            "{name:<10} n={:>4}  z mean {:>6.2}  z sd {:>5.2}  |z|≤1: {:>5.1}% (nominal 68%)  |z|≤2: {:>5.1}% (nominal 95%)",
            z.len(),
            mean,
            sd,
            within(1.0),
            within(2.0)
        );
    };
    println!(
        "Posterior calibration over {reps} independent noise realizations of one 8-nmgy star:\n"
    );
    report("flux", &z_flux);
    report("colors", &z_color);
    let sd_of = |z: &[f64]| {
        let n = z.len() as f64;
        let mean = z.iter().sum::<f64>() / n;
        (z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    println!(
        "\nA z sd above 1 means the posterior understates the true scatter by that factor\n\
         (measured here: flux {:.1}×, colors {:.1}×). Mean-field variational posteriors are\n\
         known to underestimate variance; the same holds for the original Celeste. The\n\
         ordering information survives — which is what the paper's §VIII uses uncertainty\n\
         for (\"Celeste's posterior uncertainty reflects the ambiguity\").",
        sd_of(&z_flux),
        sd_of(&z_color)
    );
}
