//! §VII-B reproduction: the threads × processes sweep.
//!
//! The paper empirically lands on 8 threads × 17 processes per KNL
//! node. On this machine we sweep (worker threads per node) ×
//! (node processes) over a fixed workload and report throughput
//! (sources optimized per second), normalized to the best cell.

use celeste_core::{FitConfig, ModelPriors, SourceParams};
use celeste_sched::process_region;
use celeste_survey::Priors;
use std::time::Instant;

fn main() {
    let scene = celeste_bench::stripe82_scene(1, celeste_bench::scale() * 25_000.0, 0x7B);
    let refs: Vec<&celeste_survey::Image> = scene.single_run.iter().collect();
    let priors = ModelPriors::new(Priors::sdss_default());
    let fit = FitConfig {
        bca_passes: 1,
        newton: celeste_core::NewtonConfig {
            max_iters: 10,
            ..Default::default()
        },
        ..Default::default()
    };

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let thread_options: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= host_threads)
        .collect();

    println!(
        "Node-configuration sweep (host has {host_threads} hardware threads; paper: 8 threads × 17 processes)\n"
    );
    println!(
        "{:>16} {:>14} {:>16}",
        "worker threads", "sources/s", "relative"
    );
    let mut results = Vec::new();
    for &threads in &thread_options {
        let mut sources: Vec<SourceParams> = scene
            .truth
            .entries
            .iter()
            .map(SourceParams::init_from_entry)
            .collect();
        let t0 = Instant::now();
        let stats = process_region(&mut sources, &refs, &[], &priors, &fit, threads, 0xB0B);
        let dt = t0.elapsed().as_secs_f64();
        results.push((threads, stats.fits as f64 / dt));
    }
    let best = results.iter().map(|&(_, r)| r).fold(0.0_f64, f64::max);
    for (threads, rate) in &results {
        println!(
            "{:>16} {:>14.2} {:>15.0}%",
            threads,
            rate,
            100.0 * rate / best
        );
    }
    println!(
        "\nBest configuration: {} worker threads on this host.",
        results
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(t, _)| t)
            .unwrap_or(1)
    );
}
