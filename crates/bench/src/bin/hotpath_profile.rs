//! Hot-path profile: the benchmark of record for the Newton inner
//! loop, emitted as `BENCH_hotpath.json` so the perf trajectory is
//! tracked across PRs.
//!
//! Measures, on one Stripe-82-style scene (brightest source, all 5
//! bands):
//!
//! * ns/pixel of the value-only ELBO path (trust-region trials);
//! * ns/pixel of the derivative path, both the pre-refactor dense
//!   accumulation (`add_likelihood_dense`, the committed baseline)
//!   and the packed lower-triangle kernel (`add_likelihood_into`) —
//!   measured in the same run, same scene, same build;
//! * full source fits per second through the workspace-reusing path
//!   (`fit_source_with`), problem assembly included;
//! * evaluation-workspace builds per fit (1 = built once, reused for
//!   every iteration and trial, as designed);
//! * region-level fits/sec through the Cyclades pool on the
//!   `celeste-par` executor, at 1 thread and at N =
//!   `CELESTE_THREADS` (default: available cores), plus their ratio.
//!   The scaling gate (≥ 2× at N threads) is enforced only when the
//!   machine actually has ≥ 4 cores — a 1-core container can only
//!   ever measure 1.0× and 2–3 cores cannot reach 2× after overhead.
//!
//! The emitted JSON records `kernel_dispatch` (`fma`/`scalar`, from
//! [`celeste_linalg::fused::kernel_isa`]) so committed numbers from
//! different machines are comparable; the packed/dense gate is 2.6×
//! under FMA dispatch and 1.8× on the portable instantiation (which
//! `CELESTE_FORCE_SCALAR=1` selects explicitly).
//!
//! Usage: `cargo run --release --bin hotpath_profile [out.json]`

use celeste_core::bvn::{PreparedGalaxy, PreparedStar, RouteCounts};
use celeste_core::likelihood::{
    add_likelihood_dense, add_likelihood_into, galaxy_geo, likelihood_value_into, LikScratch,
};
use celeste_core::newton::workspace_builds;
use celeste_core::params::ids;
use celeste_core::{BuildScratch, FitConfig, ModelPriors, SourceParams, NUM_PARAMS};
use celeste_linalg::Mat;
use celeste_survey::{Image, Priors};
use std::hint::black_box;
use std::time::Instant;

/// Median of timed batch runs of `f`, in seconds per call.
fn time_per_call<O>(reps_per_batch: usize, batches: usize, mut f: impl FnMut() -> O) -> f64 {
    // Warmup.
    for _ in 0..reps_per_batch.max(1) {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..batches.max(3))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..reps_per_batch {
                black_box(f());
            }
            t.elapsed().as_secs_f64() / reps_per_batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());

    let scene = celeste_bench::stripe82_scene(1, 25_000.0, 0xBE9C);
    let priors = ModelPriors::new(Priors::sdss_default());
    let refs: Vec<&Image> = scene.single_run.iter().collect();
    // Culling-tolerance override for perf experiments
    // (CELESTE_CULL_TOL=0 measures the exact kernel).
    let cull_tol = std::env::var("CELESTE_CULL_TOL")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(FitConfig::default().cull_tol);
    let entry = scene
        .truth
        .entries
        .iter()
        .max_by(|a, b| a.flux_r_nmgy.partial_cmp(&b.flux_r_nmgy).unwrap())
        .expect("scene nonempty");
    let sp = SourceParams::init_from_entry(entry);
    let cfg = FitConfig {
        cull_tol,
        ..FitConfig::default()
    };
    let problem = celeste_core::SourceProblem::build(&sp, &refs, &[], &priors, &cfg);
    let pixels: usize = problem.blocks.iter().map(|b| b.pixels.len()).sum();
    assert!(pixels > 0, "profile scene has no active pixels");
    eprintln!(
        "profiling over {pixels} active pixels, {} image blocks",
        problem.blocks.len()
    );

    // Chunk-route histogram over the profiled scene: replays the
    // dispatched derivative kernel's routing (skip / batch / masked /
    // scalar) for both appearances at every active pixel, so a
    // routing regression — e.g. boundary chunks falling off the
    // masked route back to scalar — is visible in the committed
    // record, not just in aggregate ns/px.
    let mut routes = RouteCounts::default();
    {
        let u = [sp.params[ids::U[0]], sp.params[ids::U[1]]];
        let geo = galaxy_geo(&sp.params);
        let mut star = PreparedStar::default();
        let mut gal = PreparedGalaxy::default();
        for block in &problem.blocks {
            star.prepare(&block.psf, block.center0, u, &block.jac, problem.cull_tol);
            gal.prepare(
                &block.psf,
                &geo,
                block.center0,
                u,
                &block.jac,
                problem.cull_tol,
            );
            for px in &block.pixels {
                routes.add(&star.route_counts(px.px, px.py));
                routes.add(&gal.route_counts(px.px, px.py));
            }
        }
    }

    // Value-only path (workspace form, as the optimizer runs it,
    // culling included).
    let mut lik_scratch = LikScratch::default();
    let value_s = time_per_call(40, 9, || {
        likelihood_value_into(
            &sp.params,
            &problem.blocks,
            &mut lik_scratch,
            problem.cull_tol,
        )
    });

    // Derivative path, dense baseline (pre-refactor accumulation).
    let dense_s = time_per_call(20, 9, || {
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood_dense(&sp.params, &problem.blocks, &mut grad, &mut hess)
    });

    // Derivative path, packed triangle + workspace reuse.
    let mut grad = [0.0; NUM_PARAMS];
    let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
    let packed_s = time_per_call(20, 9, || {
        grad.fill(0.0);
        hess.fill_zero();
        add_likelihood_into(
            &sp.params,
            &problem.blocks,
            &mut grad,
            &mut hess,
            &mut lik_scratch,
            problem.cull_tol,
        )
    });

    // Full fits through the persistent-workspace path.
    let mut ws = celeste_core::source_workspace();
    let mut build = BuildScratch::default();
    let ws_before = workspace_builds();
    let mut fits = 0u64;
    let fit_s = time_per_call(4, 7, || {
        let mut s = SourceParams::init_from_entry(entry);
        let p = celeste_core::SourceProblem::build_with(&s, &refs, &[], &priors, &cfg, &mut build);
        fits += 1;
        celeste_core::fit_source_with(&mut s, &p, &cfg, &mut ws)
    });
    let ws_builds_per_fit = (workspace_builds() - ws_before) as f64 / fits.max(1) as f64;

    // Region-level throughput through the Cyclades pool: every truth
    // source in the scene jointly optimized for one BCA pass, at one
    // executor thread and at the configured width.
    let region_fit = FitConfig {
        bca_passes: 1,
        cull_tol,
        ..FitConfig::default()
    };
    let region_threads = celeste_par::configured_threads();
    let region_fits_per_sec = |pool_width: usize| -> f64 {
        let pool = celeste_par::ThreadPool::new(pool_width);
        let init: Vec<SourceParams> = scene
            .truth
            .entries
            .iter()
            .map(SourceParams::init_from_entry)
            .collect();
        pool.install(|| {
            // One warmup pass builds each worker's thread-local
            // evaluation workspace.
            let mut warm = init.clone();
            celeste_sched::process_region(
                &mut warm,
                &refs,
                &[],
                &priors,
                &region_fit,
                pool_width,
                0x5EED,
            );
            let mut best = 0.0_f64;
            for _ in 0..3 {
                let mut sources = init.clone();
                let t = Instant::now();
                let stats = celeste_sched::process_region(
                    &mut sources,
                    &refs,
                    &[],
                    &priors,
                    &region_fit,
                    pool_width,
                    0x5EED,
                );
                best = best.max(stats.fits as f64 / t.elapsed().as_secs_f64());
            }
            best
        })
    };
    let region_1t = region_fits_per_sec(1);
    let region_nt = if region_threads > 1 {
        region_fits_per_sec(region_threads)
    } else {
        region_1t
    };
    let region_scaling = region_nt / region_1t;

    let ns = 1e9;
    let px = pixels as f64;
    let value_ns_px = value_s * ns / px;
    let dense_ns_px = dense_s * ns / px;
    let packed_ns_px = packed_s * ns / px;
    let speedup = dense_s / packed_s;
    // Which kernel instantiation this process dispatched: committed
    // numbers are only comparable across machines when it's recorded
    // (a scalar-path run silently looks like a regression against an
    // FMA-path baseline).
    let kernel_dispatch = celeste_linalg::fused::kernel_isa();

    // Benchmark-of-record sanity check: the derivative/value ratio is
    // a pure shape property of the kernels (scene- and machine-rate
    // independent to first order), so a large drift flags a silent
    // value- or derivative-path regression even when absolute timings
    // moved with the hardware. Warn, don't fail: the committed record
    // may be from a different dispatch tier.
    let new_ratio = packed_s / value_s;
    if let Ok(prev) = std::fs::read_to_string(&out_path) {
        if let Some(prev_ratio) = prev
            .lines()
            .find(|l| l.contains("\"deriv_over_value_ratio\""))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
        {
            let drift = (new_ratio / prev_ratio - 1.0).abs();
            if drift > 0.20 {
                eprintln!(
                    "WARNING: deriv_over_value_ratio {new_ratio:.3} drifts {:.0}% from the \
                     benchmark of record ({prev_ratio:.3}) — check for a silent value- or \
                     derivative-path regression",
                    drift * 100.0
                );
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"scene\": \"stripe82 brightest source, 5 bands\",\n  \"kernel_dispatch\": \"{kernel_dispatch}\",\n  \"active_pixels\": {pixels},\n  \"value_ns_per_pixel\": {value_ns_px:.2},\n  \"deriv_dense_ns_per_pixel\": {dense_ns_px:.2},\n  \"deriv_packed_ns_per_pixel\": {packed_ns_px:.2},\n  \"deriv_speedup_vs_dense\": {speedup:.3},\n  \"deriv_over_value_ratio\": {new_ratio:.3},\n  \"chunk_routes\": {{ \"skip\": {}, \"batch\": {}, \"masked\": {}, \"scalar\": {} }},\n  \"fit_single_source_ms\": {:.3},\n  \"fits_per_sec\": {:.2},\n  \"workspace_builds_per_fit\": {ws_builds_per_fit:.3},\n  \"region_threads\": {region_threads},\n  \"region_fits_per_sec_1t\": {region_1t:.2},\n  \"region_fits_per_sec_nt\": {region_nt:.2},\n  \"region_scaling\": {region_scaling:.3}\n}}\n",
        routes.skip,
        routes.batch,
        routes.masked,
        routes.scalar,
        fit_s * 1e3,
        1.0 / fit_s,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    // Gate raised 1.5x → 1.8x (PR 2: culled, lane-batched kernel),
    // 1.8x → 2.6x (PR 4: component-batched SIMD assembly + factored
    // block sums), 2.6x → 2.8x (PR 8: tiled rank-2 triangle folds +
    // masked-SoA survivor batching; only enforced on the FMA
    // instantiation — the portable one has no SIMD assembly to gate).
    let gate = if kernel_dispatch == "fma" { 2.8 } else { 1.8 };
    if speedup < gate {
        eprintln!(
            "WARNING: packed-vs-dense speedup {speedup:.3} ({kernel_dispatch} dispatch) \
             is below the {gate}x acceptance bar"
        );
        std::process::exit(2);
    }
    // Region-scaling gate: only meaningful with real cores to scale
    // across. ≥ 4 cores must reach 2x; fewer cores are reported but
    // not gated (1 core is structurally 1.0x).
    if region_threads >= 4 && region_scaling < 2.0 {
        eprintln!(
            "WARNING: region-level scaling {region_scaling:.3}x at {region_threads} threads \
             is below the 2x acceptance bar"
        );
        std::process::exit(2);
    }
}
