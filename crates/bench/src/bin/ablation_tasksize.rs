//! Ablation: the task-size trade-off of §IV-A.
//!
//! "Smaller tasks allow for more effective load balance, but the same
//! images must be loaded repeatedly. Larger tasks reduce the I/O
//! burden, but simultaneously increase the load imbalance." We sweep
//! the partitioner's target work and report, per configuration, the
//! number of tasks, redundant image loads, and simulated load
//! imbalance at fixed cluster size.

use celeste_cluster::{default_calibration, simulate_run, ClusterConfig};
use celeste_sched::{partition_sky, PartitionConfig};
use celeste_survey::skygeom::GeometryConfig;
use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};

fn main() {
    let survey = SyntheticSurvey::generate(SurveyConfig {
        geometry: GeometryConfig {
            n_stripes: 3,
            fields_per_stripe: 4,
            deep_stripe: None,
            epochs_per_stripe: 2,
            ..GeometryConfig::default()
        },
        source_density_per_sq_deg: 8000.0,
        ..SurveyConfig::default()
    });
    let cal = default_calibration();

    println!("Task-size trade-off (fixed 32-node simulated cluster)\n");
    println!(
        "{:>12} {:>8} {:>18} {:>16} {:>14}",
        "target work", "tasks", "image loads/task", "imbalance (s)", "total (s)"
    );
    for target in [500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0] {
        let tasks = partition_sky(
            &survey.truth,
            &survey.geometry.footprint,
            &PartitionConfig {
                target_work: target,
                ..Default::default()
            },
        );
        let stage1: Vec<_> = tasks.iter().filter(|t| t.stage == 0).collect();
        // Redundant loading: total (task, image) pairs per task.
        let loads: usize = stage1
            .iter()
            .map(|t| {
                survey
                    .geometry
                    .fields_intersecting(&t.rect.padded(20.0 / 3600.0))
                    .len()
                    * 5
            })
            .sum();
        let loads_per_task = loads as f64 / stage1.len().max(1) as f64;
        // Larger tasks = proportionally longer durations in the sim.
        let mut scaled_cal = cal;
        scaled_cal.task_duration.ln_mu += (target / 2000.0).ln();
        let sim = simulate_run(
            &scaled_cal,
            &ClusterConfig {
                nodes: 32,
                ..Default::default()
            },
            stage1.len(),
            7,
            false,
        );
        println!(
            "{:>12.0} {:>8} {:>18.1} {:>16.2} {:>14.2}",
            target,
            stage1.len(),
            loads_per_task,
            sim.components.load_imbalance,
            sim.components.total()
        );
    }
    println!(
        "\nExpected shape: image loads/task falls with larger tasks while load imbalance rises."
    );
}
