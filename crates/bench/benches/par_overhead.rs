//! Fork-join overhead microbenchmarks: what does `celeste-par` cost
//! when the workload is too small to benefit?
//!
//! These benches document the executor's sequential-cutoff policy
//! (`celeste_par::iter::SPLITS_PER_THREAD` /
//! `celeste_par::iter::MIN_PARALLEL_LEN`): drivers split a producer
//! into at most `threads × SPLITS_PER_THREAD` leaves and never fork
//! at all below `MIN_PARALLEL_LEN` items or on a one-thread pool, so
//! tiny inputs pay only the closure-dispatch cost of the serial
//! path. Compare the `serial/*` and `par/*` rows at each size: at 64
//! elements the two must be within noise of each other (the cutoff
//! collapses to a sequential sweep on narrow pools, and a handful of
//! leaf jobs otherwise), while the large sizes amortize the ~µs-scale
//! fork cost measured by `join/noop`.

use celeste_par::iter::{ParallelIterator, ParallelSliceMut};
use celeste_par::{join, ThreadPool};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// The work applied per element: cheap enough that scheduling
/// overhead, not compute, dominates small inputs.
#[inline]
fn bump(x: &mut u64) {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
}

fn bench_join_overhead(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    let mut g = c.benchmark_group("join");
    // The external → pool handoff (inject + condvar wake + result
    // latch). This is paid once per parallel *entry point*, never per
    // split, and is why drivers go fully sequential on tiny inputs.
    g.bench_function("install_handoff", |b| {
        b.iter(|| pool.install(|| black_box(1u64)))
    });
    // A worker-side fork-join pair: the true per-split cost (stack
    // job push/pop, usually popped back unstolen).
    g.bench_function("worker_noop_pair", |b| {
        pool.install(|| b.iter(|| join(|| black_box(1u64), || black_box(2u64))))
    });
    g.bench_function("serial_noop_pair", |b| {
        b.iter(|| (black_box(1u64), black_box(2u64)))
    });
    g.finish();
}

fn bench_par_chunks_cutoff(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    for size in [64usize, 4096, 262_144] {
        let mut data = vec![1u64; size];
        let name = format!("chunks_{size}");
        let mut g = c.benchmark_group(&name);
        g.throughput(Throughput::Elements(size as u64));
        g.bench_function("serial", |b| {
            b.iter(|| {
                for x in data.iter_mut() {
                    bump(x);
                }
                black_box(data[0])
            })
        });
        // Measured from inside the pool, so the rows isolate the
        // driver's split/steal cost from the one-off install handoff.
        g.bench_function("par", |b| {
            let data = &mut data;
            pool.install(move || {
                b.iter(|| {
                    data.par_chunks_mut(64).for_each(|chunk| {
                        for x in chunk {
                            bump(x);
                        }
                    });
                    black_box(data[0])
                })
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_join_overhead, bench_par_chunks_cutoff);
criterion_main!(benches);
