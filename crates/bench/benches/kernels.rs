//! Criterion microbenchmarks of every hot kernel.
//!
//! These are the per-kernel counterparts of the paper's §VII-A
//! profile: ELBO evaluation (value and derivative paths), the Newton
//! trust-region solve (Jacobi eigendecomposition + secular iteration),
//! Cyclades partitioning, PGAS access, image rendering and container
//! codec, and the Photo baseline.

use celeste_core::likelihood::{
    add_likelihood, add_likelihood_dense, add_likelihood_into, likelihood_value,
    likelihood_value_into, LikScratch,
};
use celeste_core::{ModelPriors, SourceParams};
use celeste_linalg::{solve_tr_subproblem, Cholesky, Mat, SymEigen};
use celeste_photo::{run_photo, PhotoConfig};
use celeste_sched::{conflict_graph, sample_batches, ParamStore};
use celeste_survey::io::{decode_image, encode_image};
use celeste_survey::render::render_expected;
use celeste_survey::{Image, Priors};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn scene() -> (celeste_bench::Stripe82Scene, ModelPriors) {
    (
        celeste_bench::stripe82_scene(1, 25_000.0, 0xBE9C),
        ModelPriors::new(Priors::sdss_default()),
    )
}

fn bench_elbo(c: &mut Criterion) {
    let (scene, priors) = scene();
    let refs: Vec<&Image> = scene.single_run.iter().collect();
    let entry = scene
        .truth
        .entries
        .iter()
        .max_by(|a, b| a.flux_r_nmgy.partial_cmp(&b.flux_r_nmgy).unwrap())
        .expect("scene nonempty");
    let sp = SourceParams::init_from_entry(entry);
    let problem = celeste_core::SourceProblem::build(
        &sp,
        &refs,
        &[],
        &priors,
        &celeste_core::FitConfig::default(),
    );
    let pixels: usize = problem.blocks.iter().map(|b| b.pixels.len()).sum();
    let mut g = c.benchmark_group("elbo");
    g.throughput(criterion::Throughput::Elements(pixels as u64));
    g.bench_function("value_only", |b| {
        b.iter(|| black_box(likelihood_value(&sp.params, &problem.blocks)))
    });
    g.bench_function("value_only_workspace", |b| {
        let mut scratch = LikScratch::default();
        b.iter(|| {
            black_box(likelihood_value_into(
                &sp.params,
                &problem.blocks,
                &mut scratch,
                problem.cull_tol,
            ))
        })
    });
    // The pre-refactor dense accumulation (baseline) vs. the packed
    // lower-triangle kernel, same scene, same run.
    g.bench_function("grad_and_hessian_dense", |b| {
        b.iter(|| {
            let mut grad = [0.0; celeste_core::NUM_PARAMS];
            let mut hess = Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
            black_box(add_likelihood_dense(
                &sp.params,
                &problem.blocks,
                &mut grad,
                &mut hess,
            ))
        })
    });
    g.bench_function("grad_and_hessian", |b| {
        b.iter(|| {
            let mut grad = [0.0; celeste_core::NUM_PARAMS];
            let mut hess = Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
            black_box(add_likelihood(
                &sp.params,
                &problem.blocks,
                &mut grad,
                &mut hess,
            ))
        })
    });
    g.bench_function("grad_and_hessian_workspace", |b| {
        let mut scratch = LikScratch::default();
        let mut grad = [0.0; celeste_core::NUM_PARAMS];
        let mut hess = Mat::zeros(celeste_core::NUM_PARAMS, celeste_core::NUM_PARAMS);
        b.iter(|| {
            grad.fill(0.0);
            hess.fill_zero();
            black_box(add_likelihood_into(
                &sp.params,
                &problem.blocks,
                &mut grad,
                &mut hess,
                &mut scratch,
                problem.cull_tol,
            ))
        })
    });
    g.finish();
}

fn bench_linalg(c: &mut Criterion) {
    // A representative 44×44 negated ELBO Hessian.
    let n = celeste_core::NUM_PARAMS;
    let b44 = Mat::from_fn(n, n, |i, j| (((i * 31 + j * 17) % 23) as f64 - 11.0) / 11.0);
    let mut h = b44.matmul(&b44.t());
    h.shift_diag(5.0);
    let grad: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0).collect();
    let mut g = c.benchmark_group("linalg44");
    g.bench_function("jacobi_eigen", |b| b.iter(|| black_box(SymEigen::new(&h))));
    g.bench_function("cholesky", |b| {
        b.iter(|| black_box(Cholesky::new(&h).unwrap()))
    });
    g.bench_function("tr_subproblem", |b| {
        b.iter(|| black_box(solve_tr_subproblem(&h, &grad, 0.5)))
    });
    g.finish();
}

fn bench_newton_fit(c: &mut Criterion) {
    let (scene, priors) = scene();
    let refs: Vec<&Image> = scene.single_run.iter().collect();
    let entry = scene
        .truth
        .entries
        .iter()
        .max_by(|a, b| a.flux_r_nmgy.partial_cmp(&b.flux_r_nmgy).unwrap())
        .expect("scene nonempty");
    let cfg = celeste_core::FitConfig::default();
    c.bench_function("fit_single_source", |b| {
        b.iter(|| {
            let mut sp = SourceParams::init_from_entry(entry);
            let problem = celeste_core::SourceProblem::build(&sp, &refs, &[], &priors, &cfg);
            black_box(celeste_core::fit_source(&mut sp, &problem, &cfg))
        })
    });
    c.bench_function("fit_single_source_workspace", |b| {
        let mut ws = celeste_core::source_workspace();
        let mut build = celeste_core::BuildScratch::default();
        b.iter(|| {
            let mut sp = SourceParams::init_from_entry(entry);
            let problem =
                celeste_core::SourceProblem::build_with(&sp, &refs, &[], &priors, &cfg, &mut build);
            black_box(celeste_core::fit_source_with(
                &mut sp, &problem, &cfg, &mut ws,
            ))
        })
    });
}

fn bench_cyclades(c: &mut Criterion) {
    let (scene, _) = scene();
    let sources: Vec<SourceParams> = scene
        .truth
        .entries
        .iter()
        .map(SourceParams::init_from_entry)
        .collect();
    let mut g = c.benchmark_group("cyclades");
    g.bench_function("conflict_graph", |b| {
        b.iter(|| black_box(conflict_graph(&sources, 6.0)))
    });
    let graph = conflict_graph(&sources, 6.0);
    g.bench_function("sample_batches", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(sample_batches(&mut rng, &graph, 8, sources.len() / 2)))
    });
    g.finish();
}

fn bench_pgas(c: &mut Criterion) {
    let (scene, _) = scene();
    let store = ParamStore::new(8);
    for e in &scene.truth.entries {
        store.insert(SourceParams::init_from_entry(e));
    }
    let ids: Vec<u64> = scene.truth.entries.iter().map(|e| e.id).collect();
    let p = [0.5; celeste_core::NUM_PARAMS];
    let mut g = c.benchmark_group("pgas");
    g.bench_function("get", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(store.get(0, ids[i]))
        })
    });
    g.bench_function("put", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(store.put(0, ids[i], &p))
        })
    });
    g.finish();
}

fn bench_survey(c: &mut Criterion) {
    let (scene, _) = scene();
    let img = &scene.single_run[2];
    let mut g = c.benchmark_group("survey");
    g.bench_function("render_expected_field", |b| {
        b.iter(|| black_box(render_expected(&scene.truth, img)))
    });
    g.bench_function("encode_image", |b| b.iter(|| black_box(encode_image(img))));
    let bytes = encode_image(img);
    g.bench_function("decode_image", |b| {
        b.iter(|| black_box(decode_image(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_photo(c: &mut Criterion) {
    let (scene, _) = scene();
    let refs: Vec<&Image> = scene.single_run.iter().collect();
    c.bench_function("photo_pipeline_field", |b| {
        b.iter(|| black_box(run_photo(&refs, &PhotoConfig::default())))
    });
}

fn bench_cluster_sim(c: &mut Criterion) {
    let cal = celeste_cluster::default_calibration();
    c.bench_function("simulate_2048_nodes", |b| {
        b.iter(|| {
            let cfg = celeste_cluster::ClusterConfig {
                nodes: 2048,
                ..Default::default()
            };
            black_box(celeste_cluster::simulate_run(&cal, &cfg, 139_264, 3, false))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_elbo, bench_linalg, bench_newton_fit, bench_cyclades,
              bench_pgas, bench_survey, bench_photo, bench_cluster_sim
}
criterion_main!(benches);
