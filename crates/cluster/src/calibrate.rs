//! Calibration of the simulator against real measured runs.

use celeste_sched::CampaignReport;

/// A log-normal duration model (fit by log-moment matching).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalModel {
    /// Mean of ln(duration seconds).
    pub ln_mu: f64,
    /// Sd of ln(duration).
    pub ln_sigma: f64,
}

impl LogNormalModel {
    /// Fit from positive samples; falls back to `fallback` when fewer
    /// than 3 usable samples exist.
    pub fn fit(samples: &[f64], fallback: LogNormalModel) -> LogNormalModel {
        let logs: Vec<f64> = samples
            .iter()
            .filter(|&&x| x > 0.0 && x.is_finite())
            .map(|x| x.ln())
            .collect();
        if logs.len() < 3 {
            return fallback;
        }
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / (n - 1.0);
        LogNormalModel {
            ln_mu: mu,
            ln_sigma: var.sqrt().max(0.02),
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.ln_mu + 0.5 * self.ln_sigma * self.ln_sigma).exp()
    }

    /// Sample with an explicit standard-normal draw (the simulator
    /// owns its RNG).
    pub fn sample_with(&self, z: f64) -> f64 {
        (self.ln_mu + self.ln_sigma * z).exp()
    }
}

/// Everything the virtual-time simulator needs from reality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Per-task processing duration on one process (its worker-thread
    /// team), seconds.
    pub task_duration: LogNormalModel,
    /// Blocking image-load time for a process's *first* task, seconds.
    pub first_load: LogNormalModel,
    /// Sustained FLOP/s of one process while task-processing
    /// (objective FLOPs only; the ×1.375-style overhead factor is
    /// applied by the reporting layer).
    pub flops_per_proc: f64,
    /// One Dtree message latency, seconds.
    pub sched_msg_latency: f64,
    /// PGAS put/get round trip, seconds.
    pub pgas_latency: f64,
    /// Per-process output-write time at job end, seconds.
    pub output_write: f64,
}

/// Defaults measured on the development machine (small campaign of
/// ~40-source tasks, 2 worker threads). Used when no fresh measurement
/// is available; the `table1`/`fig4`/`fig5` binaries re-calibrate from
/// a real run first.
pub fn default_calibration() -> Calibration {
    Calibration {
        task_duration: LogNormalModel {
            ln_mu: 0.4,
            ln_sigma: 0.28,
        },
        first_load: LogNormalModel {
            ln_mu: -2.5,
            ln_sigma: 0.2,
        },
        flops_per_proc: 2.0e9,
        sched_msg_latency: 5.0e-6,
        pgas_latency: 2.0e-6,
        output_write: 0.05,
    }
}

/// Spread caps for the fitted duration models. The paper's
/// preprocessing generates tasks "we expect to contain roughly the
/// same number of bright pixels" (§IV-A), i.e. near-equal work; our
/// calibration mini-campaign quantizes work coarsely (few sources per
/// task), which would otherwise let a handful of outliers masquerade
/// as genuine production-task spread and blow up the simulated load
/// imbalance far past anything the paper observed.
const MAX_TASK_LN_SIGMA: f64 = 0.30;
const MAX_LOAD_LN_SIGMA: f64 = 0.25;

/// Fit a calibration from a measured campaign report.
///
/// Task durations are first normalized to equal predicted work (the
/// paper's equal-work partition target), then log-moment fitted.
/// `flops_per_visit` is the audited FLOP cost of one active-pixel
/// visit (see `celeste-bench`'s counting-float audit, paper §VI-B).
pub fn calibrate_from_report(report: &CampaignReport, flops_per_visit: f64) -> Calibration {
    let fallback = default_calibration();
    let durations: Vec<f64> = if report.task_works.len() == report.task_durations.len()
        && !report.task_works.is_empty()
    {
        let mean_work = report.task_works.iter().sum::<f64>() / report.task_works.len() as f64;
        report
            .task_durations
            .iter()
            .zip(&report.task_works)
            .map(|(d, w)| d * mean_work / w.max(1e-9))
            .collect()
    } else {
        report.task_durations.clone()
    };
    let mut task_duration = LogNormalModel::fit(&durations, fallback.task_duration);
    task_duration.ln_sigma = task_duration.ln_sigma.min(MAX_TASK_LN_SIGMA);
    let mut first_load = LogNormalModel::fit(&report.image_load_durations, fallback.first_load);
    first_load.ln_sigma = first_load.ln_sigma.min(MAX_LOAD_LN_SIGMA);
    let total_task_time: f64 = report.task_durations.iter().sum();
    let flops_per_proc = if total_task_time > 0.0 {
        (report.active_pixel_visits as f64 * flops_per_visit) / total_task_time
    } else {
        fallback.flops_per_proc
    };
    Calibration {
        task_duration,
        first_load,
        flops_per_proc,
        ..fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_lognormal_moments() {
        // Samples of exp(1 + 0.5 z) on a deterministic z grid.
        let samples: Vec<f64> = (0..1000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 1000.0;
                // Inverse-normal via the logistic approximation is fine
                // for a moment check.
                let z = (u / (1.0 - u)).ln() / 1.702;
                (1.0 + 0.5 * z).exp()
            })
            .collect();
        let m = LogNormalModel::fit(&samples, default_calibration().task_duration);
        assert!((m.ln_mu - 1.0).abs() < 0.05, "mu {}", m.ln_mu);
        assert!((m.ln_sigma - 0.5).abs() < 0.1, "sigma {}", m.ln_sigma);
        // Raw fits are uncapped; the cap applies in calibrate_from_report.
    }

    #[test]
    fn fit_falls_back_on_empty() {
        let fb = default_calibration().task_duration;
        assert_eq!(LogNormalModel::fit(&[], fb), fb);
        assert_eq!(LogNormalModel::fit(&[0.0, -1.0], fb), fb);
    }

    #[test]
    fn calibrate_from_report_computes_flop_rate() {
        let report = CampaignReport {
            task_durations: vec![2.0; 10],
            image_load_durations: vec![0.1; 10],
            active_pixel_visits: 1_000_000,
            ..Default::default()
        };
        let cal = calibrate_from_report(&report, 10_000.0);
        // 1e6 visits × 1e4 flops / 20 s = 5e8 flop/s
        assert!((cal.flops_per_proc - 5.0e8).abs() < 1.0);
        assert!((cal.task_duration.mean() - 2.0).abs() < 0.2);
        assert!(cal.task_duration.ln_sigma <= MAX_TASK_LN_SIGMA + 1e-12);
    }

    #[test]
    fn model_mean_formula() {
        let m = LogNormalModel {
            ln_mu: 0.0,
            ln_sigma: 1.0,
        };
        assert!((m.mean() - (0.5_f64).exp()).abs() < 1e-12);
        assert!((m.sample_with(0.0) - 1.0).abs() < 1e-12);
        assert!(m.sample_with(1.0) > m.sample_with(-1.0));
    }
}
