//! Discrete-event simulation of the petascale campaign (DESIGN.md S11).
//!
//! The paper's headline runs use 8,192–9,600 Cori KNL nodes — hardware
//! this reproduction does not have. Following the substitution rule,
//! this crate simulates the *cluster* while everything below the task
//! level stays real: per-task compute durations and first-task image
//! load times are sampled from log-normal models **calibrated against
//! measured single-machine runs** of the actual optimizer
//! (`celeste_sched::run_campaign`), and the scheduler policy is the
//! same Dtree batch-refill logic, replayed in virtual time.
//!
//! * [`calibrate`] — fit duration models from a real `CampaignReport`
//!   (or use embedded defaults measured during development);
//! * [`sim`] — the virtual-time engine: processes pop Dtree batches,
//!   pay scheduler latency, load images through the Burst Buffer
//!   model, compute, and idle once the queue drains;
//! * [`report`] — tables and ASCII charts for the scaling figures.
//!
//! The decomposition matches §VII-C exactly: task processing, image
//! loading (first task only; later loads are prefetched), load
//! imbalance (idle before the slowest process finishes), and other
//! (scheduling + parameter/output I/O).

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod report;
pub mod sim;

pub use calibrate::{calibrate_from_report, default_calibration, Calibration, LogNormalModel};
pub use sim::{simulate_run, ClusterConfig, IoModel, SimComponents, SimResult};
