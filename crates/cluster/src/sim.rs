//! The virtual-time cluster engine.
//!
//! Processes (17 per node, 8 worker threads each — the paper's §VII-B
//! sweet spot) pop task batches from a Dtree-shaped scheduler and
//! execute them with durations drawn from the calibrated models. Time
//! is purely virtual: an 8,192-node campaign simulates in well under a
//! second, yet the per-process bookkeeping reproduces the paper's four
//! runtime components and FLOP-rate accounting.

use crate::calibrate::Calibration;
use celeste_sched::ComponentTimes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Burst Buffer / Lustre behaviour for first-task image loads.
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// `true`: I/O bandwidth is provisioned proportionally to job size
    /// (Cori allocates Burst Buffer nodes with the job), so per-process
    /// first-load time is independent of node count — this is what the
    /// paper observes ("image loading time is also constant as the
    /// number of nodes grows", §VII-C1).
    pub scaled_bandwidth: bool,
    /// When `scaled_bandwidth` is false, loads contend for a fixed
    /// aggregate pipe sized for `reference_nodes` nodes: first-load
    /// times scale by `nodes / reference_nodes`.
    pub reference_nodes: usize,
}

impl Default for IoModel {
    fn default() -> Self {
        IoModel {
            scaled_bandwidth: true,
            reference_nodes: 64,
        }
    }
}

/// Simulated machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    pub nodes: usize,
    /// Processes per node (paper: 17).
    pub processes_per_node: usize,
    /// Worker threads per process (paper: 8) — informational: the
    /// calibration is already at process-team granularity; changing
    /// this scales process speed by `threads / calibration_threads`.
    pub threads_per_process: usize,
    /// Threads the calibration machine's process team used.
    pub calibration_threads: usize,
    /// Dtree fanout (sets the scheduler-latency depth).
    pub dtree_fanout: usize,
    pub io: IoModel,
    /// Extra speed factor of a simulated process team relative to the
    /// calibration machine (e.g. KNL vs laptop core counts).
    pub process_speed_factor: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 64,
            processes_per_node: 17,
            threads_per_process: 8,
            calibration_threads: 2,
            dtree_fanout: 8,
            io: IoModel::default(),
            process_speed_factor: 1.0,
        }
    }
}

/// Alias: the simulator reports the same four components as the real
/// campaign driver.
pub type SimComponents = ComponentTimes;

/// Result of one simulated campaign.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Mean per-process component times, seconds.
    pub components: SimComponents,
    /// Wall-clock (virtual) of the whole job, seconds.
    pub makespan: f64,
    /// Objective FLOPs executed (before the overhead factor).
    pub total_flops: f64,
    /// FLOPs binned into fixed intervals (perf-run sampling, §VII-D).
    pub interval_flops: Vec<f64>,
    /// Interval width used for `interval_flops`, seconds.
    pub interval_s: f64,
    pub tasks: usize,
    pub processes: usize,
}

impl SimResult {
    /// Aggregate FLOP rate over task-processing time only, then
    /// cumulatively adding load imbalance and image loading — the three
    /// columns of Table I. `overhead_factor` is the paper's 1.375.
    pub fn flop_rates(&self, overhead_factor: f64) -> [f64; 3] {
        let f = self.total_flops * overhead_factor;
        let c = &self.components;
        let t1 = c.task_processing.max(1e-12);
        let t2 = t1 + c.load_imbalance;
        let t3 = t2 + c.image_loading;
        [f / t1, f / t2, f / t3]
    }

    /// Peak rate over the sampling intervals (§VII-D's "peak
    /// performance"), FLOP/s, including the overhead factor.
    pub fn peak_rate(&self, overhead_factor: f64) -> f64 {
        self.interval_flops
            .iter()
            .map(|f| f * overhead_factor / self.interval_s)
            .fold(0.0, f64::max)
    }
}

struct Proc {
    ready_at: f64,
    task_time: f64,
    io_time: f64,
    other_time: f64,
    tasks: usize,
}

/// Simulate a campaign of `total_tasks` tasks.
///
/// `synchronized_start = true` reproduces the §VII-D performance-run
/// configuration: processes synchronize after loading images, so FLOP
/// sampling starts from a common t = 0 of pure optimization.
pub fn simulate_run(
    cal: &Calibration,
    cfg: &ClusterConfig,
    total_tasks: usize,
    seed: u64,
    synchronized_start: bool,
) -> SimResult {
    let n_procs = (cfg.nodes * cfg.processes_per_node).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let speed = cfg.process_speed_factor
        * (cfg.threads_per_process as f64 / cfg.calibration_threads.max(1) as f64);
    let io_scale = if cfg.io.scaled_bandwidth {
        1.0
    } else {
        (cfg.nodes as f64 / cfg.io.reference_nodes.max(1) as f64).max(1.0)
    };
    let depth = (n_procs as f64)
        .log(cfg.dtree_fanout.max(2) as f64)
        .ceil()
        .max(1.0);
    let pop_overhead = depth * cal.sched_msg_latency;

    // First-task image loads (blocking); subsequent loads are
    // prefetched behind compute, as in §VII-C.
    let mut procs: Vec<Proc> = (0..n_procs)
        .map(|_| {
            let z = standard_normal(&mut rng);
            let load = cal.first_load.sample_with(z) * io_scale;
            Proc {
                ready_at: load,
                task_time: 0.0,
                io_time: load,
                other_time: 0.0,
                tasks: 0,
            }
        })
        .collect();
    let sync_at = if synchronized_start {
        procs.iter().map(|p| p.ready_at).fold(0.0_f64, f64::max)
    } else {
        0.0
    };
    if synchronized_start {
        for p in &mut procs {
            p.ready_at = sync_at;
        }
    }

    // Virtual-time list scheduling with Dtree-style decaying batches.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| Reverse((to_key(p.ready_at), i)))
        .collect();
    let mut remaining = total_tasks;
    let flops_rate = cal.flops_per_proc * speed;
    let interval_s = 60.0;
    let mut interval_flops: Vec<f64> = Vec::new();

    while remaining > 0 {
        let Reverse((_, pi)) = heap.pop().expect("procs available");
        // Dtree batch: a share of remaining work, decaying to 1.
        let batch = (remaining / (2 * n_procs)).clamp(1, remaining);
        let p = &mut procs[pi];
        p.other_time += pop_overhead;
        p.ready_at += pop_overhead;
        for _ in 0..batch {
            let z = standard_normal(&mut rng);
            let dur = cal.task_duration.sample_with(z) / speed;
            deposit_flops(
                &mut interval_flops,
                interval_s,
                p.ready_at,
                dur,
                dur * flops_rate,
            );
            p.ready_at += dur;
            p.task_time += dur;
            p.tasks += 1;
            // PGAS puts for the task's sources (charged to other).
            p.other_time += cal.pgas_latency * 40.0;
            p.ready_at += cal.pgas_latency * 40.0;
        }
        remaining -= batch;
        heap.push(Reverse((to_key(p.ready_at), pi)));
    }

    // Output writes, then idle until the slowest process finishes.
    for p in &mut procs {
        p.other_time += cal.output_write;
        p.ready_at += cal.output_write;
    }
    let makespan = procs.iter().map(|p| p.ready_at).fold(0.0_f64, f64::max);
    let n = n_procs as f64;
    let components = SimComponents {
        image_loading: procs.iter().map(|p| p.io_time).sum::<f64>() / n,
        task_processing: procs.iter().map(|p| p.task_time).sum::<f64>() / n,
        load_imbalance: procs.iter().map(|p| makespan - p.ready_at).sum::<f64>() / n,
        other: procs.iter().map(|p| p.other_time).sum::<f64>() / n,
    };
    let total_flops = components.task_processing * n * flops_rate;
    SimResult {
        components,
        makespan,
        total_flops,
        interval_flops,
        interval_s,
        tasks: total_tasks,
        processes: n_procs,
    }
}

fn to_key(t: f64) -> u64 {
    // Monotone map of nonnegative f64 to u64 for heap ordering.
    (t.max(0.0) * 1e9) as u64
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn deposit_flops(bins: &mut Vec<f64>, width: f64, start: f64, dur: f64, flops: f64) {
    if dur <= 0.0 {
        return;
    }
    let end = start + dur;
    let last_bin = (end / width) as usize;
    if bins.len() <= last_bin {
        bins.resize(last_bin + 1, 0.0);
    }
    let mut t = start;
    while t < end {
        let bin = (t / width) as usize;
        let bin_end = (bin as f64 + 1.0) * width;
        let chunk = bin_end.min(end) - t;
        bins[bin] += flops * chunk / dur;
        t = bin_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::default_calibration;

    fn cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            ..Default::default()
        }
    }

    #[test]
    fn per_process_time_conservation() {
        let cal = default_calibration();
        let r = simulate_run(&cal, &cfg(8), 8 * 17 * 6, 1, false);
        // mean(io + task + other + imbalance) == makespan.
        let c = &r.components;
        let total = c.image_loading + c.task_processing + c.load_imbalance + c.other;
        assert!(
            (total - r.makespan).abs() < 1e-6 * r.makespan,
            "components {total} vs makespan {}",
            r.makespan
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let cal = default_calibration();
        let a = simulate_run(&cal, &cfg(4), 400, 7, false);
        let b = simulate_run(&cal, &cfg(4), 400, 7, false);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.components, b.components);
        let c = simulate_run(&cal, &cfg(4), 400, 8, false);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn weak_scaling_task_processing_is_flat() {
        let cal = default_calibration();
        let tasks_per_node = 68;
        let small = simulate_run(&cal, &cfg(4), 4 * tasks_per_node, 3, false);
        let large = simulate_run(&cal, &cfg(256), 256 * tasks_per_node, 3, false);
        let ratio = large.components.task_processing / small.components.task_processing;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "weak-scaling task time ratio {ratio}"
        );
        // Load imbalance grows with scale at fixed tasks/node (§VII-C1).
        assert!(large.components.load_imbalance > small.components.load_imbalance);
    }

    #[test]
    fn strong_scaling_halves_task_time() {
        let cal = default_calibration();
        let total = 50_000;
        let a = simulate_run(&cal, &cfg(32), total, 5, false);
        let b = simulate_run(&cal, &cfg(64), total, 5, false);
        let ratio = a.components.task_processing / b.components.task_processing;
        assert!((ratio - 2.0).abs() < 0.2, "strong-scaling ratio {ratio}");
        // Overall efficiency is below perfect but real (imbalance).
        let speedup = a.makespan / b.makespan;
        assert!(speedup > 1.3 && speedup < 2.05, "speedup {speedup}");
    }

    #[test]
    fn imbalance_worsens_with_fewer_tasks_per_process() {
        let cal = default_calibration();
        let many = simulate_run(&cal, &cfg(16), 16 * 17 * 32, 9, false);
        let few = simulate_run(&cal, &cfg(16), 16 * 17 * 2, 9, false);
        let frac = |r: &SimResult| r.components.load_imbalance / r.makespan;
        assert!(
            frac(&few) > frac(&many),
            "few-task imbalance {} vs many-task {}",
            frac(&few),
            frac(&many)
        );
    }

    #[test]
    fn unscaled_io_grows_with_nodes() {
        let cal = default_calibration();
        let io = IoModel {
            scaled_bandwidth: false,
            reference_nodes: 8,
        };
        let base = simulate_run(
            &cal,
            &ClusterConfig {
                nodes: 8,
                io,
                ..Default::default()
            },
            2000,
            2,
            false,
        );
        let big = simulate_run(
            &cal,
            &ClusterConfig {
                nodes: 64,
                io,
                ..Default::default()
            },
            16_000,
            2,
            false,
        );
        assert!(
            big.components.image_loading > 4.0 * base.components.image_loading,
            "io: {} vs {}",
            big.components.image_loading,
            base.components.image_loading
        );
    }

    #[test]
    fn flop_rates_are_ordered_and_positive() {
        let cal = default_calibration();
        let r = simulate_run(&cal, &cfg(64), 64 * 34, 4, false);
        let rates = r.flop_rates(1.375);
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
        assert!(rates[2] > 0.0);
    }

    #[test]
    fn interval_flops_sum_to_total() {
        let cal = default_calibration();
        let r = simulate_run(&cal, &cfg(8), 2000, 6, true);
        let sum: f64 = r.interval_flops.iter().sum();
        assert!(
            (sum - r.total_flops).abs() < 1e-6 * r.total_flops,
            "interval sum {sum} vs total {}",
            r.total_flops
        );
        assert!(r.peak_rate(1.0) >= sum / (r.interval_flops.len() as f64 * r.interval_s));
    }

    #[test]
    fn petascale_run_is_fast_to_simulate() {
        let cal = default_calibration();
        let t0 = std::time::Instant::now();
        let r = simulate_run(&cal, &cfg(8192), 557_056, 11, false);
        assert_eq!(r.processes, 8192 * 17);
        assert_eq!(r.tasks, 557_056);
        assert!(
            t0.elapsed().as_secs_f64() < 30.0,
            "simulation too slow: {:?}",
            t0.elapsed()
        );
    }
}
