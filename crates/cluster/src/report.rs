//! Table and chart formatting for the scaling experiments.

use crate::sim::SimResult;
use celeste_sched::ComponentTimes;

/// Render rows of (label, components) as the Fig. 4/5 data table.
pub fn components_table(rows: &[(String, ComponentTimes)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>14} {:>14} {:>15} {:>10} {:>10}\n",
        "scale", "task proc (s)", "img load (s)", "imbalance (s)", "other (s)", "total (s)"
    ));
    for (label, c) in rows {
        out.push_str(&format!(
            "{:>10} {:>14.2} {:>14.2} {:>15.2} {:>10.2} {:>10.2}\n",
            label,
            c.task_processing,
            c.image_loading,
            c.load_imbalance,
            c.other,
            c.total()
        ));
    }
    out
}

/// ASCII stacked bars (one row per scale), segment letters:
/// `T` task processing, `I` image loading, `L` load imbalance,
/// `o` other.
pub fn stacked_chart(rows: &[(String, ComponentTimes)], width: usize) -> String {
    let max_total = rows
        .iter()
        .map(|(_, c)| c.total())
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for (label, c) in rows {
        let seg = |t: f64| ((t / max_total) * width as f64).round() as usize;
        out.push_str(&format!("{label:>10} |"));
        out.push_str(&"T".repeat(seg(c.task_processing)));
        out.push_str(&"I".repeat(seg(c.image_loading)));
        out.push_str(&"L".repeat(seg(c.load_imbalance)));
        out.push_str(&"o".repeat(seg(c.other)));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10}  T=task processing  I=image loading  L=load imbalance  o=other\n",
        ""
    ));
    out
}

/// CSV with one row per scale (machine-readable figure data).
pub fn components_csv(rows: &[(String, ComponentTimes)]) -> String {
    let mut out =
        String::from("scale,task_processing_s,image_loading_s,load_imbalance_s,other_s,total_s\n");
    for (label, c) in rows {
        out.push_str(&format!(
            "{label},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            c.task_processing,
            c.image_loading,
            c.load_imbalance,
            c.other,
            c.total()
        ));
    }
    out
}

/// Table I formatting: the three cumulative sustained rates.
pub fn table1(result: &SimResult, overhead_factor: f64) -> String {
    let rates = result.flop_rates(overhead_factor);
    let tf = 1e12;
    format!(
        "Sustained FLOP rate ({} nodes, {} tasks)\n\
         {:>22} {:>18} {:>18}\n\
         {:>22.2} {:>18.2} {:>18.2}   (TFLOP/s)\n",
        result.processes / 17,
        result.tasks,
        "task processing",
        "+load imbalance",
        "+image loading",
        rates[0] / tf,
        rates[1] / tf,
        rates[2] / tf,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::default_calibration;
    use crate::sim::{simulate_run, ClusterConfig};

    fn sample_rows() -> Vec<(String, ComponentTimes)> {
        vec![
            (
                "2".to_string(),
                ComponentTimes {
                    image_loading: 10.0,
                    task_processing: 100.0,
                    load_imbalance: 5.0,
                    other: 1.0,
                },
            ),
            (
                "8".to_string(),
                ComponentTimes {
                    image_loading: 10.0,
                    task_processing: 100.0,
                    load_imbalance: 25.0,
                    other: 1.0,
                },
            ),
        ]
    }

    #[test]
    fn table_has_all_rows_and_totals() {
        let t = components_table(&sample_rows());
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("116.00")); // 10+100+5+1
        assert!(t.contains("136.00"));
    }

    #[test]
    fn csv_is_parseable() {
        let csv = components_csv(&sample_rows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].split(',').count(), 6);
        assert!(lines[1].starts_with("2,"));
    }

    #[test]
    fn chart_longest_bar_fills_width() {
        let chart = stacked_chart(&sample_rows(), 50);
        let longest = chart.lines().map(|l| l.len()).max().unwrap();
        assert!(longest >= 50, "chart too short: {longest}");
        assert!(chart.contains('T') && chart.contains('L'));
    }

    #[test]
    fn table1_contains_three_ordered_rates() {
        let cal = default_calibration();
        let r = simulate_run(
            &cal,
            &ClusterConfig {
                nodes: 16,
                ..Default::default()
            },
            2000,
            3,
            false,
        );
        let t = table1(&r, 1.375);
        assert!(t.contains("TFLOP/s"));
        assert!(t.contains("16 nodes"));
    }
}
