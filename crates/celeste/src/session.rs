//! The session: detect → initialize → fit → campaign, one object.

use crate::config::{CelesteBuilder, CelesteConfig};
use crate::error::CelesteError;
use celeste_core::{validate_fit_inputs, FitStats, SourceParams, SourceProblem};
use celeste_sched::fault::mix64;
use celeste_sched::partition::RegionTask;
use celeste_sched::runtime::{process_region, RegionStats};
use celeste_sched::{
    fit_config_hash, plan_fingerprint, task_image_keys, CampaignReport, CancelToken, Checkpoint,
    CheckpointConfig, RegionResult, RunOptions,
};
use celeste_serve::{CatalogDaemon, ServeConfig};
use celeste_store::{catalog_content_hash, plan_provenance_keys, CatalogQuery, CatalogStore};
use celeste_survey::catalog::CatalogEntry;
use celeste_survey::io::ImageStore;
use celeste_survey::synth::SyntheticSurvey;
use celeste_survey::{Catalog, Image};
use std::collections::HashMap;

/// Entry point to the facade. [`Celeste::builder`] configures a
/// [`Session`]; see the [crate docs](crate) for the full lifecycle.
pub struct Celeste;

impl Celeste {
    /// Start configuring a session.
    pub fn builder() -> CelesteBuilder {
        CelesteBuilder::default()
    }

    /// A session with all defaults (never fails: the defaults are
    /// valid by construction).
    pub fn session() -> Session {
        match Celeste::builder().build() {
            Ok(session) => session,
            Err(_) => unreachable!("default configuration is valid"),
        }
    }
}

/// A configured pipeline session. Cheap to create and `Sync`; all
/// methods take `&self`, so one session can serve concurrent callers.
#[derive(Debug, Clone)]
pub struct Session {
    cfg: CelesteConfig,
}

/// The batch return of [`Session::run_campaign`]: the fitted
/// parameters of every source plus the measured runtime report.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Final fitted parameters, in initialization-catalog order.
    pub params: Vec<SourceParams>,
    /// The four-component runtime breakdown and task statistics.
    pub report: CampaignReport,
    /// Every per-task [`RegionResult`], in arrival order. Populated
    /// by [`Session::run_campaign`]; empty on the streaming path
    /// (the consumer received them instead).
    pub regions: Vec<RegionResult>,
}

/// Blocking iterator over [`RegionResult`]s, yielded to the consumer
/// closure of [`Session::run_campaign_streaming`] while the campaign
/// runs. Ends when the campaign finishes (or fails). Dropping it
/// early cancels the campaign cleanly: in-flight regions finish,
/// pending checkpoint state is flushed, and the campaign returns
/// `Ok` with [`CampaignReport::cancelled`] set — it never blocks on
/// a consumer that has stopped listening.
pub struct RegionStream {
    rx: crossbeam::channel::Receiver<RegionResult>,
    cancel: CancelToken,
}

impl Iterator for RegionStream {
    type Item = RegionResult;

    fn next(&mut self) -> Option<RegionResult> {
        self.rx.recv().ok()
    }
}

impl Drop for RegionStream {
    fn drop(&mut self) {
        // A fully drained stream means the campaign already finished;
        // cancelling then is a no-op (the report is only marked
        // cancelled when tasks actually remain).
        self.cancel.cancel();
    }
}

impl Session {
    pub(crate) fn from_config(cfg: CelesteConfig) -> Session {
        Session { cfg }
    }

    /// The validated configuration this session runs with.
    pub fn config(&self) -> &CelesteConfig {
        &self.cfg
    }

    /// Run heuristic detection + photometry (the Photo stage) over one
    /// field's images: exactly one image per band, r band required.
    pub fn detect(&self, images: &[&Image]) -> Result<Catalog, CelesteError> {
        Ok(celeste_photo::try_run_photo(images, &self.cfg.photo)?)
    }

    /// Initialize variational source parameters from a catalog (the
    /// paper's "initialize from an earlier survey's estimates").
    pub fn init_sources(&self, catalog: &Catalog) -> Vec<SourceParams> {
        catalog
            .entries
            .iter()
            .map(SourceParams::init_from_entry)
            .collect()
    }

    /// Fit one source against `images`, holding `neighbors` fixed in
    /// the pixel background. Input is validated (non-finite parameters
    /// or pixels are reported, not propagated into the Newton loop).
    pub fn fit_source(
        &self,
        source: &mut SourceParams,
        images: &[&Image],
        neighbors: &[&SourceParams],
    ) -> Result<FitStats, CelesteError> {
        let problem =
            SourceProblem::build(source, images, neighbors, &self.cfg.priors, &self.cfg.fit);
        let id = source.id;
        celeste_core::try_fit_source(source, &problem, &self.cfg.fit).map_err(|error| {
            CelesteError::Fit {
                source_id: Some(id),
                error,
            }
        })
    }

    /// Jointly optimize a region's sources with Cyclades block
    /// coordinate ascent on the shared executor (batch width =
    /// the session's resolved thread count). `neighbors` are sources
    /// outside the region, held fixed. Validates every source's
    /// parameters and every image's calibration and pixels before
    /// fitting (the same checks [`Session::fit_source`] applies).
    pub fn fit_region(
        &self,
        sources: &mut [SourceParams],
        images: &[&Image],
        neighbors: &[SourceParams],
        seed: u64,
    ) -> Result<RegionStats, CelesteError> {
        for sp in sources.iter().chain(neighbors.iter()) {
            celeste_core::validate_params(sp).map_err(|error| CelesteError::Fit {
                source_id: Some(sp.id),
                error,
            })?;
        }
        celeste_core::validate_images(images).map_err(|error| CelesteError::Fit {
            source_id: None,
            error,
        })?;
        Ok(process_region(
            sources,
            images,
            neighbors,
            &self.cfg.priors,
            &self.cfg.fit,
            self.cfg.threads,
            seed,
        ))
    }

    /// Validate a single-source problem without fitting (the check
    /// [`Session::fit_source`] applies).
    pub fn validate(
        &self,
        source: &SourceParams,
        problem: &SourceProblem,
    ) -> Result<(), CelesteError> {
        validate_fit_inputs(source, problem).map_err(|error| CelesteError::Fit {
            source_id: Some(source.id),
            error,
        })
    }

    /// Render and write every survey image into `store` (the paper's
    /// Lustre → Burst Buffer staging step). Returns the image count.
    pub fn stage(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
    ) -> Result<usize, CelesteError> {
        Ok(celeste_sched::try_stage_survey(survey, store)?)
    }

    /// Run a full campaign — both partition stages, Dtree-scheduled
    /// across the session's simulated nodes — collecting every
    /// [`RegionResult`] alongside the final parameters. Equivalent to
    /// draining [`Session::run_campaign_streaming`]; the final
    /// parameters are bit-identical to the legacy
    /// [`run_campaign`](celeste_sched::run_campaign) tuple return.
    pub fn run_campaign(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
    ) -> Result<CampaignOutcome, CelesteError> {
        let (mut outcome, regions) =
            self.run_campaign_streaming(survey, store, init_catalog, tasks, |stream| {
                stream.collect::<Vec<RegionResult>>()
            })?;
        outcome.regions = regions;
        Ok(outcome)
    }

    /// [`Session::run_campaign`], streaming: the campaign runs on a
    /// scoped background thread while `consume` runs on the calling
    /// thread with a live [`RegionStream`] — each Dtree task's fitted
    /// sources arrive the moment the task is written back, so callers
    /// can checkpoint or serve partial catalogs mid-campaign. Returns
    /// the batch outcome (with [`CampaignOutcome::regions`] empty —
    /// the consumer saw them) plus whatever `consume` returned. If
    /// `consume` returns while the stream still has results coming,
    /// the campaign is cancelled cleanly (see [`RegionStream`]).
    pub fn run_campaign_streaming<R, F>(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
        consume: F,
    ) -> Result<(CampaignOutcome, R), CelesteError>
    where
        F: FnOnce(RegionStream) -> R,
    {
        self.campaign_with(survey, store, init_catalog, tasks, None, None, consume)
    }

    /// [`Session::run_campaign`] with durable progress: every
    /// completed region is recorded to `ckpt` (written atomically
    /// every [`CheckpointConfig::every`] completions and once at the
    /// end), so a crashed or cancelled campaign can be picked up by
    /// [`Session::resume_campaign`] without refitting finished
    /// regions.
    pub fn run_campaign_checkpointed(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
        ckpt: &CheckpointConfig,
    ) -> Result<CampaignOutcome, CelesteError> {
        let (mut outcome, regions) = self.campaign_with(
            survey,
            store,
            init_catalog,
            tasks,
            Some(ckpt),
            None,
            |stream| stream.collect::<Vec<RegionResult>>(),
        )?;
        outcome.regions = regions;
        Ok(outcome)
    }

    /// Resume a campaign from the checkpoint at
    /// [`CheckpointConfig::path`]: regions already completed are
    /// restored bit-exactly from the file (and appear in
    /// [`CampaignOutcome::regions`] alongside freshly fitted ones);
    /// only the rest are scheduled. The checkpoint's plan fingerprint
    /// must match `tasks` — resuming against a different task plan is
    /// a typed error, not silent corruption. If the checkpoint file
    /// does not exist yet, this is simply a fresh
    /// [`Session::run_campaign_checkpointed`] run, so crash-retry
    /// loops can call `resume_campaign` unconditionally.
    pub fn resume_campaign(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
        ckpt: &CheckpointConfig,
    ) -> Result<CampaignOutcome, CelesteError> {
        let resume = if ckpt.path.exists() {
            Some(
                Checkpoint::load(&ckpt.path, plan_fingerprint(tasks))
                    .map_err(celeste_sched::CampaignError::Checkpoint)?,
            )
        } else {
            None
        };
        let (mut outcome, regions) = self.campaign_with(
            survey,
            store,
            init_catalog,
            tasks,
            Some(ckpt),
            resume,
            |stream| stream.collect::<Vec<RegionResult>>(),
        )?;
        outcome.regions = regions;
        Ok(outcome)
    }

    /// Run a campaign and stream every fitted region into `catalog`,
    /// a [`CatalogStore`] concurrent readers can query *while the
    /// campaign is still running*. Quarantined regions (see
    /// [`CampaignReport::failed_regions`]) never reach the store, so
    /// its contents are exactly the successfully fitted regions; once
    /// the campaign finishes, [`CatalogStore::to_catalog`] is
    /// bit-identical to the batch [`Session::run_campaign`] output at
    /// any thread count.
    ///
    /// Every region is also recorded in the store's provenance cache,
    /// keyed by the content of everything its fit was conditioned on
    /// (task geometry, initialization entries of its sources and
    /// fixed neighbors, the exact image set, the survey content, and
    /// the fit configuration — see
    /// [`task_provenance_key`](celeste_store::task_provenance_key)).
    /// Re-running over an overlapping footprint replays cache hits as
    /// resume state, refitting only tasks whose inputs changed:
    /// [`CampaignReport::tasks_restored`] counts the shards served
    /// from cache, and an unchanged re-run restores every task and
    /// refits none.
    pub fn run_campaign_into_store(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
        catalog: &CatalogStore,
    ) -> Result<CampaignOutcome, CelesteError> {
        let salt = self.provenance_salt(survey);
        let keys = plan_provenance_keys(tasks, init_catalog, salt, |t| task_image_keys(survey, t));
        let mut completed = Vec::new();
        for (t, &k) in tasks.iter().zip(&keys) {
            if let Some(mut r) = catalog.cached_region(k) {
                // The cached fit is keyed purely by input content; the
                // re-run's plan may number the task differently.
                r.task_id = t.id;
                r.stage = t.stage;
                completed.push(r);
            }
        }
        let resume = (!completed.is_empty()).then(|| Checkpoint {
            fingerprint: plan_fingerprint(tasks),
            completed,
        });
        let key_of: HashMap<u64, u64> = tasks.iter().zip(&keys).map(|(t, &k)| (t.id, k)).collect();
        let (outcome, ()) =
            self.campaign_with(survey, store, init_catalog, tasks, None, resume, |stream| {
                for r in stream {
                    match key_of.get(&r.task_id) {
                        Some(&k) => catalog.absorb(k, &r),
                        None => catalog.ingest(&r),
                    }
                }
            })?;
        Ok(outcome)
    }

    /// Serve a [`CatalogQuery`] against a [`CatalogStore`] (typically
    /// one a concurrent [`Session::run_campaign_into_store`] is still
    /// filling). Malformed queries come back as
    /// [`CelesteError::Store`], never a panic.
    pub fn query(
        &self,
        catalog: &CatalogStore,
        query: &CatalogQuery,
    ) -> Result<Vec<CatalogEntry>, CelesteError> {
        Ok(catalog.query(query)?)
    }

    /// Start a catalog daemon: a [`CatalogDaemon`] owning a
    /// [`celeste_serve::ServedStore`] (restored from
    /// [`ServeConfig::snapshot`] if the file exists — instant
    /// restart, zero refits) and answering the full query API over
    /// TCP on `addr` (`"127.0.0.1:0"` picks an ephemeral port).
    ///
    /// The daemon serves while a campaign ingests: pass
    /// `daemon.store().store()` as the catalog of a concurrent
    /// [`Session::run_campaign_into_store`] and clients see every
    /// region the moment it is absorbed, bit-identical to an
    /// in-process query. Failures come back as
    /// [`CelesteError::Serve`] with the full cause chain.
    pub fn serve(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: &ServeConfig,
    ) -> Result<CatalogDaemon, CelesteError> {
        Ok(CatalogDaemon::start(addr, config)?)
    }

    /// The provenance-cache salt: everything campaign-global a region
    /// fit is conditioned on — the fit configuration and the survey
    /// content (truth catalog, geometry, seed) that determines the
    /// rendered imagery.
    fn provenance_salt(&self, survey: &SyntheticSurvey) -> u64 {
        let mut acc = 0x5EED_5E55_1051_0001u64;
        for bits in [
            fit_config_hash(&self.cfg.fit),
            catalog_content_hash(&survey.truth),
            survey.config.seed,
            survey.config.pixels_per_field as u64,
            survey.geometry.fields.len() as u64,
            survey.geometry.footprint.ra_min.to_bits(),
            survey.geometry.footprint.ra_max.to_bits(),
            survey.geometry.footprint.dec_min.to_bits(),
            survey.geometry.footprint.dec_max.to_bits(),
        ] {
            acc = mix64(acc ^ mix64(bits));
        }
        acc
    }

    /// The one campaign driver every public variant funnels through:
    /// spawns the campaign on a scoped thread with the session's
    /// lease/retry policy, streams results to `consume` on the
    /// calling thread, and wires the stream's cancel token so a
    /// consumer that stops listening shuts the campaign down instead
    /// of deadlocking it.
    #[allow(clippy::too_many_arguments)]
    fn campaign_with<R, F>(
        &self,
        survey: &SyntheticSurvey,
        store: &ImageStore,
        init_catalog: &Catalog,
        tasks: &[RegionTask],
        checkpoint: Option<&CheckpointConfig>,
        resume: Option<Checkpoint>,
        consume: F,
    ) -> Result<(CampaignOutcome, R), CelesteError>
    where
        F: FnOnce(RegionStream) -> R,
    {
        if tasks.is_empty() {
            return Err(CelesteError::EmptyTaskList);
        }
        let campaign_cfg = self.cfg.campaign();
        let cancel = CancelToken::default();
        let (tx, rx) = crossbeam::channel::unbounded();
        std::thread::scope(|scope| {
            let priors = &self.cfg.priors;
            let cancel_ref = &cancel;
            let handle = scope.spawn(move || {
                let result = celeste_sched::run_campaign_with(
                    survey,
                    store,
                    init_catalog,
                    tasks,
                    priors,
                    &campaign_cfg,
                    RunOptions {
                        sink: Some(&tx),
                        checkpoint,
                        resume,
                        cancel: Some(cancel_ref),
                        clock: None,
                    },
                );
                // Dropping the last sender ends the consumer's stream.
                drop(tx);
                result
            });
            let consumed = consume(RegionStream {
                rx,
                cancel: cancel.clone(),
            });
            let (params, report) = match handle.join() {
                Ok(run) => run?,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            Ok((
                CampaignOutcome {
                    params,
                    report,
                    regions: Vec::new(),
                },
                consumed,
            ))
        })
    }
}
