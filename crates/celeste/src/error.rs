//! The facade's typed error surface.

use celeste_core::FitError;
use celeste_photo::PhotoError;
use celeste_sched::CampaignError;
use celeste_serve::ServeError;
use celeste_store::StoreError;
use celeste_survey::io::IoError;

/// Everything that can go wrong across the facade: invalid
/// configuration or input is reported here instead of panicking, and
/// lower-layer errors ([`PhotoError`], [`FitError`], [`IoError`],
/// [`CampaignError`]) are carried with their context intact.
#[derive(Debug)]
pub enum CelesteError {
    /// A configuration value failed validation at
    /// [`CelesteBuilder::build`](crate::CelesteBuilder::build).
    Config {
        /// The offending builder field.
        field: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// Invalid input to the detection pipeline (duplicate band,
    /// missing r band).
    Photo(PhotoError),
    /// Invalid input to a source fit (non-finite parameters or pixel
    /// data).
    Fit {
        /// The offending source, when known.
        source_id: Option<u64>,
        /// The underlying validation failure.
        error: FitError,
    },
    /// An image-store failure outside a campaign (opening, loading,
    /// saving).
    Io(IoError),
    /// An IO failure inside a campaign (staging, a node's image
    /// fetch, output writing), with where it happened.
    Campaign(CampaignError),
    /// A campaign was started with no region tasks to schedule.
    EmptyTaskList,
    /// A malformed catalog-store query (see
    /// [`Session::query`](crate::Session::query)).
    Store(StoreError),
    /// A catalog-service failure (see
    /// [`Session::serve`](crate::Session::serve)): wire protocol,
    /// snapshot persistence, daemon configuration, or a remote
    /// query error — each chained through
    /// [`std::error::Error::source`] down to its typed cause (a
    /// remote validation failure bottoms out at the same
    /// [`StoreError::InvalidQuery`] the in-process path returns).
    Serve(ServeError),
}

impl std::fmt::Display for CelesteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CelesteError::Config { field, message } => {
                write!(f, "invalid config `{field}`: {message}")
            }
            CelesteError::Photo(e) => write!(f, "photo pipeline: {e}"),
            CelesteError::Fit {
                source_id: Some(id),
                error,
            } => write!(f, "fit of source {id}: {error}"),
            CelesteError::Fit {
                source_id: None,
                error,
            } => write!(f, "fit: {error}"),
            CelesteError::Io(e) => write!(f, "image store: {e}"),
            CelesteError::Campaign(e) => write!(f, "campaign: {e}"),
            CelesteError::EmptyTaskList => write!(f, "campaign has no region tasks"),
            CelesteError::Store(e) => write!(f, "catalog store: {e}"),
            CelesteError::Serve(e) => write!(f, "catalog service: {e}"),
        }
    }
}

impl std::error::Error for CelesteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CelesteError::Photo(e) => Some(e),
            CelesteError::Fit { error, .. } => Some(error),
            CelesteError::Io(e) => Some(e),
            CelesteError::Campaign(e) => Some(e),
            CelesteError::Store(e) => Some(e),
            CelesteError::Serve(e) => Some(e),
            CelesteError::Config { .. } | CelesteError::EmptyTaskList => None,
        }
    }
}

impl From<PhotoError> for CelesteError {
    fn from(e: PhotoError) -> Self {
        CelesteError::Photo(e)
    }
}

impl From<FitError> for CelesteError {
    fn from(error: FitError) -> Self {
        CelesteError::Fit {
            source_id: None,
            error,
        }
    }
}

impl From<IoError> for CelesteError {
    fn from(e: IoError) -> Self {
        CelesteError::Io(e)
    }
}

impl From<CampaignError> for CelesteError {
    fn from(e: CampaignError) -> Self {
        CelesteError::Campaign(e)
    }
}

impl From<StoreError> for CelesteError {
    fn from(e: StoreError) -> Self {
        CelesteError::Store(e)
    }
}

impl From<ServeError> for CelesteError {
    fn from(e: ServeError) -> Self {
        CelesteError::Serve(e)
    }
}
