#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! The unified Celeste facade: one configuration surface, one session
//! type, typed errors, and streaming region results for the whole
//! pipeline of *Cataloging the Visible Universe Through Bayesian
//! Inference at Petascale* (Regier et al., IPDPS 2018).
//!
//! The underlying crates expose the pipeline as free functions
//! (`run_photo`, `process_region`, `run_campaign`, `fit_source`) with
//! separate config structs and panicking input checks. This crate
//! replaces that glue with a builder-configured [`Session`]:
//!
//! ```text
//!            Celeste::builder() ──► Session (validated CelesteConfig)
//!                                      │
//!        images ──► session.detect ────┤      heuristic catalog
//!                                      ▼
//!       catalog ──► session.init_sources ──► Vec<SourceParams>
//!                                      │
//!       sources ──► session.fit_source │ session.fit_region
//!                      (one source)    │   (joint Cyclades BCA)
//!                                      ▼
//!        survey ──► session.stage ──► session.run_campaign
//!                                      │
//!                                      ├──► RegionResult stream
//!                                      │    (per Dtree task, live)
//!                                      ▼
//!                             CampaignOutcome { params, report }
//! ```
//!
//! Every fallible entry point returns [`CelesteError`] instead of
//! panicking, and [`Session::run_campaign_streaming`] hands the caller
//! an iterator of [`RegionResult`]s emitted as Dtree tasks complete,
//! so partial catalogs can be consumed, checkpointed, or served
//! mid-campaign. Draining that stream reproduces the batch return
//! bit-identically — streaming observes the run, it does not alter it.
//!
//! # Fault tolerance
//!
//! Campaigns are resilient at region granularity: every region task
//! is a *lease* with a deadline; a panicking fit, failed image load,
//! or hung node loses its lease and the task is reissued with
//! seeded-deterministic exponential backoff, up to
//! [`RetryPolicy::max_attempts`]. Regions that keep failing are
//! quarantined into [`CampaignReport::failed_regions`] with their
//! full per-attempt error chains — the campaign degrades gracefully
//! instead of aborting. [`Session::run_campaign_checkpointed`]
//! persists completed regions durably and
//! [`Session::resume_campaign`] restarts from the file, refitting
//! only unfinished regions, with a bit-identical final catalog.
//! Deterministic fault injection ([`FaultPlan`], or the
//! `CELESTE_FAULTS` environment variable) drives the chaos suite
//! through these exact production paths.
//!
//! # Catalog service
//!
//! [`Session::run_campaign_into_store`] streams every fitted region
//! into a [`CatalogStore`] — a sky-sharded index serving cone
//! searches, rect/type/flux filters, and brightest-N queries
//! ([`Session::query`]) to concurrent readers while the campaign is
//! still running. Regions are cached by fit provenance (images +
//! configuration + initialization content), so re-running over an
//! overlapping footprint refits only the shards whose inputs changed.
//!
//! # Catalog daemon
//!
//! [`Session::serve`] turns that store into a long-running network
//! service: a [`CatalogDaemon`] owns a store (optionally restored
//! from an `SCST` snapshot, so restarts answer instantly with zero
//! refits), keeps ingesting from a live campaign, and answers the
//! full query API over TCP — length-prefixed `SCQP` frames, a
//! bounded pool of dedicated handler threads, per-connection
//! timeouts, typed error frames, graceful shutdown. With
//! [`ServeConfig::max_resident_entries`] set, cold cells spill to
//! the snapshot file and fault back in on demand (LRU by query
//! touch), so a served catalog can outgrow memory. Query from
//! anywhere with [`CatalogClient`]; answers are bit-identical to the
//! in-process store.
//!
//! # One thread knob
//!
//! All parallelism derives from a single resolved thread count with
//! the precedence **builder [`CelesteBuilder::threads`] >
//! `CELESTE_THREADS` environment variable > available parallelism**.
//! The Cyclades batch width, campaign node count, and prefetcher pool
//! all default from that one value (see [`CelesteConfig`]); the legacy
//! per-layer knobs (`CampaignConfig::n_nodes`, `process_region`'s
//! `n_threads`) are derived from it rather than duplicating it.
//!
//! # Quickstart
//!
//! ```no_run
//! use celeste::{Celeste, SourceParams};
//!
//! # fn images() -> Vec<celeste::Image> { Vec::new() }
//! # fn main() -> Result<(), celeste::CelesteError> {
//! let session = Celeste::builder().threads(4).build()?;
//! let images = images();
//! let refs: Vec<&celeste::Image> = images.iter().collect();
//!
//! // Detect sources heuristically, then infer the catalog jointly.
//! let detected = session.detect(&refs)?;
//! let mut sources = session.init_sources(&detected);
//! session.fit_region(&mut sources, &refs, &[], 7)?;
//! for sp in &sources {
//!     println!("{:?}", sp.to_entry());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The legacy free functions remain available (and unchanged) through
//! the re-exported subcrates for existing callers and the parity
//! suites; new code should go through the session.

mod config;
mod error;
mod session;

pub use config::{CelesteBuilder, CelesteConfig};
pub use error::CelesteError;
pub use session::{CampaignOutcome, Celeste, RegionStream, Session};

// The subcrates, re-exported so facade users need a single dependency.
pub use celeste_core as model;
pub use celeste_par as par;
pub use celeste_photo as photo;
pub use celeste_sched as sched;
pub use celeste_serve as serve;
pub use celeste_store as store;
pub use celeste_survey as survey;

// The types a facade caller touches directly, flattened.
pub use celeste_core::{
    FitConfig, FitError, FitStats, ModelPriors, NewtonConfig, SourceParams, Uncertainty,
};
pub use celeste_photo::{PhotoConfig, PhotoError};
pub use celeste_sched::runtime::RegionStats;
pub use celeste_sched::{
    partition_sky, try_partition_sky, CampaignConfig, CampaignError, CampaignReport, CancelToken,
    CheckpointConfig, CheckpointError, FailedRegion, FaultPlan, PartitionConfig, PartitionError,
    RegionError, RegionResult, RegionTask, RetryPolicy,
};
pub use celeste_serve::{
    CatalogClient, CatalogDaemon, RemoteError, ServeConfig, ServeError, ServedStore,
};
pub use celeste_store::{
    plan_provenance_keys, task_provenance_key, CatalogQuery, CatalogStore, CatalogStoreStats,
    CellOccupancy, SourceFilter, StoreConfig, StoreError,
};
pub use celeste_survey::catalog::{CatalogEntry, SourceType};
pub use celeste_survey::io::{ImageStore, IoError};
pub use celeste_survey::synth::{SurveyConfig, SyntheticSurvey};
pub use celeste_survey::{Catalog, CellId, Image, Priors, SkyCoord, SkyRect};
