//! One validated configuration surface for the whole pipeline.

use crate::error::CelesteError;
use celeste_core::{FitConfig, ModelPriors};
use celeste_photo::PhotoConfig;
use celeste_sched::{CampaignConfig, FaultPlan, RetryPolicy};
use celeste_survey::Priors;

/// The resolved, validated configuration a [`Session`](crate::Session)
/// runs with. Built by [`CelesteBuilder`]; every derived legacy config
/// ([`FitConfig`], [`PhotoConfig`], [`CampaignConfig`]) comes from
/// this one surface, so there is exactly one place a knob lives.
///
/// # Thread-count precedence
///
/// [`CelesteConfig::threads`] is the single source of parallelism.
/// It resolves as: explicit [`CelesteBuilder::threads`] if set, else
/// the `CELESTE_THREADS` environment variable if set to a positive
/// integer, else the machine's available parallelism. The campaign
/// node count, Cyclades batch width, and prefetcher pool are derived
/// from it (overridable individually), replacing the pre-facade
/// duplication where `CampaignConfig::n_nodes` and `process_region`'s
/// `n_threads` each re-read the environment. Note the global
/// `celeste-par` executor is sized once per process from
/// `CELESTE_THREADS`; a larger `threads` value cannot widen it —
/// effective parallelism is the minimum of the two.
#[derive(Debug, Clone)]
pub struct CelesteConfig {
    /// The resolved thread count every parallel layer derives from.
    pub threads: usize,
    /// Simulated campaign nodes (default: `threads.min(2)`).
    pub n_nodes: usize,
    /// Prefetcher IO threads (default: `threads.max(2)`).
    pub prefetch_workers: usize,
    /// Dtree scheduler fanout (default: 4).
    pub dtree_fanout: usize,
    /// Variational-fit knobs (Newton, active pixels, culling, BCA).
    pub fit: FitConfig,
    /// Detection/classification knobs for the Photo stage.
    pub photo: PhotoConfig,
    /// Model priors used by every fit the session runs.
    pub priors: ModelPriors,
    /// Lease/retry/backoff policy for campaign region tasks.
    pub retry: RetryPolicy,
    /// Deterministic fault injection for chaos testing. `None` (the
    /// default) defers to the `CELESTE_FAULTS` environment variable.
    pub faults: Option<FaultPlan>,
}

impl CelesteConfig {
    /// The legacy campaign config this session's settings derive to.
    pub fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            n_nodes: self.n_nodes,
            threads_per_node: self.threads,
            prefetch_workers: self.prefetch_workers,
            dtree_fanout: self.dtree_fanout,
            fit: self.fit,
            retry: self.retry,
            faults: self.faults,
        }
    }
}

/// Builder for a [`Session`](crate::Session): set what you need,
/// inherit validated defaults for the rest.
///
/// ```
/// use celeste::Celeste;
/// let session = Celeste::builder().threads(2).build().unwrap();
/// assert_eq!(session.config().threads, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CelesteBuilder {
    threads: Option<usize>,
    n_nodes: Option<usize>,
    prefetch_workers: Option<usize>,
    dtree_fanout: Option<usize>,
    fit: Option<FitConfig>,
    photo: Option<PhotoConfig>,
    priors: Option<ModelPriors>,
    retry: Option<RetryPolicy>,
    faults: Option<FaultPlan>,
}

impl CelesteBuilder {
    /// Pin the thread count, overriding `CELESTE_THREADS` and the
    /// machine default (see [`CelesteConfig`] for the precedence).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Number of simulated campaign nodes.
    pub fn n_nodes(mut self, n: usize) -> Self {
        self.n_nodes = Some(n);
        self
    }

    /// Prefetcher IO thread count.
    pub fn prefetch_workers(mut self, n: usize) -> Self {
        self.prefetch_workers = Some(n);
        self
    }

    /// Dtree scheduler fanout.
    pub fn dtree_fanout(mut self, n: usize) -> Self {
        self.dtree_fanout = Some(n);
        self
    }

    /// Replace the variational-fit configuration.
    pub fn fit(mut self, fit: FitConfig) -> Self {
        self.fit = Some(fit);
        self
    }

    /// Replace the detection/classification configuration.
    pub fn photo(mut self, photo: PhotoConfig) -> Self {
        self.photo = Some(photo);
        self
    }

    /// Replace the model priors (default: SDSS-derived).
    pub fn priors(mut self, priors: ModelPriors) -> Self {
        self.priors = Some(priors);
        self
    }

    /// Replace the campaign lease/retry/backoff policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Inject deterministic faults into campaigns (chaos testing).
    /// Overrides the `CELESTE_FAULTS` environment variable.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Resolve defaults and validate every knob, yielding a ready
    /// [`Session`](crate::Session). Rejections come back as
    /// [`CelesteError::Config`] naming the offending field.
    pub fn build(self) -> Result<crate::Session, CelesteError> {
        let config = self.into_config()?;
        Ok(crate::Session::from_config(config))
    }

    fn into_config(self) -> Result<CelesteConfig, CelesteError> {
        fn bad(field: &'static str, message: impl Into<String>) -> CelesteError {
            CelesteError::Config {
                field,
                message: message.into(),
            }
        }

        if self.threads == Some(0) {
            return Err(bad("threads", "must be at least 1"));
        }
        let threads = self.threads.unwrap_or_else(celeste_par::configured_threads);
        let n_nodes = self.n_nodes.unwrap_or_else(|| threads.min(2));
        if n_nodes == 0 {
            return Err(bad("n_nodes", "must be at least 1"));
        }
        let prefetch_workers = self.prefetch_workers.unwrap_or_else(|| threads.max(2));
        if prefetch_workers == 0 {
            return Err(bad("prefetch_workers", "must be at least 1"));
        }
        let dtree_fanout = self.dtree_fanout.unwrap_or(4);
        if dtree_fanout < 2 {
            return Err(bad("dtree_fanout", "must be at least 2"));
        }

        let fit = self.fit.unwrap_or_default();
        if fit.bca_passes == 0 {
            return Err(bad("fit.bca_passes", "must be at least 1"));
        }
        if fit.newton.max_iters == 0 {
            return Err(bad("fit.newton.max_iters", "must be at least 1"));
        }
        if !(fit.cull_tol.is_finite() && fit.cull_tol >= 0.0) {
            return Err(bad(
                "fit.cull_tol",
                format!("must be finite and non-negative, got {}", fit.cull_tol),
            ));
        }
        if !(fit.active_nsigma.is_finite() && fit.active_nsigma > 0.0) {
            return Err(bad(
                "fit.active_nsigma",
                format!("must be finite and positive, got {}", fit.active_nsigma),
            ));
        }
        if !(fit.min_radius_px.is_finite() && fit.min_radius_px > 0.0) {
            return Err(bad(
                "fit.min_radius_px",
                format!("must be finite and positive, got {}", fit.min_radius_px),
            ));
        }
        if !(fit.max_radius_px.is_finite() && fit.max_radius_px >= fit.min_radius_px) {
            return Err(bad(
                "fit.max_radius_px",
                format!(
                    "must be finite and at least min_radius_px ({}), got {}",
                    fit.min_radius_px, fit.max_radius_px
                ),
            ));
        }

        let photo = self.photo.unwrap_or_default();
        if !(photo.detect.threshold_sigma.is_finite() && photo.detect.threshold_sigma > 0.0) {
            return Err(bad(
                "photo.detect.threshold_sigma",
                format!(
                    "must be finite and positive, got {}",
                    photo.detect.threshold_sigma
                ),
            ));
        }
        if photo.detect.min_pixels == 0 {
            return Err(bad("photo.detect.min_pixels", "must be at least 1"));
        }

        let priors = self
            .priors
            .unwrap_or_else(|| ModelPriors::new(Priors::sdss_default()));

        let retry = self.retry.unwrap_or_default();
        if retry.max_attempts == 0 {
            return Err(bad("retry.max_attempts", "must be at least 1"));
        }
        if retry.lease_timeout.is_zero() {
            return Err(bad("retry.lease_timeout", "must be positive"));
        }

        if let Some(f) = &self.faults {
            for (field, rate) in [
                ("faults.io_error_rate", f.io_error_rate),
                ("faults.panic_rate", f.panic_rate),
                ("faults.slow_rate", f.slow_rate),
                ("faults.hang_rate", f.hang_rate),
            ] {
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    return Err(bad(field, format!("must be in [0, 1], got {rate}")));
                }
            }
        }

        Ok(CelesteConfig {
            threads,
            n_nodes,
            prefetch_workers,
            dtree_fanout,
            fit,
            photo,
            priors,
            retry,
            faults: self.faults,
        })
    }
}
