//! Property tests: AD derivatives agree with central finite differences.

use celeste_ad::{gradient, hessian, Dual, Dual2, Real};
use proptest::prelude::*;

/// A moderately nasty smooth test function exercising every Real op.
fn test_fn<T: Real>(x: &[T]) -> T {
    let a = x[0] * x[1] + Real::exp(x[0] * T::from_f64(0.3));
    let b = Real::ln(x[1] * x[1] + T::from_f64(1.0));
    let c = Real::sin(x[0]) * Real::cos(x[1]);
    let d = Real::sqrt(x[0] * x[0] + x[1] * x[1] + T::from_f64(0.5));
    let e = Real::sigmoid(x[0] - x[1]);
    a + b + c + d / (e + T::from_f64(0.1))
}

fn fd_gradient(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    (0..x.len())
        .map(|i| {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            (f(&xp) - f(&xm)) / (2.0 * h)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dual_gradient_matches_finite_differences(
        x0 in -2.0..2.0f64,
        x1 in -2.0..2.0f64,
    ) {
        let x = [x0, x1];
        let g_ad = gradient::<2>(test_fn::<Dual<2>>, &x);
        let g_fd = fd_gradient(test_fn, &x, 1e-6);
        for (a, f) in g_ad.iter().zip(&g_fd) {
            prop_assert!((a - f).abs() < 1e-4 * (1.0 + f.abs()), "AD {} vs FD {}", a, f);
        }
    }

    #[test]
    fn hyperdual_hessian_is_symmetric_and_matches_fd(
        x0 in -1.5..1.5f64,
        x1 in -1.5..1.5f64,
    ) {
        let x = [x0, x1];
        let h = hessian(test_fn::<Dual2>, &x);
        prop_assert!((h[0][1] - h[1][0]).abs() < 1e-12);
        // FD of the AD gradient (tighter than FD² of values).
        let h_fd: Vec<Vec<f64>> = (0..2).map(|i| {
            fd_gradient(|x| gradient::<2>(test_fn::<Dual<2>>, x)[i], &x, 1e-6)
        }).collect();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!(
                    (h[i][j] - h_fd[i][j]).abs() < 1e-4 * (1.0 + h_fd[i][j].abs()),
                    "H[{}][{}]: AD {} vs FD {}", i, j, h[i][j], h_fd[i][j]
                );
            }
        }
    }

    #[test]
    fn dual_value_equals_f64_evaluation(
        x0 in -2.0..2.0f64,
        x1 in -2.0..2.0f64,
    ) {
        let v64 = test_fn(&[x0, x1]);
        let vd = test_fn(&[Dual::<2>::variable(x0, 0), Dual::<2>::variable(x1, 1)]).val;
        let vd2 = test_fn(&[Dual2::new(x0, 1.0, 0.0, 0.0), Dual2::new(x1, 0.0, 1.0, 0.0)]).val;
        prop_assert!((v64 - vd).abs() < 1e-12);
        prop_assert!((v64 - vd2).abs() < 1e-12);
    }
}
