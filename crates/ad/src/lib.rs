//! Forward-mode automatic differentiation for Celeste.
//!
//! The paper (§V) uses ForwardDiff.jl/ReverseDiff.jl where Hessian
//! sparsity does not matter, and hand-coded derivatives on the hot path.
//! This crate plays the same role for the Rust port:
//!
//! * [`Real`] — the scalar abstraction the ELBO kernel is generic over,
//!   so the *identical* model code runs in `f64` (production), in
//!   [`Dual`] (gradient verification), in [`Dual2`] (Hessian
//!   verification), and in [`Counting`] (FLOP audit standing in for the
//!   paper's Intel SDE measurements, §VI-B).
//! * [`Dual<N>`] — value plus `N` partials; one evaluation yields an
//!   exact gradient of up to `N` inputs.
//! * [`Dual2`] — hyper-dual number carrying two first-order directions
//!   and the mixed second partial, yielding exact Hessian entries
//!   `vᵀ H w` per evaluation.
//! * [`Counting`] — an `f64` wrapper that increments a thread-local
//!   operation counter on every arithmetic/transcendental op.
//!
//! All types are `Copy` and allocation-free; `Dual<N>` stores its
//! partials inline (`[f64; N]`), matching the paper's StaticArrays
//! idiom.

mod counting;
mod dual;
mod dual2;
mod real;

pub use counting::{op_count, reset_op_count, Counting, OpCounts};
pub use dual::Dual;
pub use dual2::Dual2;
pub use real::Real;

/// Evaluate the gradient of `f` at `x` using dual numbers.
///
/// `N` must be ≥ `x.len()`; unused slots stay zero. Each call evaluates
/// `f` exactly once.
pub fn gradient<const N: usize>(f: impl Fn(&[Dual<N>]) -> Dual<N>, x: &[f64]) -> Vec<f64> {
    assert!(
        x.len() <= N,
        "gradient: input dimension {} exceeds N={}",
        x.len(),
        N
    );
    let inputs: Vec<Dual<N>> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| Dual::variable(v, i))
        .collect();
    let out = f(&inputs);
    out.eps[..x.len()].to_vec()
}

/// Evaluate `vᵀ H(x) w` (a Hessian bilinear form) of `f` at `x` with a
/// single hyper-dual evaluation.
pub fn hessian_bilinear(f: impl Fn(&[Dual2]) -> Dual2, x: &[f64], v: &[f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), v.len());
    assert_eq!(x.len(), w.len());
    let inputs: Vec<Dual2> = x
        .iter()
        .zip(v.iter().zip(w))
        .map(|(&xi, (&vi, &wi))| Dual2::new(xi, vi, wi, 0.0))
        .collect();
    f(&inputs).e12
}

/// Dense Hessian of `f` at `x` via `n(n+1)/2` hyper-dual evaluations.
///
/// Only for tests/verification: production Hessians are hand-coded.
pub fn hessian(f: impl Fn(&[Dual2]) -> Dual2 + Copy, x: &[f64]) -> Vec<Vec<f64>> {
    let n = x.len();
    let mut h = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let mut v = vec![0.0; n];
            let mut w = vec![0.0; n];
            v[i] = 1.0;
            w[j] = 1.0;
            let hij = hessian_bilinear(f, x, &v, &w);
            h[i][j] = hij;
            h[j][i] = hij;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rosenbrock<T: Real>(x: &[T]) -> T {
        // f = (1-x0)² + 100 (x1 - x0²)²
        let one = T::from_f64(1.0);
        let hundred = T::from_f64(100.0);
        let a = one - x[0];
        let b = x[1] - x[0] * x[0];
        a * a + hundred * b * b
    }

    #[test]
    fn gradient_of_rosenbrock() {
        let x = [0.5, -0.3];
        let g = gradient::<2>(rosenbrock, &x);
        // Analytic: df/dx0 = -2(1-x0) - 400 x0 (x1 - x0²); df/dx1 = 200 (x1 - x0²)
        let g0 = -2.0 * (1.0 - 0.5) - 400.0 * 0.5 * (-0.3 - 0.25);
        let g1 = 200.0 * (-0.3 - 0.25);
        assert!((g[0] - g0).abs() < 1e-12);
        assert!((g[1] - g1).abs() < 1e-12);
    }

    #[test]
    fn hessian_of_rosenbrock() {
        let x = [1.2, 0.7];
        let h = hessian(rosenbrock, &x);
        let h00 = 2.0 - 400.0 * (x[1] - 3.0 * x[0] * x[0]);
        let h01 = -400.0 * x[0];
        let h11 = 200.0;
        assert!((h[0][0] - h00).abs() < 1e-10);
        assert!((h[0][1] - h01).abs() < 1e-10);
        assert!((h[1][1] - h11).abs() < 1e-10);
    }

    #[test]
    fn same_generic_code_runs_on_f64() {
        let v = rosenbrock(&[1.0_f64, 1.0]);
        assert_eq!(v, 0.0);
    }
}
