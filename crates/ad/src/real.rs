//! The `Real` scalar abstraction.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar types the Celeste model can be evaluated over.
///
/// The ELBO kernel in `celeste-core` is written once, generically over
/// `Real`, and instantiated with:
///
/// * `f64` — the production path (fully monomorphized, zero overhead),
/// * [`crate::Dual`] / [`crate::Dual2`] — derivative verification,
/// * [`crate::Counting`] — FLOP auditing.
///
/// Comparisons and branching are deliberately value-based
/// ([`Real::value`]): branch decisions (e.g. "is this pixel active")
/// must be identical across instantiations for the audit/verification
/// paths to exercise the same code as production.
pub trait Real:
    Copy
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Lift a constant. Constants carry no derivative information.
    fn from_f64(x: f64) -> Self;

    /// The primal (value) part, discarding derivative information.
    fn value(self) -> f64;

    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn sqrt(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn powi(self, n: i32) -> Self;

    /// `x^y` for real exponent; used only off the hot path.
    fn powf(self, y: f64) -> Self;

    /// Numerically stable `exp(x)/(1+exp(x))`.
    fn sigmoid(self) -> Self {
        let one = Self::from_f64(1.0);
        // Branch on value only — derivative flows through both forms.
        if self.value() >= 0.0 {
            one / (one + (-self).exp())
        } else {
            let e = self.exp();
            e / (one + e)
        }
    }

    /// `ln(1 + exp(x))`, stable for large |x|.
    fn softplus(self) -> Self {
        let one = Self::from_f64(1.0);
        if self.value() > 30.0 {
            // exp(-x) underflows the correction smoothly.
            self + ((-self).exp() + one).ln()
        } else {
            (one + self.exp()).ln()
        }
    }

    /// Zero constant.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }

    /// One constant.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
}

impl Real for f64 {
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn value(self) -> f64 {
        self
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline(always)]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline(always)]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    #[inline(always)]
    fn powf(self, y: f64) -> Self {
        f64::powf(self, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((100.0_f64.sigmoid() - 1.0).abs() < 1e-12);
        assert!((-100.0_f64).sigmoid() < 1e-12);
        assert!((0.0_f64.sigmoid() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((Real::softplus(x) - naive).abs() < 1e-12);
        }
        // Large x: softplus(x) ≈ x.
        assert!((Real::softplus(200.0_f64) - 200.0).abs() < 1e-9);
    }
}
