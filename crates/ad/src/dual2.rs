//! Hyper-dual numbers: exact second derivatives without truncation error.

use crate::Real;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A hyper-dual number `v + ε₁ a + ε₂ b + ε₁ε₂ c` with `ε₁² = ε₂² = 0`.
///
/// Seeding `ε₁` with direction `u` and `ε₂` with direction `w` makes the
/// `e12` component of `f(x + ε₁u + ε₂w)` equal `uᵀ ∇²f(x) w` exactly —
/// no finite-difference step-size tuning. Used to verify the hand-coded
/// 44×44 Hessians in `celeste-core`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dual2 {
    pub val: f64,
    pub e1: f64,
    pub e2: f64,
    pub e12: f64,
}

impl Dual2 {
    #[inline]
    pub fn new(val: f64, e1: f64, e2: f64, e12: f64) -> Self {
        Dual2 { val, e1, e2, e12 }
    }

    #[inline]
    pub fn constant(val: f64) -> Self {
        Dual2::new(val, 0.0, 0.0, 0.0)
    }

    /// Chain rule through a scalar function with first and second
    /// derivatives `d1 = f'(v)`, `d2 = f''(v)`.
    #[inline]
    fn chain(self, fv: f64, d1: f64, d2: f64) -> Self {
        Dual2 {
            val: fv,
            e1: d1 * self.e1,
            e2: d1 * self.e2,
            e12: d1 * self.e12 + d2 * self.e1 * self.e2,
        }
    }
}

impl Add for Dual2 {
    type Output = Self;
    #[inline]
    fn add(self, r: Self) -> Self {
        Dual2::new(
            self.val + r.val,
            self.e1 + r.e1,
            self.e2 + r.e2,
            self.e12 + r.e12,
        )
    }
}

impl Sub for Dual2 {
    type Output = Self;
    #[inline]
    fn sub(self, r: Self) -> Self {
        Dual2::new(
            self.val - r.val,
            self.e1 - r.e1,
            self.e2 - r.e2,
            self.e12 - r.e12,
        )
    }
}

impl Mul for Dual2 {
    type Output = Self;
    #[inline]
    fn mul(self, r: Self) -> Self {
        Dual2::new(
            self.val * r.val,
            self.e1 * r.val + self.val * r.e1,
            self.e2 * r.val + self.val * r.e2,
            self.e12 * r.val + self.e1 * r.e2 + self.e2 * r.e1 + self.val * r.e12,
        )
    }
}

impl Div for Dual2 {
    type Output = Self;
    #[inline]
    fn div(self, r: Self) -> Self {
        // self * r⁻¹ with r⁻¹ via the chain rule (f = 1/x).
        let inv = 1.0 / r.val;
        let rinv = r.chain(inv, -inv * inv, 2.0 * inv * inv * inv);
        self * rinv
    }
}

impl Neg for Dual2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Dual2::new(-self.val, -self.e1, -self.e2, -self.e12)
    }
}

impl AddAssign for Dual2 {
    #[inline]
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl SubAssign for Dual2 {
    #[inline]
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl MulAssign for Dual2 {
    #[inline]
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl Real for Dual2 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        Dual2::constant(x)
    }
    #[inline]
    fn value(self) -> f64 {
        self.val
    }
    #[inline]
    fn exp(self) -> Self {
        let e = self.val.exp();
        self.chain(e, e, e)
    }
    #[inline]
    fn ln(self) -> Self {
        let inv = 1.0 / self.val;
        self.chain(self.val.ln(), inv, -inv * inv)
    }
    #[inline]
    fn sqrt(self) -> Self {
        let s = self.val.sqrt();
        self.chain(s, 0.5 / s, -0.25 / (s * self.val))
    }
    #[inline]
    fn sin(self) -> Self {
        let (s, c) = self.val.sin_cos();
        self.chain(s, c, -s)
    }
    #[inline]
    fn cos(self) -> Self {
        let (s, c) = self.val.sin_cos();
        self.chain(c, -s, -c)
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        let nf = n as f64;
        self.chain(
            self.val.powi(n),
            nf * self.val.powi(n - 1),
            nf * (nf - 1.0) * self.val.powi(n - 2),
        )
    }
    #[inline]
    fn powf(self, y: f64) -> Self {
        self.chain(
            self.val.powf(y),
            y * self.val.powf(y - 1.0),
            y * (y - 1.0) * self.val.powf(y - 2.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// d²/dx² of f at x via a single hyper-dual evaluation.
    fn second(f: impl Fn(Dual2) -> Dual2, x: f64) -> f64 {
        f(Dual2::new(x, 1.0, 1.0, 0.0)).e12
    }

    #[test]
    fn second_derivative_of_cube() {
        // f = x³, f'' = 6x
        let d2 = second(|x| x * x * x, 2.0);
        assert!((d2 - 12.0).abs() < 1e-12);
    }

    #[test]
    fn second_derivative_of_exp() {
        let d2 = second(Real::exp, 1.3);
        assert!((d2 - 1.3_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn second_derivative_of_ln() {
        let d2 = second(Real::ln, 2.0);
        assert!((d2 + 0.25).abs() < 1e-12);
    }

    #[test]
    fn second_derivative_of_reciprocal() {
        // f = 1/x, f'' = 2/x³
        let one = Dual2::constant(1.0);
        let d2 = second(|x| one / x, 2.0);
        assert!((d2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixed_partial_of_product() {
        // f(x,y) = x²y; ∂²f/∂x∂y = 2x
        let x = Dual2::new(3.0, 1.0, 0.0, 0.0);
        let y = Dual2::new(5.0, 0.0, 1.0, 0.0);
        let f = x * x * y;
        assert!((f.e12 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_second_derivative() {
        // f = √x, f'' = −¼ x^{−3/2}
        let d2 = second(Real::sqrt, 4.0);
        assert!((d2 + 0.25 / 8.0).abs() < 1e-13);
    }

    #[test]
    fn sigmoid_second_derivative_matches_formula() {
        let x0 = 0.4_f64;
        let d2 = second(Real::sigmoid, x0);
        let s = 1.0 / (1.0 + (-x0).exp());
        let expected = s * (1.0 - s) * (1.0 - 2.0 * s);
        assert!((d2 - expected).abs() < 1e-12, "{d2} vs {expected}");
    }
}
