//! An op-counting float: the in-process replacement for Intel SDE.
//!
//! The paper measures FLOPs by running one/two active-pixel visits under
//! the Intel Software Development Emulator and counting instructions
//! (§VI-B: 32,317 FLOPs per active-pixel visit). We reproduce the
//! methodology with a `Real` instantiation that counts every floating
//! point operation through the *same generic ELBO code path* as
//! production, then scale runtime FLOP totals by visits counted with
//! atomics.

use crate::Real;
use std::cell::Cell;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

thread_local! {
    static ADDS: Cell<u64> = const { Cell::new(0) };
    static MULS: Cell<u64> = const { Cell::new(0) };
    static DIVS: Cell<u64> = const { Cell::new(0) };
    static TRANSCENDENTAL: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the thread-local operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Additions and subtractions (and negations).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions and square roots.
    pub divs: u64,
    /// exp/ln/sin/cos/pow calls.
    pub transcendental: u64,
}

impl OpCounts {
    /// Total FLOPs using the common convention that a transcendental
    /// call costs `transcendental_weight` flops (the paper's SDE counts
    /// the actual libm instruction mix; 20 is a typical AVX-512 libm
    /// amortized cost and is what our FLOP audit uses).
    pub fn total_weighted(&self, transcendental_weight: u64) -> u64 {
        self.adds + self.muls + self.divs + self.transcendental * transcendental_weight
    }
}

/// Read the current thread's counters.
pub fn op_count() -> OpCounts {
    OpCounts {
        adds: ADDS.with(|c| c.get()),
        muls: MULS.with(|c| c.get()),
        divs: DIVS.with(|c| c.get()),
        transcendental: TRANSCENDENTAL.with(|c| c.get()),
    }
}

/// Zero the current thread's counters.
pub fn reset_op_count() {
    ADDS.with(|c| c.set(0));
    MULS.with(|c| c.set(0));
    DIVS.with(|c| c.set(0));
    TRANSCENDENTAL.with(|c| c.set(0));
}

#[inline]
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>) {
    cell.with(|c| c.set(c.get() + 1));
}

/// An `f64` wrapper that counts arithmetic operations (thread-locally).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Counting(pub f64);

impl Add for Counting {
    type Output = Self;
    #[inline]
    fn add(self, r: Self) -> Self {
        bump(&ADDS);
        Counting(self.0 + r.0)
    }
}
impl Sub for Counting {
    type Output = Self;
    #[inline]
    fn sub(self, r: Self) -> Self {
        bump(&ADDS);
        Counting(self.0 - r.0)
    }
}
impl Mul for Counting {
    type Output = Self;
    #[inline]
    fn mul(self, r: Self) -> Self {
        bump(&MULS);
        Counting(self.0 * r.0)
    }
}
impl Div for Counting {
    type Output = Self;
    #[inline]
    fn div(self, r: Self) -> Self {
        bump(&DIVS);
        Counting(self.0 / r.0)
    }
}
impl Neg for Counting {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        bump(&ADDS);
        Counting(-self.0)
    }
}
impl AddAssign for Counting {
    #[inline]
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl SubAssign for Counting {
    #[inline]
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl MulAssign for Counting {
    #[inline]
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl Real for Counting {
    #[inline]
    fn from_f64(x: f64) -> Self {
        Counting(x)
    }
    #[inline]
    fn value(self) -> f64 {
        self.0
    }
    #[inline]
    fn exp(self) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.exp())
    }
    #[inline]
    fn ln(self) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.ln())
    }
    #[inline]
    fn sqrt(self) -> Self {
        bump(&DIVS);
        Counting(self.0.sqrt())
    }
    #[inline]
    fn sin(self) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.sin())
    }
    #[inline]
    fn cos(self) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.cos())
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.powi(n))
    }
    #[inline]
    fn powf(self, y: f64) -> Self {
        bump(&TRANSCENDENTAL);
        Counting(self.0.powf(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_arithmetic_mix() {
        reset_op_count();
        let a = Counting(2.0);
        let b = Counting(3.0);
        let _ = a + b;
        let _ = a * b;
        let _ = a / b;
        let _ = Real::exp(a);
        let c = op_count();
        assert_eq!(c.adds, 1);
        assert_eq!(c.muls, 1);
        assert_eq!(c.divs, 1);
        assert_eq!(c.transcendental, 1);
        assert_eq!(c.total_weighted(20), 23);
    }

    #[test]
    fn values_match_f64_semantics() {
        reset_op_count();
        let x = Counting(1.5);
        let y = (Real::exp(x) * Counting(2.0)).value();
        assert!((y - 2.0 * 1.5_f64.exp()).abs() < 1e-15);
    }

    #[test]
    fn reset_clears() {
        let _ = Counting(1.0) + Counting(2.0);
        reset_op_count();
        assert_eq!(op_count(), OpCounts::default());
    }
}
