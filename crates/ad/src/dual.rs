//! First-order dual numbers with `N` inline partials.

use crate::Real;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dual number `v + Σᵢ εᵢ ∂ᵢ` carrying `N` partial derivatives.
///
/// The partials array is stored inline (no allocation), mirroring the
/// StaticArrays approach Celeste.jl used for its AD workloads (§V).
#[derive(Clone, Copy, Debug)]
pub struct Dual<const N: usize> {
    /// Primal value.
    pub val: f64,
    /// Partial derivatives with respect to the `N` seeded inputs.
    pub eps: [f64; N],
}

impl<const N: usize> Dual<N> {
    /// A constant (all partials zero).
    #[inline]
    pub fn constant(val: f64) -> Self {
        Dual { val, eps: [0.0; N] }
    }

    /// The `i`-th independent variable: value `val`, `∂ᵢ = 1`.
    #[inline]
    pub fn variable(val: f64, i: usize) -> Self {
        let mut eps = [0.0; N];
        eps[i] = 1.0;
        Dual { val, eps }
    }

    /// Chain rule helper: `f(self)` with `f(val) = fv`, `f'(val) = dfv`.
    #[inline]
    fn chain(self, fv: f64, dfv: f64) -> Self {
        let mut eps = self.eps;
        for e in &mut eps {
            *e *= dfv;
        }
        Dual { val: fv, eps }
    }
}

impl<const N: usize> Add for Dual<N> {
    type Output = Self;
    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        self.val += rhs.val;
        for (a, b) in self.eps.iter_mut().zip(&rhs.eps) {
            *a += b;
        }
        self
    }
}

impl<const N: usize> Sub for Dual<N> {
    type Output = Self;
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        self.val -= rhs.val;
        for (a, b) in self.eps.iter_mut().zip(&rhs.eps) {
            *a -= b;
        }
        self
    }
}

impl<const N: usize> Mul for Dual<N> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut eps = [0.0; N];
        for ((e, &a), &b) in eps.iter_mut().zip(&self.eps).zip(&rhs.eps) {
            *e = a * rhs.val + b * self.val;
        }
        Dual {
            val: self.val * rhs.val,
            eps,
        }
    }
}

impl<const N: usize> Div for Dual<N> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let inv = 1.0 / rhs.val;
        let val = self.val * inv;
        let mut eps = [0.0; N];
        for ((e, &a), &b) in eps.iter_mut().zip(&self.eps).zip(&rhs.eps) {
            *e = (a - val * b) * inv;
        }
        Dual { val, eps }
    }
}

impl<const N: usize> Neg for Dual<N> {
    type Output = Self;
    #[inline]
    fn neg(mut self) -> Self {
        self.val = -self.val;
        for e in &mut self.eps {
            *e = -*e;
        }
        self
    }
}

impl<const N: usize> AddAssign for Dual<N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<const N: usize> SubAssign for Dual<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<const N: usize> MulAssign for Dual<N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const N: usize> Real for Dual<N> {
    #[inline]
    fn from_f64(x: f64) -> Self {
        Dual::constant(x)
    }
    #[inline]
    fn value(self) -> f64 {
        self.val
    }
    #[inline]
    fn exp(self) -> Self {
        let e = self.val.exp();
        self.chain(e, e)
    }
    #[inline]
    fn ln(self) -> Self {
        self.chain(self.val.ln(), 1.0 / self.val)
    }
    #[inline]
    fn sqrt(self) -> Self {
        let s = self.val.sqrt();
        self.chain(s, 0.5 / s)
    }
    #[inline]
    fn sin(self) -> Self {
        self.chain(self.val.sin(), self.val.cos())
    }
    #[inline]
    fn cos(self) -> Self {
        self.chain(self.val.cos(), -self.val.sin())
    }
    #[inline]
    fn powi(self, n: i32) -> Self {
        self.chain(self.val.powi(n), n as f64 * self.val.powi(n - 1))
    }
    #[inline]
    fn powf(self, y: f64) -> Self {
        self.chain(self.val.powf(y), y * self.val.powf(y - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type D = Dual<3>;

    fn d(v: f64, g: [f64; 3]) -> D {
        Dual { val: v, eps: g }
    }

    fn assert_close(a: &D, val: f64, eps: [f64; 3]) {
        assert!((a.val - val).abs() < 1e-12, "val {} vs {}", a.val, val);
        for (x, y) in a.eps.iter().zip(&eps) {
            assert!((x - y).abs() < 1e-12, "eps {:?} vs {:?}", a.eps, eps);
        }
    }

    #[test]
    fn product_rule() {
        let x = D::variable(3.0, 0);
        let y = D::variable(4.0, 1);
        assert_close(&(x * y), 12.0, [4.0, 3.0, 0.0]);
    }

    #[test]
    fn quotient_rule() {
        let x = D::variable(6.0, 0);
        let y = D::variable(2.0, 1);
        // d(x/y) = 1/y dx − x/y² dy
        assert_close(&(x / y), 3.0, [0.5, -1.5, 0.0]);
    }

    #[test]
    fn exp_ln_inverse_derivative() {
        let x = d(1.7, [1.0, 0.0, 0.0]);
        let y = x.exp().ln();
        assert_close(&y, 1.7, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn trig_derivatives() {
        let x = D::variable(0.3, 2);
        let s = x.sin();
        assert!((s.val - 0.3_f64.sin()).abs() < 1e-15);
        assert!((s.eps[2] - 0.3_f64.cos()).abs() < 1e-15);
        let c = x.cos();
        assert!((c.eps[2] + 0.3_f64.sin()).abs() < 1e-15);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let x = D::variable(1.3, 0);
        let p = Real::powi(x, 3);
        let m = x * x * x;
        assert!((p.val - m.val).abs() < 1e-12);
        assert!((p.eps[0] - m.eps[0]).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_derivative() {
        let x = D::variable(0.7, 0);
        let s = Real::sigmoid(x);
        let sv = 1.0 / (1.0 + (-0.7_f64).exp());
        assert!((s.val - sv).abs() < 1e-14);
        assert!((s.eps[0] - sv * (1.0 - sv)).abs() < 1e-14);
    }
}
