//! Source detection: thresholding, connected components, deblending.

use crate::background::Background;
use celeste_survey::Image;

/// A detected peak after deblending: pixel position plus the member
/// pixels assigned to it.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Peak pixel (x, y).
    pub peak: (usize, usize),
    /// Peak amplitude above sky, counts.
    pub peak_counts: f64,
    /// Member pixels (x, y) assigned by the deblender.
    pub pixels: Vec<(usize, usize)>,
}

/// Detection tuning.
#[derive(Debug, Clone, Copy)]
pub struct DetectConfig {
    /// Detection threshold in sky sigmas.
    pub threshold_sigma: f64,
    /// Minimum pixels for a valid object (rejects hot pixels).
    pub min_pixels: usize,
    /// A local maximum must exceed this fraction of the component's
    /// main peak to seed a deblended child.
    pub deblend_min_contrast: f64,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            threshold_sigma: 4.0,
            min_pixels: 4,
            deblend_min_contrast: 0.06,
        }
    }
}

/// Detect sources: threshold at `sky + kσ`, group into 8-connected
/// components, then split each component among its significant local
/// maxima (each above-threshold pixel goes to the nearest maximum).
/// This is Photo's "objects → children" flow in miniature.
pub fn detect(img: &Image, bg: &Background, cfg: &DetectConfig) -> Vec<Detection> {
    let w = img.width;
    let h = img.height;
    let thresh = (bg.level + cfg.threshold_sigma * bg.sigma) as f32;
    // Above-threshold mask and component labels (-1 = background).
    let mut label = vec![-1i32; w * h];
    let mut components: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut stack = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            if img.pixels[idx] < thresh || label[idx] >= 0 {
                continue;
            }
            // Flood-fill a new component.
            let id = components.len() as i32;
            let mut member = Vec::new();
            stack.push((x, y));
            label[idx] = id;
            while let Some((cx, cy)) = stack.pop() {
                member.push((cx, cy));
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = cx as i64 + dx;
                        let ny = cy as i64 + dy;
                        if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                            continue;
                        }
                        let nidx = ny as usize * w + nx as usize;
                        if img.pixels[nidx] >= thresh && label[nidx] < 0 {
                            label[nidx] = id;
                            stack.push((nx as usize, ny as usize));
                        }
                    }
                }
            }
            components.push(member);
        }
    }

    let mut detections = Vec::new();
    for member in components {
        if member.len() < cfg.min_pixels {
            continue;
        }
        detections.extend(deblend(img, bg, &member, cfg));
    }
    detections
}

/// Split one connected component among its significant local maxima.
fn deblend(
    img: &Image,
    bg: &Background,
    member: &[(usize, usize)],
    cfg: &DetectConfig,
) -> Vec<Detection> {
    let w = img.width;
    let value = |x: usize, y: usize| img.pixels[y * w + x] as f64 - bg.level;
    // Local maxima over the 8-neighborhood restricted to the component.
    let in_component: std::collections::HashSet<(usize, usize)> = member.iter().copied().collect();
    let mut maxima: Vec<(usize, usize, f64)> = Vec::new();
    for &(x, y) in member {
        let v = value(x, y);
        let mut is_max = true;
        'scan: for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= w as i64 || ny >= img.height as i64 {
                    continue;
                }
                let (nx, ny) = (nx as usize, ny as usize);
                if in_component.contains(&(nx, ny)) && value(nx, ny) > v {
                    is_max = false;
                    break 'scan;
                }
            }
        }
        if is_max {
            maxima.push((x, y, v));
        }
    }
    let main_peak = maxima.iter().map(|m| m.2).fold(0.0_f64, f64::max);
    // Significant maxima only; also require peaks to be separated by
    // more than the PSF width so noise wiggles don't split stars.
    let min_sep = img.psf.fwhm_px().max(2.0);
    maxima.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    let mut kept: Vec<(usize, usize, f64)> = Vec::new();
    for m in maxima {
        if m.2 < cfg.deblend_min_contrast * main_peak {
            continue;
        }
        let far_enough = kept.iter().all(|k| {
            let dx = k.0 as f64 - m.0 as f64;
            let dy = k.1 as f64 - m.1 as f64;
            (dx * dx + dy * dy).sqrt() >= min_sep
        });
        if far_enough {
            kept.push(m);
        }
    }
    if kept.is_empty() {
        return Vec::new();
    }
    // Assign each member pixel to its nearest kept maximum.
    let mut children: Vec<Detection> = kept
        .iter()
        .map(|&(x, y, v)| Detection {
            peak: (x, y),
            peak_counts: v,
            pixels: Vec::new(),
        })
        .collect();
    for &(x, y) in member {
        let mut best = 0;
        let mut best_d = f64::MAX;
        for (j, &(mx, my, _)) in kept.iter().enumerate() {
            let dx = x as f64 - mx as f64;
            let dy = y as f64 - my as f64;
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        children[best].pixels.push((x, y));
    }
    children.retain(|c| c.pixels.len() >= cfg.min_pixels);
    children
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::estimate_background;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;

    fn image_with_stars(positions: &[(f64, f64)], flux: f64) -> Image {
        let rect = SkyRect::new(0.0, 0.05, 0.0, 0.05);
        let mut img = Image::blank(
            FieldId {
                run: 1,
                camcol: 1,
                field: 0,
            },
            Band::R,
            Wcs::for_rect(&rect, 128, 128),
            128,
            128,
            150.0,
            300.0,
            Psf::single(1.4),
        );
        let entries: Vec<CatalogEntry> = positions
            .iter()
            .enumerate()
            .map(|(i, &(ra, dec))| CatalogEntry {
                id: i as u64,
                pos: SkyCoord::new(ra, dec),
                source_type: SourceType::Star,
                flux_r_nmgy: flux,
                colors: [0.0; 4],
                shape: GalaxyShape::round_disk(1.0),
            })
            .collect();
        render_observed(&Catalog::new(entries), &mut img, 99);
        img
    }

    #[test]
    fn detects_isolated_bright_stars() {
        let img = image_with_stars(&[(0.01, 0.01), (0.04, 0.04)], 30.0);
        let bg = estimate_background(&img);
        let dets = detect(&img, &bg, &DetectConfig::default());
        assert_eq!(dets.len(), 2, "expected 2 detections, got {}", dets.len());
    }

    #[test]
    fn no_detections_in_pure_sky() {
        let img = image_with_stars(&[], 0.0);
        let bg = estimate_background(&img);
        let dets = detect(&img, &bg, &DetectConfig::default());
        assert!(dets.len() <= 1, "false positives: {}", dets.len());
    }

    #[test]
    fn deblends_close_pair() {
        // Two stars ~9 px apart: blended at 4σ isophote but two peaks.
        let sep_deg = 9.0 * (0.05 / 128.0);
        let img = image_with_stars(&[(0.02, 0.02), (0.02 + sep_deg, 0.02)], 60.0);
        let bg = estimate_background(&img);
        let dets = detect(&img, &bg, &DetectConfig::default());
        assert_eq!(dets.len(), 2, "expected deblended pair, got {}", dets.len());
    }

    #[test]
    fn faint_source_below_threshold_is_missed() {
        let img = image_with_stars(&[(0.02, 0.02)], 0.05);
        let bg = estimate_background(&img);
        let dets = detect(&img, &bg, &DetectConfig::default());
        assert!(dets.is_empty(), "0.05 nmgy should be invisible at 4σ");
    }

    #[test]
    fn peak_position_is_near_source() {
        let img = image_with_stars(&[(0.025, 0.015)], 50.0);
        let bg = estimate_background(&img);
        let dets = detect(&img, &bg, &DetectConfig::default());
        assert_eq!(dets.len(), 1);
        let c = img.wcs.sky_to_pix(&SkyCoord::new(0.025, 0.015));
        let (px, py) = dets[0].peak;
        assert!((px as f64 + 0.5 - c[0]).abs() < 2.0);
        assert!((py as f64 + 0.5 - c[1]).abs() < 2.0);
    }
}
