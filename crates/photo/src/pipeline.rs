//! The end-to-end Photo pipeline driver.

use crate::background::{estimate_background, Background};
use crate::classify::{classify, estimate_shape, ClassifyConfig};
use crate::detect::{detect, DetectConfig};
use crate::measure::{
    adaptive_moments, aperture_flux_nmgy, flux_radius, model_aperture_fraction, moments,
};
use celeste_survey::bands::{colors_from_fluxes, NUM_BANDS, REFERENCE_BAND};
use celeste_survey::catalog::{Catalog, CatalogEntry};
use celeste_survey::Image;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhotoConfig {
    pub detect: DetectConfig,
    pub classify: ClassifyConfig,
}

/// Invalid input to the Photo pipeline.
///
/// [`try_run_photo`] reports these instead of panicking; the legacy
/// [`run_photo`] wrapper panics with the same messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhotoError {
    /// Two images of the same band were passed for one field.
    DuplicateBand(celeste_survey::bands::Band),
    /// No r-band image: detection has nothing to run on.
    MissingReferenceBand,
}

impl std::fmt::Display for PhotoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhotoError::DuplicateBand(b) => write!(f, "duplicate band {b}"),
            PhotoError::MissingReferenceBand => write!(f, "r-band image required"),
        }
    }
}

impl std::error::Error for PhotoError {}

/// Run Photo over one field: `images` must hold exactly one image per
/// band (any order). Detection runs on the r band; photometry is forced
/// at the detected positions in every band. Returns the estimated
/// catalog.
///
/// Note the deliberate heuristic limitation the paper calls out (§I):
/// Photo uses *one* image per band — repeat exposures are ignored
/// unless they were first combined into a coadd.
///
/// Panics on a duplicate band or a missing r band; the non-panicking
/// form is [`try_run_photo`].
pub fn run_photo(images: &[&Image], cfg: &PhotoConfig) -> Catalog {
    match try_run_photo(images, cfg) {
        Ok(catalog) => catalog,
        Err(e) => panic!("run_photo: {e}"),
    }
}

/// [`run_photo`] with invalid input reported as a [`PhotoError`]
/// instead of a panic (the form the `celeste` facade calls).
pub fn try_run_photo(images: &[&Image], cfg: &PhotoConfig) -> Result<Catalog, PhotoError> {
    let mut by_band: [Option<&Image>; NUM_BANDS] = [None; NUM_BANDS];
    for img in images {
        let slot = &mut by_band[img.band.index()];
        if slot.is_some() {
            return Err(PhotoError::DuplicateBand(img.band));
        }
        *slot = Some(img);
    }
    let r_img = by_band[REFERENCE_BAND].ok_or(PhotoError::MissingReferenceBand)?;

    let r_bg = estimate_background(r_img);
    let backgrounds: [Option<Background>; NUM_BANDS] = {
        let mut b: [Option<Background>; NUM_BANDS] = [None; NUM_BANDS];
        for (i, img) in by_band.iter().enumerate() {
            b[i] = img.map(estimate_background);
        }
        b
    };

    let psf_sigma = r_img
        .psf
        .components
        .iter()
        .map(|c| c.sigma_px)
        .fold(0.0_f64, f64::max);
    let detections = detect(r_img, &r_bg, &cfg.detect);
    let mut entries = Vec::with_capacity(detections.len());
    for (i, det) in detections.iter().enumerate() {
        // Seed centroid from the member pixels, then refine size and
        // center with adaptive aperture moments (isophote truncation
        // otherwise biases sizes below the PSF).
        let seed = moments(r_img, &r_bg, &det.pixels);
        if seed.counts <= 0.0 {
            continue;
        }
        let m = adaptive_moments(r_img, &r_bg, seed.cx, seed.cy, psf_sigma);
        if m.counts <= 0.0 {
            continue;
        }
        let pos = r_img.wcs.pix_to_sky(m.cx, m.cy);
        // Aperture scale: generous for extended sources.
        let r50 = flux_radius(r_img, &r_bg, &pos, 0.5, 16.0);
        let r90 = flux_radius(r_img, &r_bg, &pos, 0.9, 16.0);
        let concentration = r90 / r50.max(0.3);
        let ap_radius = (3.0 * r50).clamp(4.0, 16.0);

        // Forced aperture photometry per band, corrected to total flux
        // with the measured-object model (Photo's "model photometry"):
        // wing loss outside the aperture is estimated from a Gaussian
        // of the source's measured size convolved with the PSF.
        let psf_var = 0.5 * (m.ixx + m.iyy) - 0.0; // observed variance
        let obj_var = (psf_var
            - r_img
                .psf
                .components
                .iter()
                .map(|c| c.weight * c.sigma_px * c.sigma_px)
                .sum::<f64>()
                / r_img.psf.total_weight())
        .max(0.0);
        let mut fluxes = [0.0f64; NUM_BANDS];
        for b in 0..NUM_BANDS {
            if let (Some(img), Some(bg)) = (by_band[b], backgrounds[b].as_ref()) {
                let correction = model_aperture_fraction(&img.psf, obj_var, ap_radius).max(0.2);
                fluxes[b] = aperture_flux_nmgy(img, bg, &pos, ap_radius) / correction;
            }
        }
        // Clamp nonpositive fluxes so colors stay defined (Photo's
        // "asinh magnitudes" solve this differently; a floor is enough
        // for error metrics).
        for f in &mut fluxes {
            *f = f.max(1e-3);
        }
        let (flux_r, colors) = colors_from_fluxes(&fluxes);

        let source_type = classify(&m, concentration, &r_img.psf, &cfg.classify);
        let shape = estimate_shape(
            &m,
            concentration,
            &r_img.psf,
            r_img.wcs.pixel_scale_arcsec(),
            &cfg.classify,
        );
        entries.push(CatalogEntry {
            id: i as u64,
            pos,
            source_type,
            flux_r_nmgy: flux_r,
            colors,
            shape,
        });
    }
    Ok(Catalog::new(entries))
}

/// Convenience: run Photo when images are owned (e.g. fresh coadds).
pub fn run_photo_owned(images: &[Image], cfg: &PhotoConfig) -> Catalog {
    let refs: Vec<&Image> = images.iter().collect();
    run_photo(&refs, cfg)
}

/// Fraction of `truth` entries with a `fitted` match within
/// `radius_arcsec` — the completeness of a catalog.
pub fn completeness(truth: &Catalog, fitted: &Catalog, radius_arcsec: f64) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let matched = truth
        .entries
        .iter()
        .filter(|t| {
            fitted
                .nearest(&t.pos)
                .map(|(_, sep)| sep <= radius_arcsec)
                .unwrap_or(false)
        })
        .count();
    matched as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;

    /// One field, five bands, containing the given truth entries.
    fn render_scene(truth: &Catalog, seed: u64) -> Vec<Image> {
        let rect = SkyRect::new(0.0, 0.05, 0.0, 0.05);
        Band::ALL
            .iter()
            .map(|&band| {
                let mut img = Image::blank(
                    FieldId {
                        run: 1,
                        camcol: 1,
                        field: 0,
                    },
                    band,
                    Wcs::for_rect(&rect, 128, 128),
                    128,
                    128,
                    150.0,
                    300.0,
                    Psf::single(1.4),
                );
                render_observed(truth, &mut img, seed + band.index() as u64);
                img
            })
            .collect()
    }

    fn bright_star(id: u64, ra: f64, dec: f64, flux: f64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(ra, dec),
            source_type: SourceType::Star,
            flux_r_nmgy: flux,
            colors: [0.3, 0.2, 0.1, 0.05],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    #[test]
    fn recovers_bright_star_photometry() {
        let truth = Catalog::new(vec![bright_star(0, 0.025, 0.025, 30.0)]);
        let images = render_scene(&truth, 11);
        let cat = run_photo_owned(&images, &PhotoConfig::default());
        assert_eq!(cat.len(), 1);
        let e = &cat.entries[0];
        assert_eq!(e.source_type, SourceType::Star);
        assert!((e.flux_r_nmgy - 30.0).abs() < 3.0, "flux {}", e.flux_r_nmgy);
        assert!(e.pos.sep_arcsec(&truth.entries[0].pos) < 0.5);
        // Colors within noise.
        for (got, want) in e.colors.iter().zip(&truth.entries[0].colors) {
            assert!((got - want).abs() < 0.25, "color {got} vs {want}");
        }
    }

    #[test]
    fn classifies_large_galaxy() {
        let truth = Catalog::new(vec![CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.025, 0.025),
            source_type: SourceType::Galaxy,
            flux_r_nmgy: 60.0,
            colors: [0.3, 0.2, 0.1, 0.05],
            shape: GalaxyShape {
                frac_dev: 0.0,
                axis_ratio: 0.5,
                angle_rad: 0.5,
                radius_arcsec: 3.0,
            },
        }]);
        let images = render_scene(&truth, 13);
        let cat = run_photo_owned(&images, &PhotoConfig::default());
        assert!(!cat.is_empty());
        let (e, sep) = cat.nearest(&truth.entries[0].pos).unwrap();
        assert!(sep < 2.0);
        assert_eq!(e.source_type, SourceType::Galaxy);
        assert!(e.shape.axis_ratio < 0.85, "q {}", e.shape.axis_ratio);
    }

    #[test]
    fn completeness_rises_with_flux() {
        let faint = Catalog::new(vec![bright_star(0, 0.015, 0.015, 0.3)]);
        let bright = Catalog::new(vec![bright_star(0, 0.015, 0.015, 30.0)]);
        let cat_faint = run_photo_owned(&render_scene(&faint, 5), &PhotoConfig::default());
        let cat_bright = run_photo_owned(&render_scene(&bright, 5), &PhotoConfig::default());
        let c_faint = completeness(&faint, &cat_faint, 2.0);
        let c_bright = completeness(&bright, &cat_bright, 2.0);
        assert!(c_bright >= c_faint);
        assert_eq!(c_bright, 1.0);
    }

    #[test]
    #[should_panic(expected = "r-band image required")]
    fn missing_reference_band_panics() {
        let truth = Catalog::new(vec![bright_star(0, 0.025, 0.025, 10.0)]);
        let images = render_scene(&truth, 2);
        let no_r: Vec<&Image> = images.iter().filter(|i| i.band != Band::R).collect();
        let _ = run_photo(&no_r, &PhotoConfig::default());
    }

    #[test]
    fn try_run_photo_reports_typed_errors() {
        let truth = Catalog::new(vec![bright_star(0, 0.025, 0.025, 10.0)]);
        let images = render_scene(&truth, 2);
        let cfg = PhotoConfig::default();

        let no_r: Vec<&Image> = images.iter().filter(|i| i.band != Band::R).collect();
        assert_eq!(
            try_run_photo(&no_r, &cfg).unwrap_err(),
            PhotoError::MissingReferenceBand
        );

        let mut dup: Vec<&Image> = images.iter().collect();
        dup.push(&images[Band::G.index()]);
        assert_eq!(
            try_run_photo(&dup, &cfg).unwrap_err(),
            PhotoError::DuplicateBand(Band::G)
        );

        // Valid input through the fallible form matches the panicking
        // wrapper exactly.
        let refs: Vec<&Image> = images.iter().collect();
        let a = try_run_photo(&refs, &cfg).unwrap();
        let b = run_photo(&refs, &cfg);
        assert_eq!(a.entries, b.entries);
    }
}
