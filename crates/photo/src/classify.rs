//! Star/galaxy classification and galaxy shape estimation.

use crate::measure::Moments;
use celeste_survey::catalog::{GalaxyShape, SourceType};
use celeste_survey::psf::Psf;

/// Classification / shape heuristics, tuned like Photo: thresholds are
/// fixed constants, not fit to data.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyConfig {
    /// A source is a galaxy if its deconvolved per-axis sigma exceeds
    /// this fraction of the PSF sigma. (The aperture concentration
    /// index turns out to be nearly useless once a small galaxy is
    /// convolved with the PSF — r90/r50 of a 2-pixel exponential lands
    /// *below* the pure-PSF value — so, like Photo's star/galaxy
    /// separator, the decision is purely size-based.)
    pub size_ratio_threshold: f64,
    /// Concentration (r90/r50) mapped to frac_dev = 0 (≈ PSF-convolved
    /// exponential disk).
    pub conc_exp: f64,
    /// Concentration mapped to frac_dev = 1 (≈ PSF-convolved deV).
    pub conc_dev: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            size_ratio_threshold: 0.30,
            conc_exp: 1.9,
            conc_dev: 2.9,
        }
    }
}

/// Star/galaxy decision from moments, Photo-style: compare the
/// PSF-deconvolved size with the PSF itself.
pub fn classify(m: &Moments, _concentration: f64, psf: &Psf, cfg: &ClassifyConfig) -> SourceType {
    let psf_var = psf_variance(psf);
    let mean_var = 0.5 * (m.ixx + m.iyy);
    let decon = (mean_var - psf_var).max(0.0);
    let size_ratio = (decon / psf_var).sqrt();
    if size_ratio > cfg.size_ratio_threshold {
        SourceType::Galaxy
    } else {
        SourceType::Star
    }
}

/// Galaxy shape from moments: PSF-deconvolved axis lengths give the
/// axis ratio and scale; concentration maps linearly to the deV
/// fraction between the exp and deV calibration points.
pub fn estimate_shape(
    m: &Moments,
    concentration: f64,
    psf: &Psf,
    pixel_scale_arcsec: f64,
    cfg: &ClassifyConfig,
) -> GalaxyShape {
    let psf_var = psf_variance(psf);
    let (l1, l2, angle) = m.principal_axes();
    let major = (l1 - psf_var).max(1e-3);
    let minor = (l2 - psf_var).max(1e-3);
    let axis_ratio = (minor / major).sqrt().clamp(0.05, 1.0);
    // Calibrated against noiseless renders measured with the
    // Gaussian-weighted adaptive moments: deconvolved per-axis sigma
    // ≈ 0.80 r_e for an exponential disk and ≈ 0.51 r_e for deV, so
    // 1.3× the major sigma is a serviceable r_e estimate for typical
    // profile mixes.
    let radius_arcsec = (1.3 * major.sqrt() * pixel_scale_arcsec).clamp(0.05, 30.0);
    let frac_dev = ((concentration - cfg.conc_exp) / (cfg.conc_dev - cfg.conc_exp)).clamp(0.0, 1.0);
    GalaxyShape {
        frac_dev,
        axis_ratio,
        angle_rad: angle,
        radius_arcsec,
    }
}

fn psf_variance(psf: &Psf) -> f64 {
    psf.components
        .iter()
        .map(|c| c.weight * c.sigma_px * c.sigma_px)
        .sum::<f64>()
        / psf.total_weight()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_moments(var: f64) -> Moments {
        Moments {
            cx: 0.0,
            cy: 0.0,
            ixx: var,
            ixy: 0.0,
            iyy: var,
            counts: 1000.0,
        }
    }

    #[test]
    fn psf_sized_source_is_star() {
        let psf = Psf::single(1.4);
        let m = point_moments(1.96); // exactly PSF-sized
        assert_eq!(
            classify(&m, 1.82, &psf, &ClassifyConfig::default()),
            SourceType::Star
        );
    }

    #[test]
    fn extended_diffuse_source_is_galaxy() {
        let psf = Psf::single(1.4);
        let m = point_moments(6.0); // much larger than PSF
        assert_eq!(
            classify(&m, 2.5, &psf, &ClassifyConfig::default()),
            SourceType::Galaxy
        );
    }

    #[test]
    fn marginally_resolved_source_stays_star() {
        // Deconvolved size just under the threshold: noise-level excess
        // moments must not flip stars to galaxies.
        let psf = Psf::single(1.4);
        let m = point_moments(1.96 * 1.05);
        assert_eq!(
            classify(&m, 1.8, &psf, &ClassifyConfig::default()),
            SourceType::Star
        );
    }

    #[test]
    fn shape_recovers_axis_ratio_and_angle() {
        let psf = Psf::single(1.0);
        // Intrinsic: major var 9, minor var 2.25 (q = 0.5), angle 0;
        // observed adds PSF var 1.
        let m = Moments {
            cx: 0.0,
            cy: 0.0,
            ixx: 10.0,
            ixy: 0.0,
            iyy: 3.25,
            counts: 1.0,
        };
        let s = estimate_shape(&m, 2.2, &psf, 0.4, &ClassifyConfig::default());
        assert!((s.axis_ratio - 0.5).abs() < 0.02, "q {}", s.axis_ratio);
        assert!(s.angle_rad < 0.05 || (std::f64::consts::PI - s.angle_rad) < 0.05);
        assert!(
            (s.radius_arcsec - 1.3 * 3.0 * 0.4).abs() < 0.1,
            "r_e {}",
            s.radius_arcsec
        );
    }

    #[test]
    fn frac_dev_interpolates_concentration() {
        let psf = Psf::single(1.0);
        let m = point_moments(4.0);
        let cfg = ClassifyConfig::default();
        let lo = estimate_shape(&m, cfg.conc_exp, &psf, 0.4, &cfg);
        let hi = estimate_shape(&m, cfg.conc_dev, &psf, 0.4, &cfg);
        let mid = estimate_shape(&m, 0.5 * (cfg.conc_exp + cfg.conc_dev), &psf, 0.4, &cfg);
        assert_eq!(lo.frac_dev, 0.0);
        assert_eq!(hi.frac_dev, 1.0);
        assert!((mid.frac_dev - 0.5).abs() < 1e-12);
    }
}
