//! Sky background estimation by iterative sigma clipping.

use celeste_survey::Image;

/// Estimated background statistics for an image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Background {
    /// Sky level, counts per pixel.
    pub level: f64,
    /// Per-pixel noise standard deviation.
    pub sigma: f64,
}

/// Estimate the sky by sigma-clipped mean/variance: sources occupy a
/// small pixel fraction, so iteratively discarding > `clip`σ outliers
/// converges to the sky statistics. This mirrors Photo's "binned sky"
/// step without the spline interpolation (our synthetic sky is flat
/// per image).
pub fn estimate_background(img: &Image) -> Background {
    estimate_from_samples(&img.pixels)
}

/// Core routine on raw samples (exposed for tests and sub-regions).
pub fn estimate_from_samples(samples: &[f32]) -> Background {
    assert!(!samples.is_empty(), "background of empty image");
    let mut lo = f64::MIN;
    let mut hi = f64::MAX;
    let mut mean = 0.0;
    let mut sd = 0.0;
    for _round in 0..8 {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for &p in samples {
            let v = p as f64;
            if v >= lo && v <= hi {
                n += 1;
                sum += v;
                sumsq += v * v;
            }
        }
        if n < 8 {
            break;
        }
        mean = sum / n as f64;
        sd = (sumsq / n as f64 - mean * mean).max(0.0).sqrt();
        let clip = 3.0;
        let (new_lo, new_hi) = (mean - clip * sd, mean + clip * sd);
        if (new_lo - lo).abs() < 1e-9 && (new_hi - hi).abs() < 1e-9 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    Background {
        level: mean,
        sigma: sd.max(1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_noise_recovers_moments() {
        // Deterministic pseudo-Poisson-ish noise around 100.
        let samples: Vec<f32> = (0..10_000)
            .map(|i| {
                let u = ((i * 2654435761u64 as usize) % 1000) as f32 / 1000.0;
                100.0 + (u - 0.5) * 20.0 // uniform ±10, sd ≈ 5.77
            })
            .collect();
        let bg = estimate_from_samples(&samples);
        assert!((bg.level - 100.0).abs() < 0.5, "level {}", bg.level);
        assert!((bg.sigma - 5.77).abs() < 0.5, "sigma {}", bg.sigma);
    }

    #[test]
    fn bright_outliers_are_clipped() {
        let mut samples: Vec<f32> = (0..10_000)
            .map(|i| 100.0 + (((i * 7919) % 100) as f32 / 100.0 - 0.5) * 12.0)
            .collect();
        // Contaminate 2% of pixels with a bright source.
        for i in 0..200 {
            samples[i * 50] = 5_000.0;
        }
        let bg = estimate_from_samples(&samples);
        assert!(
            (bg.level - 100.0).abs() < 2.0,
            "sigma clipping failed: level {}",
            bg.level
        );
    }

    #[test]
    fn constant_image_gives_zero_sigma_floor() {
        let samples = vec![42.0f32; 100];
        let bg = estimate_from_samples(&samples);
        assert!((bg.level - 42.0).abs() < 1e-9);
        assert!(bg.sigma <= 1e-5);
    }
}
