//! Catalog-vs-truth error metrics — the twelve rows of Table II.

use celeste_survey::bands::nmgy_to_mag;
use celeste_survey::catalog::Catalog;

/// Magnitudes per natural-log flux ratio (colors are stored as ln
/// ratios; the paper reports color errors in magnitudes).
const MAG_PER_LN: f64 = 2.5 / std::f64::consts::LN_10;

/// One metric row: the mean error and its standard error, plus the
/// number of matched sources contributing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorRow {
    pub mean: f64,
    pub std_err: f64,
    pub n: usize,
}

impl ErrorRow {
    fn from_samples(samples: &[f64]) -> ErrorRow {
        let n = samples.len();
        if n == 0 {
            return ErrorRow::default();
        }
        let mean = celeste_linalg::vecops::mean(samples);
        let sd = celeste_linalg::vecops::variance(samples).sqrt();
        ErrorRow {
            mean,
            std_err: sd / (n as f64).sqrt(),
            n,
        }
    }

    /// Whether this row beats `other` by more than two (pooled)
    /// standard errors — the paper's boldface criterion.
    pub fn significantly_better_than(&self, other: &ErrorRow) -> bool {
        let pooled = (self.std_err.powi(2) + other.std_err.powi(2)).sqrt();
        other.mean - self.mean > 2.0 * pooled
    }
}

/// All Table II rows for one method.
#[derive(Debug, Clone, Default)]
pub struct TableII {
    /// Position error, pixels.
    pub position: ErrorRow,
    /// Fraction of true galaxies labeled star.
    pub missed_gals: ErrorRow,
    /// Fraction of true stars labeled galaxy.
    pub missed_stars: ErrorRow,
    /// |Δ r-band magnitude|.
    pub brightness: ErrorRow,
    /// |Δ color| per adjacent-band pair, magnitudes.
    pub colors: [ErrorRow; 4],
    /// |Δ frac_dev| (proportion), galaxies only.
    pub profile: ErrorRow,
    /// |Δ (1 − axis ratio)|, galaxies only.
    pub eccentricity: ErrorRow,
    /// |Δ half-light radius|, pixels, galaxies only.
    pub scale: ErrorRow,
    /// |Δ position angle|, degrees (mod 180°), galaxies only.
    pub angle: ErrorRow,
}

impl TableII {
    /// Rows as (name, row) pairs in the paper's order.
    pub fn rows(&self) -> Vec<(&'static str, ErrorRow)> {
        let mut v = vec![
            ("Position", self.position),
            ("Missed gals", self.missed_gals),
            ("Missed stars", self.missed_stars),
            ("Brightness", self.brightness),
            ("Color u-g", self.colors[0]),
            ("Color g-r", self.colors[1]),
            ("Color r-i", self.colors[2]),
            ("Color i-z", self.colors[3]),
        ];
        v.push(("Profile", self.profile));
        v.push(("Eccentricity", self.eccentricity));
        v.push(("Scale", self.scale));
        v.push(("Angle", self.angle));
        v
    }
}

/// Matching and scoring configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Maximum truth↔estimate separation counted as a match.
    pub match_radius_arcsec: f64,
    /// Pixel scale used to express position/scale errors in pixels.
    pub pixel_scale_arcsec: f64,
    /// Only truth sources at least this bright (r band, nmgy)
    /// participate — the paper validates against well-detected sources.
    pub min_flux_nmgy: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            match_radius_arcsec: 2.0,
            pixel_scale_arcsec: 1.4,
            min_flux_nmgy: 3.0,
        }
    }
}

/// Compare a fitted catalog to truth and compute every Table II row.
/// Unmatched truth sources contribute only to the classification rows
/// (as misses they cannot: they are skipped entirely, as in the paper's
/// matched-source protocol).
pub fn compare_catalogs(truth: &Catalog, fitted: &Catalog, cfg: &CompareConfig) -> TableII {
    let mut position = Vec::new();
    let mut missed_gals = Vec::new();
    let mut missed_stars = Vec::new();
    let mut brightness = Vec::new();
    let mut colors: [Vec<f64>; 4] = Default::default();
    let mut profile = Vec::new();
    let mut eccentricity = Vec::new();
    let mut scale = Vec::new();
    let mut angle = Vec::new();

    for t in &truth.entries {
        if t.flux_r_nmgy < cfg.min_flux_nmgy {
            continue;
        }
        let Some((e, sep)) = fitted.nearest(&t.pos) else {
            continue;
        };
        if sep > cfg.match_radius_arcsec {
            continue;
        }
        position.push(sep / cfg.pixel_scale_arcsec);
        if t.is_star() {
            missed_stars.push(f64::from(!e.is_star()));
        } else {
            missed_gals.push(f64::from(e.is_star()));
        }
        brightness.push((nmgy_to_mag(e.flux_r_nmgy) - nmgy_to_mag(t.flux_r_nmgy)).abs());
        for i in 0..4 {
            colors[i].push((e.colors[i] - t.colors[i]).abs() * MAG_PER_LN);
        }
        if !t.is_star() {
            profile.push((e.shape.frac_dev - t.shape.frac_dev).abs());
            eccentricity.push((e.shape.axis_ratio - t.shape.axis_ratio).abs());
            scale.push(
                (e.shape.radius_arcsec - t.shape.radius_arcsec).abs() / cfg.pixel_scale_arcsec,
            );
            angle.push(angle_diff_deg(e.shape.angle_rad, t.shape.angle_rad));
        }
    }

    TableII {
        position: ErrorRow::from_samples(&position),
        missed_gals: ErrorRow::from_samples(&missed_gals),
        missed_stars: ErrorRow::from_samples(&missed_stars),
        brightness: ErrorRow::from_samples(&brightness),
        colors: [
            ErrorRow::from_samples(&colors[0]),
            ErrorRow::from_samples(&colors[1]),
            ErrorRow::from_samples(&colors[2]),
            ErrorRow::from_samples(&colors[3]),
        ],
        profile: ErrorRow::from_samples(&profile),
        eccentricity: ErrorRow::from_samples(&eccentricity),
        scale: ErrorRow::from_samples(&scale),
        angle: ErrorRow::from_samples(&angle),
    }
}

/// Angular difference in degrees, accounting for the 180° degeneracy of
/// a position angle.
fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let pi = std::f64::consts::PI;
    let mut d = (a - b).rem_euclid(pi);
    if d > pi / 2.0 {
        d = pi - d;
    }
    d.to_degrees()
}

/// Render the two-method comparison as a Table II-style text table.
pub fn format_table(photo: &TableII, celeste: &TableII) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>10} {:>10}   (bold = better by > 2 s.e.)\n",
        "", "Photo", "Celeste"
    ));
    for ((name, p), (_, c)) in photo.rows().into_iter().zip(celeste.rows()) {
        let mark = if c.significantly_better_than(&p) {
            "  ** Celeste"
        } else if p.significantly_better_than(&c) {
            "  ** Photo"
        } else {
            ""
        };
        out.push_str(&format!(
            "{name:<14} {:>10.3} {:>10.3}{mark}\n",
            p.mean, c.mean
        ));
    }
    out
}

/// Identity comparison helper for tests: a catalog scored against
/// itself has zero error everywhere.
pub fn is_all_zero(t: &TableII) -> bool {
    t.rows().iter().all(|(_, r)| r.mean == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn entry(id: u64, ra: f64, star: bool, flux: f64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(ra, 0.0),
            source_type: if star {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: flux,
            colors: [0.5, 0.3, 0.2, 0.1],
            shape: GalaxyShape {
                frac_dev: 0.4,
                axis_ratio: 0.7,
                angle_rad: 1.0,
                radius_arcsec: 2.0,
            },
        }
    }

    #[test]
    fn self_comparison_is_zero_error() {
        let cat = Catalog::new(vec![entry(0, 0.0, true, 5.0), entry(1, 0.01, false, 7.0)]);
        let t = compare_catalogs(&cat, &cat, &CompareConfig::default());
        assert!(is_all_zero(&t), "{t:?}");
        assert_eq!(t.position.n, 2);
        assert_eq!(t.profile.n, 1); // galaxies only
    }

    #[test]
    fn misclassification_counted_per_true_class() {
        let truth = Catalog::new(vec![entry(0, 0.0, true, 5.0), entry(1, 0.01, false, 5.0)]);
        let mut fitted = truth.clone();
        fitted.entries[0].source_type = SourceType::Galaxy; // star → galaxy
        let t = compare_catalogs(&truth, &fitted, &CompareConfig::default());
        assert_eq!(t.missed_stars.mean, 1.0);
        assert_eq!(t.missed_gals.mean, 0.0);
    }

    #[test]
    fn faint_sources_excluded() {
        let truth = Catalog::new(vec![entry(0, 0.0, true, 0.2)]);
        let t = compare_catalogs(&truth, &truth, &CompareConfig::default());
        assert_eq!(t.position.n, 0);
    }

    #[test]
    fn unmatched_sources_skipped() {
        let truth = Catalog::new(vec![entry(0, 0.0, true, 5.0)]);
        let fitted = Catalog::new(vec![entry(0, 0.5, true, 5.0)]); // 1800 arcsec away
        let t = compare_catalogs(&truth, &fitted, &CompareConfig::default());
        assert_eq!(t.position.n, 0);
    }

    #[test]
    fn angle_degeneracy_mod_180() {
        assert!(angle_diff_deg(0.05, std::f64::consts::PI - 0.05) < 6.0);
        assert!((angle_diff_deg(0.0, std::f64::consts::FRAC_PI_2) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn significance_requires_two_sigma() {
        let a = ErrorRow {
            mean: 1.0,
            std_err: 0.1,
            n: 100,
        };
        let b = ErrorRow {
            mean: 0.5,
            std_err: 0.1,
            n: 100,
        };
        assert!(b.significantly_better_than(&a));
        assert!(!a.significantly_better_than(&b));
        let close = ErrorRow {
            mean: 0.9,
            std_err: 0.1,
            n: 100,
        };
        assert!(!close.significantly_better_than(&a));
    }
}
