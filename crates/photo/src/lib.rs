#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // lockstep-indexed numeric kernels
//! A "Photo"-like heuristic cataloging pipeline (DESIGN.md S6).
//!
//! The paper's baseline comparator is SDSS Photo [Lupton et al. 2005],
//! "a carefully hand-tuned heuristic" (§VIII). This crate implements
//! the classic pipeline stages from scratch:
//!
//! 1. [`background`] — sigma-clipped sky estimation;
//! 2. [`detect`] — matched-filter thresholding, connected components,
//!    and local-maximum deblending;
//! 3. [`measure`] — flux-weighted centroids, adaptive second moments,
//!    and circular-aperture photometry;
//! 4. [`classify`] — star/galaxy separation by PSF-deconvolved size and
//!    concentration, plus profile/shape estimation;
//! 5. [`pipeline`] — the end-to-end driver producing a
//!    [`celeste_survey::Catalog`];
//! 6. [`compare`] — catalog-vs-truth error metrics: exactly the twelve
//!    rows of the paper's Table II.
//!
//! Photo serves two roles in the reproduction, as in the paper: run on
//! deep coadds it *defines* the Stripe-82 ground truth; run on
//! single-epoch imagery it is the baseline Celeste must beat.

pub mod background;
pub mod classify;
pub mod compare;
pub mod detect;
pub mod measure;
pub mod pipeline;

pub use compare::{compare_catalogs, ErrorRow, TableII};
pub use pipeline::{run_photo, try_run_photo, PhotoConfig, PhotoError};
