//! Centroids, second moments, and aperture photometry.

use crate::background::Background;
use celeste_survey::skygeom::SkyCoord;
use celeste_survey::Image;

/// Flux-weighted centroid and second central moments of a detection.
#[derive(Debug, Clone, Copy)]
pub struct Moments {
    /// Centroid in pixel coordinates.
    pub cx: f64,
    pub cy: f64,
    /// Second central moments, pixel².
    pub ixx: f64,
    pub ixy: f64,
    pub iyy: f64,
    /// Total sky-subtracted counts over the member pixels.
    pub counts: f64,
}

impl Moments {
    /// Eigen-decomposition of the 2×2 moment matrix: (λ_major, λ_minor,
    /// position angle radians in [0, π)).
    pub fn principal_axes(&self) -> (f64, f64, f64) {
        let tr = self.ixx + self.iyy;
        let d = self.ixx - self.iyy;
        let disc = (d * d + 4.0 * self.ixy * self.ixy).sqrt();
        let l1 = 0.5 * (tr + disc);
        let l2 = 0.5 * (tr - disc);
        let mut angle = 0.5 * (2.0 * self.ixy).atan2(d);
        if angle < 0.0 {
            angle += std::f64::consts::PI;
        }
        (l1.max(0.0), l2.max(0.0), angle)
    }
}

/// Compute moments over a pixel set (sky-subtracted, negatives
/// clamped to zero so noise cannot produce negative weights).
pub fn moments(img: &Image, bg: &Background, pixels: &[(usize, usize)]) -> Moments {
    let mut counts = 0.0;
    let mut sx = 0.0;
    let mut sy = 0.0;
    for &(x, y) in pixels {
        let v = (img.get(x, y) as f64 - bg.level).max(0.0);
        counts += v;
        sx += v * (x as f64 + 0.5);
        sy += v * (y as f64 + 0.5);
    }
    if counts <= 0.0 {
        let (x, y) = pixels.first().copied().unwrap_or((0, 0));
        return Moments {
            cx: x as f64,
            cy: y as f64,
            ixx: 0.0,
            ixy: 0.0,
            iyy: 0.0,
            counts: 0.0,
        };
    }
    let cx = sx / counts;
    let cy = sy / counts;
    let (mut ixx, mut ixy, mut iyy) = (0.0, 0.0, 0.0);
    for &(x, y) in pixels {
        let v = (img.get(x, y) as f64 - bg.level).max(0.0);
        let dx = x as f64 + 0.5 - cx;
        let dy = y as f64 + 0.5 - cy;
        ixx += v * dx * dx;
        ixy += v * dx * dy;
        iyy += v * dy * dy;
    }
    Moments {
        cx,
        cy,
        ixx: ixx / counts,
        ixy: ixy / counts,
        iyy: iyy / counts,
        counts,
    }
}

/// Gaussian-weighted adaptive moments (Photo's adaptive moments; the
/// HSM scheme): iterate an isotropic Gaussian weight whose width
/// tracks the object, then deconvolve the weight analytically.
///
/// Detection-isophote moments truncate low-surface-brightness wings so
/// badly that sizes fall below the PSF; unweighted apertures are
/// biased the other way by clamped noise. A matched Gaussian weight
/// `w(d) = exp(−d²/2σ_w²)` measures, for a Gaussian object of variance
/// `v`, `m = v·σ_w²/(v + σ_w²)`, so the intrinsic size is recovered as
/// `v = m·σ_w²/(σ_w² − m)` and the weight updated until matched.
/// Sky-subtracted values are *not* clamped: under the decaying weight,
/// noise cancels instead of accumulating.
pub fn adaptive_moments(
    img: &Image,
    bg: &Background,
    seed_cx: f64,
    seed_cy: f64,
    psf_sigma_px: f64,
) -> Moments {
    let mut w_var = (2.0 * psf_sigma_px * psf_sigma_px).max(1.0);
    let mut cx = seed_cx;
    let mut cy = seed_cy;
    let mut best = Moments {
        cx,
        cy,
        ixx: w_var,
        ixy: 0.0,
        iyy: w_var,
        counts: 0.0,
    };
    for _ in 0..10 {
        let radius = (4.0 * w_var.sqrt()).clamp(3.0, 24.0);
        let (xs, ys) = img.clip_box(cx - radius, cx + radius, cy - radius, cy + radius);
        let (mut sw, mut sx, mut sy) = (0.0, 0.0, 0.0);
        let (mut mxx, mut mxy, mut myy) = (0.0, 0.0, 0.0);
        for y in ys {
            for x in xs.clone() {
                let dx = x as f64 + 0.5 - cx;
                let dy = y as f64 + 0.5 - cy;
                let d2 = dx * dx + dy * dy;
                if d2 > radius * radius {
                    continue;
                }
                let wgt = (-0.5 * d2 / w_var).exp();
                let v = wgt * (img.get(x, y) as f64 - bg.level);
                sw += v;
                sx += v * dx;
                sy += v * dy;
                mxx += v * dx * dx;
                mxy += v * dx * dy;
                myy += v * dy * dy;
            }
        }
        if sw <= 0.0 {
            break; // pure noise: keep the last good estimate
        }
        cx += sx / sw;
        cy += sy / sw;
        let m_iso = 0.5 * (mxx + myy) / sw;
        // Weight deconvolution; if the object overwhelms the weight,
        // grow the weight and re-measure.
        let v_iso = if m_iso < 0.9 * w_var {
            m_iso * w_var / (w_var - m_iso)
        } else {
            w_var *= 2.0;
            continue;
        };
        let ratio = (v_iso / m_iso.max(1e-6)).max(0.0);
        best = Moments {
            cx,
            cy,
            ixx: (mxx / sw * ratio).max(0.0),
            ixy: mxy / sw * ratio,
            iyy: (myy / sw * ratio).max(0.0),
            counts: sw,
        };
        if (v_iso - w_var).abs() < 0.01 * w_var {
            break;
        }
        w_var = v_iso.clamp(0.25, 150.0);
    }
    best
}

/// Sky-subtracted counts within a circular aperture of radius `r_px`
/// centered at a *sky* position (so the same aperture lands correctly
/// on every band's image).
pub fn aperture_counts(img: &Image, bg: &Background, pos: &SkyCoord, r_px: f64) -> f64 {
    let c = img.wcs.sky_to_pix(pos);
    let (xs, ys) = img.clip_box(c[0] - r_px, c[0] + r_px, c[1] - r_px, c[1] + r_px);
    let mut total = 0.0;
    for y in ys {
        for x in xs.clone() {
            let dx = x as f64 + 0.5 - c[0];
            let dy = y as f64 + 0.5 - c[1];
            if dx * dx + dy * dy <= r_px * r_px {
                total += img.get(x, y) as f64 - bg.level;
            }
        }
    }
    total
}

/// Aperture flux in nanomaggies.
pub fn aperture_flux_nmgy(img: &Image, bg: &Background, pos: &SkyCoord, r_px: f64) -> f64 {
    aperture_counts(img, bg, pos, r_px) / img.nmgy_to_counts
}

/// Fraction of a point source's flux enclosed by a circular aperture
/// of radius `r_px`: `Σ w_c (1 − e^{−r²/2σ_c²})` over the PSF mixture.
/// Dividing aperture fluxes by this is the standard *aperture
/// correction*; without it every Photo flux carries a correlated
/// wing-loss bias that contaminates coadd-derived ground truth.
pub fn psf_aperture_fraction(psf: &celeste_survey::psf::Psf, r_px: f64) -> f64 {
    model_aperture_fraction(psf, 0.0, r_px)
}

/// Enclosed-flux fraction for a Gaussian object of per-axis variance
/// `obj_var_px2` convolved with the PSF mixture — the correction Photo
/// uses for its model photometry on extended sources.
pub fn model_aperture_fraction(psf: &celeste_survey::psf::Psf, obj_var_px2: f64, r_px: f64) -> f64 {
    let total = psf.total_weight();
    psf.components
        .iter()
        .map(|c| {
            let s2 = c.sigma_px * c.sigma_px + obj_var_px2.max(0.0);
            c.weight * (1.0 - (-0.5 * r_px * r_px / s2).exp())
        })
        .sum::<f64>()
        / total
}

/// Radius (pixels) of the circle centered at `pos` enclosing `frac` of
/// the flux found within `r_max` — bisection on the aperture curve.
/// The SDSS concentration index is `r90/r50` computed this way.
pub fn flux_radius(img: &Image, bg: &Background, pos: &SkyCoord, frac: f64, r_max: f64) -> f64 {
    let total = aperture_counts(img, bg, pos, r_max).max(1e-9);
    let target = frac * total;
    let (mut lo, mut hi) = (0.1, r_max);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if aperture_counts(img, bg, pos, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_expected;
    use celeste_survey::skygeom::{FieldId, SkyRect};
    use celeste_survey::wcs::Wcs;

    /// Noise-free image of one source (expected counts).
    fn noiseless(entry: CatalogEntry) -> Image {
        let rect = SkyRect::new(0.0, 0.05, 0.0, 0.05);
        let mut img = Image::blank(
            FieldId {
                run: 1,
                camcol: 1,
                field: 0,
            },
            Band::R,
            Wcs::for_rect(&rect, 128, 128),
            128,
            128,
            150.0,
            300.0,
            Psf::single(1.4),
        );
        let exp = render_expected(&Catalog::new(vec![entry]), &img);
        for (p, e) in img.pixels.iter_mut().zip(exp) {
            *p = e as f32;
        }
        img
    }

    fn star(flux: f64) -> CatalogEntry {
        CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.025, 0.025),
            source_type: SourceType::Star,
            flux_r_nmgy: flux,
            colors: [0.0; 4],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    #[test]
    fn centroid_matches_source_position() {
        let img = noiseless(star(20.0));
        let bg = Background {
            level: 150.0,
            sigma: 12.0,
        };
        let pixels: Vec<(usize, usize)> = (0..128)
            .flat_map(|y| (0..128).map(move |x| (x, y)))
            .filter(|&(x, y)| img.get(x, y) > 160.0)
            .collect();
        let m = moments(&img, &bg, &pixels);
        let c = img.wcs.sky_to_pix(&SkyCoord::new(0.025, 0.025));
        assert!((m.cx - c[0]).abs() < 0.1, "cx {} vs {}", m.cx, c[0]);
        assert!((m.cy - c[1]).abs() < 0.1);
    }

    #[test]
    fn aperture_recovers_flux() {
        let img = noiseless(star(20.0));
        let bg = Background {
            level: 150.0,
            sigma: 12.0,
        };
        let f = aperture_flux_nmgy(&img, &bg, &SkyCoord::new(0.025, 0.025), 10.0);
        assert!((f - 20.0).abs() < 0.5, "aperture flux {f}");
    }

    #[test]
    fn star_moments_match_psf_variance() {
        let img = noiseless(star(50.0));
        let bg = Background {
            level: 150.0,
            sigma: 12.0,
        };
        let pixels: Vec<(usize, usize)> = (0..128)
            .flat_map(|y| (0..128).map(move |x| (x, y)))
            .filter(|&(x, y)| img.get(x, y) > 151.0)
            .collect();
        let m = moments(&img, &bg, &pixels);
        // PSF sigma = 1.4 → variance 1.96 (slightly truncated by the
        // pixel mask, so allow a one-sided tolerance).
        assert!(m.ixx > 1.2 && m.ixx < 2.1, "ixx {}", m.ixx);
        assert!((m.ixx - m.iyy).abs() < 0.2);
    }

    #[test]
    fn principal_axes_of_elongated_moments() {
        let m = Moments {
            cx: 0.0,
            cy: 0.0,
            ixx: 4.0,
            ixy: 0.0,
            iyy: 1.0,
            counts: 1.0,
        };
        let (l1, l2, ang) = m.principal_axes();
        assert!((l1 - 4.0).abs() < 1e-12);
        assert!((l2 - 1.0).abs() < 1e-12);
        assert!(ang.abs() < 1e-12 || (ang - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn flux_radius_ordering() {
        let img = noiseless(star(50.0));
        let bg = Background {
            level: 150.0,
            sigma: 12.0,
        };
        let pos = SkyCoord::new(0.025, 0.025);
        let r50 = flux_radius(&img, &bg, &pos, 0.5, 15.0);
        let r90 = flux_radius(&img, &bg, &pos, 0.9, 15.0);
        assert!(r50 > 0.5 && r50 < 3.0, "r50 {r50}");
        assert!(r90 > r50, "r90 {r90} ≤ r50 {r50}");
        // For a Gaussian: r50 = 1.1774σ, r90 = 2.1460σ → ratio ≈ 1.82.
        let ratio = r90 / r50;
        assert!((ratio - 1.82).abs() < 0.2, "concentration {ratio}");
    }
}
