//! Sky-sharded catalog store: a concurrently queryable view of
//! campaign results (ROADMAP "catalog service" item).
//!
//! [`CatalogStore`] is a hierarchical sky index over the
//! [`CellId`] grid from `celeste-survey`: every fitted
//! [`CatalogEntry`] lives in the level-`L` cell containing its
//! position, cells are striped across a fixed set of reader/writer
//! locks, and an id index tracks which cell currently holds each
//! source. One campaign thread can stream [`RegionResult`]s into the
//! store while any number of reader threads serve cone searches,
//! rect/band filters, and brightest-N queries.
//!
//! # Lifecycle and invariants
//!
//! The store moves through three phases, none of which require
//! exclusive access to the whole structure:
//!
//! 1. **Ingest** — [`CatalogStore::ingest`] upserts every source of a
//!    region result. Within one campaign stage, region tasks own
//!    disjoint source sets, so concurrent ingests never race on an
//!    id; across stages the later (shifted, stage-1) fit of a source
//!    overwrites its stage-0 entry, which is exactly the batch
//!    campaign's "last write wins" PGAS semantics. Ingesting a
//!    campaign's streamed results therefore yields a store whose
//!    [`CatalogStore::to_catalog`] is bit-identical to the batch
//!    output catalog, at any pool width.
//! 2. **Query** — readers lock only the shards their covering cells
//!    hash to, never the id index. Every query observes a consistent
//!    snapshot of each *shard*; a source concurrently moving between
//!    cells (a refit that shifted its position across a cell
//!    boundary) may transiently be seen in both cells, so all queries
//!    deduplicate by id before returning. A source is inserted into
//!    its new cell *before* being removed from the old one, so a
//!    fully-ingested source is never invisible.
//! 3. **Re-run** — [`CatalogStore::cached_region`] looks up a prior
//!    region result by provenance key (see [`task_provenance_key`]).
//!    A driver re-running a campaign over an overlapping footprint
//!    materializes cache hits as a resume checkpoint so the campaign
//!    refits only tasks whose inputs changed — O(changed shards),
//!    not O(footprint). The cache is append-only and keyed purely by
//!    input content, so stale entries can never be returned for
//!    changed inputs; they are simply never looked up again.
//!
//! Lock ordering is deadlock-free by construction: writers take the
//! id-index lock for a source first and then at most one cell-shard
//! lock at a time; readers take an id-stripe and then at most one
//! cell-shard lock. The order is ranked — id-stripe (1) → cell-shard
//! (2) → cache (3) — and *checked*: every acquisition goes through a
//! `// lock-order:`-annotated helper (enforced by `celeste_lint`)
//! that, under `debug_assertions`, pushes its rank on a thread-local
//! witness stack and asserts ranks strictly increase (`mod witness`).
//! The model-checked protocol (`crates/check`, `store_lock_order` and
//! `store_migration` tests) exhaustively verifies the same discipline
//! under every bounded interleaving.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use celeste_sched::fault::mix64;
use celeste_sched::{RegionResult, RegionTask};
use celeste_survey::bands::Band;
use celeste_survey::catalog::{Catalog, CatalogEntry, SourceType};
use celeste_survey::io::ImageKey;
use celeste_survey::skygeom::{CellId, SkyCoord, SkyRect};
use parking_lot::{Mutex, RwLock};

/// Debug-only lock-order witness: a thread-local stack of held lock
/// ranks. Acquiring a lock whose rank is not strictly greater than
/// the deepest held rank is a programming error and panics
/// immediately (debug/test builds only — release builds compile the
/// whole check away). Ranks: id-stripe (1) → cell-shard (2) →
/// cache (3).
mod witness {
    /// Rank of an id-index stripe mutex.
    pub(crate) const ID_STRIPE: u8 = 1;
    /// Rank of a cell-shard rwlock.
    pub(crate) const CELL_SHARD: u8 = 2;
    /// Rank of the provenance-cache mutex.
    pub(crate) const CACHE: u8 = 3;

    #[cfg(debug_assertions)]
    thread_local! {
        static HELD: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }

    /// RAII record of one acquisition; drop order must mirror lock
    /// release order (helpers bind it right before the guard, so both
    /// unwind together).
    pub(crate) struct Token {
        #[cfg(debug_assertions)]
        rank: u8,
    }

    /// Record acquiring a lock of `rank`, asserting the documented
    /// order (strictly increasing ranks per thread).
    pub(crate) fn acquire(rank: u8, class: &'static str) -> Token {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&deepest) = held.last() {
                assert!(
                    rank > deepest,
                    "lock-order violation: acquiring {class} (rank {rank}) while                      holding rank {deepest}; order is id-stripe (1) -> cell-shard (2) -> cache (3)"
                );
            }
            held.push(rank);
        });
        #[cfg(not(debug_assertions))]
        let _ = (rank, class);
        Token {
            #[cfg(debug_assertions)]
            rank,
        }
    }

    #[cfg(debug_assertions)]
    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|held| {
                let popped = held.borrow_mut().pop();
                debug_assert_eq!(popped, Some(self.rank), "witness stack out of order");
            });
        }
    }
}

/// Padding (degrees) around a region rect within which the campaign
/// holds neighbor sources fixed (15″, mirroring the campaign's
/// neighbor selection). Provenance keys must cover at least this
/// footprint so a changed neighbor invalidates the cached fit.
const NEIGHBOR_PAD_DEG: f64 = 15.0 / 3600.0;

/// Dependency margin for stage-1 cache keys: strictly wider than
/// [`NEIGHBOR_PAD_DEG`] so boundary sources are never missed.
const STAGE_DEP_PAD_DEG: f64 = 16.0 / 3600.0;

/// A query the store rejected before touching any shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The query parameters were malformed (non-finite coordinates,
    /// negative or NaN radius, NaN flux threshold).
    InvalidQuery(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::InvalidQuery(reason) => write!(f, "invalid catalog query: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Sizing knobs for a [`CatalogStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Cell refinement level (cells are `180/2^level` degrees on a
    /// side). Deeper levels mean finer query pruning but more cells.
    pub level: u8,
    /// Number of reader/writer locks cells are striped across;
    /// rounded up to a power of two, minimum 1.
    pub lock_shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        // 180/2^10 ≈ 0.18° cells: about one SDSS field per cell.
        StoreConfig {
            level: 10,
            lock_shards: 64,
        }
    }
}

/// Occupancy and traffic counters for one resident sky cell. The
/// touch counters drive the serving layer's eviction policy (cold
/// cells spill to the snapshot file first) and double as a per-cell
/// heat map in the stats query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellOccupancy {
    /// Which cell.
    pub cell: CellId,
    /// Distinct sources currently resident in the cell.
    pub entries: usize,
    /// How many sky queries have read this cell since it became
    /// resident (counters reset when a cell empties or is evicted).
    pub touches: u64,
    /// Value of the store's query clock when the cell was last read
    /// by a sky query (0 = never). Ordering cells by this field is
    /// LRU-by-query-touch.
    pub last_touch: u64,
}

/// Occupancy and traffic counters for a [`CatalogStore`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogStoreStats {
    /// Distinct sources currently stored.
    pub entries: usize,
    /// Non-empty sky cells.
    pub cells: usize,
    /// Region results ingested (including re-ingests of cached ones).
    pub regions_ingested: u64,
    /// Provenance-cache entries recorded.
    pub cache_entries: usize,
    /// Provenance-cache lookups that hit.
    pub cache_hits: u64,
    /// Sky queries answered (cone/rect/brightest-N; each ticks the
    /// query clock the [`CellOccupancy::last_touch`] stamps come
    /// from).
    pub queries: u64,
    /// Per-cell occupancy and touch counters, ascending by cell id.
    pub per_cell: Vec<CellOccupancy>,
}

/// Predicate for [`CatalogStore::rect_search`]: all present fields
/// must match (absent fields match everything).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SourceFilter {
    /// Keep only stars, or only galaxies.
    pub source_type: Option<SourceType>,
    /// Keep only sources at least this bright (nanomaggies) in the
    /// given band. Sources whose flux in that band is non-finite
    /// never match.
    pub min_flux: Option<(Band, f64)>,
}

impl SourceFilter {
    /// Whether `entry` passes every present predicate.
    pub fn matches(&self, entry: &CatalogEntry) -> bool {
        if let Some(t) = self.source_type {
            if entry.source_type != t {
                return false;
            }
        }
        if let Some((band, min)) = self.min_flux {
            let f = entry.fluxes()[band.index()];
            // Demands both "is finite enough to compare" and "is at
            // least min": a NaN flux never matches.
            if !matches!(
                f.partial_cmp(&min),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) {
                return false;
            }
        }
        true
    }

    fn validate(&self) -> Result<(), StoreError> {
        match self.min_flux {
            Some((_, min)) if min.is_nan() => {
                Err(StoreError::InvalidQuery("min_flux threshold is NaN".into()))
            }
            _ => Ok(()),
        }
    }
}

/// A self-describing catalog query, the facade's one-call query
/// surface ([`CatalogStore::query`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogQuery {
    /// Every source within `radius_arcsec` of `center`, nearest
    /// first (ties by id).
    Cone {
        /// Cone axis.
        center: SkyCoord,
        /// Cone angular radius, arcseconds (inclusive).
        radius_arcsec: f64,
    },
    /// Every source inside `rect` passing `filter`, ascending id.
    Rect {
        /// Half-open sky window (RA wraparound honored).
        rect: SkyRect,
        /// Type/flux predicate.
        filter: SourceFilter,
    },
    /// The `n` brightest sources by r-band flux, brightest first
    /// (ties by id), optionally restricted to a sky window.
    BrightestN {
        /// How many sources to return.
        n: usize,
        /// Optional restriction window.
        within: Option<SkyRect>,
    },
}

/// One resident cell: its entries keyed by id (so iteration order —
/// and therefore query output — is deterministic) plus atomic touch
/// counters that sky queries bump under the shard's *read* lock.
#[derive(Default)]
struct Cell {
    entries: BTreeMap<u64, CatalogEntry>,
    touches: AtomicU64,
    last_touch: AtomicU64,
}

/// One lock stripe: the cells (and their entries) that hash to it.
#[derive(Default)]
struct Shard {
    cells: HashMap<CellId, Cell>,
}

/// The sky-sharded catalog store. See the module docs for the
/// lifecycle and locking invariants.
pub struct CatalogStore {
    level: u8,
    mask: usize,
    shards: Vec<RwLock<Shard>>,
    /// id → current cell, striped by id hash. A writer must hold the
    /// id's stripe lock for the whole move (insert-new then
    /// remove-old) so concurrent upserts of one source serialize.
    ids: Vec<Mutex<HashMap<u64, CellId>>>,
    /// Provenance key → the region result fitted under that key.
    cache: Mutex<HashMap<u64, RegionResult>>,
    entries: AtomicUsize,
    regions_ingested: AtomicU64,
    cache_hits: AtomicU64,
    /// Bumped once per sky query; cells record its value as their
    /// last-touch stamp (LRU by query touch for eviction policy).
    query_clock: AtomicU64,
    /// Bumped on every content mutation (insert / take). Lets a
    /// serving layer detect whether a persisted snapshot still
    /// reflects the store without hashing it.
    version: AtomicU64,
}

impl Default for CatalogStore {
    fn default() -> Self {
        CatalogStore::new(StoreConfig::default())
    }
}

impl CatalogStore {
    /// An empty store with the given sizing.
    pub fn new(cfg: StoreConfig) -> CatalogStore {
        let n = cfg.lock_shards.max(1).next_power_of_two();
        CatalogStore {
            level: cfg.level,
            mask: n - 1,
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            ids: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            cache: Mutex::new(HashMap::new()),
            entries: AtomicUsize::new(0),
            regions_ingested: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            query_clock: AtomicU64::new(0),
            version: AtomicU64::new(0),
        }
    }

    /// The cell refinement level entries are indexed at.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Content version: bumped on every [`CatalogStore::insert`] (and
    /// [`CatalogStore::take_cell`] removal). Two equal readings with
    /// no writer in between mean the stored content did not change.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn shard_of(&self, cell: CellId) -> &RwLock<Shard> {
        let key = ((cell.ix as u64) << 32) | cell.iy as u64;
        &self.shards[mix64(key) as usize & self.mask]
    }

    /// Run `f` holding the id stripe for `id`. The outermost lock a
    /// writer or point-reader takes; shard accesses nest inside.
    fn with_id_stripe<R>(&self, id: u64, f: impl FnOnce(&mut HashMap<u64, CellId>) -> R) -> R {
        let _witness = witness::acquire(witness::ID_STRIPE, "id-stripe");
        // lock-order: id-stripe (1) — cell-shard (2) may nest inside.
        let mut guard = self.ids[mix64(id) as usize & self.mask].lock();
        f(&mut guard)
    }

    /// Run `f` holding `shard` for writing.
    fn with_shard_write<R>(&self, shard: &RwLock<Shard>, f: impl FnOnce(&mut Shard) -> R) -> R {
        let _witness = witness::acquire(witness::CELL_SHARD, "cell-shard");
        // lock-order: cell-shard (2) — at most one at a time, inside
        // at most one id-stripe (1).
        let mut guard = shard.write();
        f(&mut guard)
    }

    /// Run `f` holding `shard` for reading.
    fn with_shard_read<R>(&self, shard: &RwLock<Shard>, f: impl FnOnce(&Shard) -> R) -> R {
        let _witness = witness::acquire(witness::CELL_SHARD, "cell-shard");
        // lock-order: cell-shard (2) — at most one at a time, inside
        // at most one id-stripe (1).
        let guard = shard.read();
        f(&guard)
    }

    /// Run `f` holding the provenance cache.
    fn with_cache<R>(&self, f: impl FnOnce(&mut HashMap<u64, RegionResult>) -> R) -> R {
        let _witness = witness::acquire(witness::CACHE, "cache");
        // lock-order: cache (3) — innermost; never held across a
        // stripe or shard acquisition.
        let mut guard = self.cache.lock();
        f(&mut guard)
    }

    /// Insert or update one entry. The entry is indexed under the
    /// cell containing its position; a position change that crosses a
    /// cell boundary moves it (new cell first, then old, so readers
    /// never observe the id absent).
    pub fn insert(&self, entry: CatalogEntry) {
        let cell = CellId::of(&entry.pos, self.level);
        let id = entry.id;
        self.with_id_stripe(id, |idx| {
            let old = idx.insert(id, cell);
            match old {
                None => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    self.with_shard_write(self.shard_of(cell), |s| {
                        s.cells.entry(cell).or_default().entries.insert(id, entry);
                    });
                }
                Some(old_cell) if old_cell == cell => {
                    self.with_shard_write(self.shard_of(cell), |s| {
                        s.cells.entry(cell).or_default().entries.insert(id, entry);
                    });
                }
                Some(old_cell) => {
                    self.with_shard_write(self.shard_of(cell), |s| {
                        s.cells.entry(cell).or_default().entries.insert(id, entry);
                    });
                    self.with_shard_write(self.shard_of(old_cell), |s| {
                        if let Some(c) = s.cells.get_mut(&old_cell) {
                            c.entries.remove(&id);
                            if c.entries.is_empty() {
                                s.cells.remove(&old_cell);
                            }
                        }
                    });
                }
            }
        });
        // Bumped strictly *after* the mutation is visible (all locks
        // released), so a reader that observes version v also sees
        // every mutation counted in v — the serving layer's snapshot
        // freshness check depends on this ordering.
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Insert `entry` only if no entry with its id is present.
    /// Atomic with respect to concurrent [`CatalogStore::insert`]s of
    /// the same id (the id's stripe lock serializes them). Returns
    /// whether the entry was inserted. The serving layer uses this to
    /// fault spilled snapshot entries back in without clobbering a
    /// fresher fit a live campaign ingested meanwhile.
    pub fn insert_if_absent(&self, entry: CatalogEntry) -> bool {
        let cell = CellId::of(&entry.pos, self.level);
        let id = entry.id;
        let inserted = self.with_id_stripe(id, |idx| {
            if idx.contains_key(&id) {
                return false;
            }
            idx.insert(id, cell);
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.with_shard_write(self.shard_of(cell), |s| {
                s.cells.entry(cell).or_default().entries.insert(id, entry);
            });
            true
        });
        if inserted {
            // After the locks, for the same reason as in `insert`.
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        inserted
    }

    /// Remove and return every entry currently resident in `cell`, in
    /// ascending id order — the eviction primitive: the serving layer
    /// spills the returned entries' cell to its snapshot file and
    /// reloads on demand. Entries concurrently moving *into* the cell
    /// stay; an id concurrently moved to a different cell is left
    /// untouched. Bumps [`CatalogStore::version`] once when anything
    /// was removed.
    pub fn take_cell(&self, cell: CellId) -> Vec<CatalogEntry> {
        let ids: Vec<u64> = self.with_shard_read(self.shard_of(cell), |s| {
            s.cells
                .get(&cell)
                .map(|c| c.entries.keys().copied().collect())
                .unwrap_or_default()
        });
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            self.with_id_stripe(id, |idx| {
                if idx.get(&id) != Some(&cell) {
                    return;
                }
                idx.remove(&id);
                self.with_shard_write(self.shard_of(cell), |s| {
                    if let Some(c) = s.cells.get_mut(&cell) {
                        if let Some(e) = c.entries.remove(&id) {
                            self.entries.fetch_sub(1, Ordering::Relaxed);
                            out.push(e);
                        }
                        if c.entries.is_empty() {
                            s.cells.remove(&cell);
                        }
                    }
                });
            });
        }
        if !out.is_empty() {
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        out
    }

    /// Upsert every fitted source of a region result.
    pub fn ingest(&self, result: &RegionResult) {
        for sp in &result.sources {
            self.insert(sp.to_entry());
        }
        self.regions_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `result` in the provenance cache under `key`.
    pub fn record(&self, key: u64, result: &RegionResult) {
        self.with_cache(|cache| cache.insert(key, result.clone()));
    }

    /// [`CatalogStore::ingest`] plus [`CatalogStore::record`] — the
    /// one-call sink for a streaming campaign whose driver computed
    /// the task's provenance key up front.
    pub fn absorb(&self, key: u64, result: &RegionResult) {
        self.ingest(result);
        self.record(key, result);
    }

    /// The cached region result fitted under `key`, if any. The
    /// caller rewrites `task_id`/`stage` to the re-run's plan before
    /// replaying it as resume state.
    pub fn cached_region(&self, key: u64) -> Option<RegionResult> {
        let hit = self.with_cache(|cache| cache.get(&key).cloned());
        if hit.is_some() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The current entry for a source id, if present.
    pub fn get(&self, id: u64) -> Option<CatalogEntry> {
        // Hold the stripe across the shard read so the id → cell
        // mapping can't be repointed mid-lookup (the model's
        // `store_migration` reader checks exactly this discipline).
        self.with_id_stripe(id, |idx| {
            let cell = *idx.get(&id)?;
            self.with_shard_read(self.shard_of(cell), |s| {
                s.cells.get(&cell).and_then(|c| c.entries.get(&id)).cloned()
            })
        })
    }

    /// Number of distinct sources stored.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the store holds no sources.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy and traffic counters, including the per-cell
    /// occupancy/touch table (ascending by cell id) that the serving
    /// layer's LRU eviction ranks cells by.
    pub fn stats(&self) -> CatalogStoreStats {
        let mut per_cell: Vec<CellOccupancy> = Vec::new();
        for shard in &self.shards {
            self.with_shard_read(shard, |s| {
                for (&cell, c) in &s.cells {
                    per_cell.push(CellOccupancy {
                        cell,
                        entries: c.entries.len(),
                        touches: c.touches.load(Ordering::Relaxed),
                        last_touch: c.last_touch.load(Ordering::Relaxed),
                    });
                }
            });
        }
        per_cell.sort_by_key(|o| (o.cell.level, o.cell.ix, o.cell.iy));
        CatalogStoreStats {
            entries: self.len(),
            cells: per_cell.len(),
            regions_ingested: self.regions_ingested.load(Ordering::Relaxed),
            cache_entries: self.with_cache(|cache| cache.len()),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            queries: self.query_clock.load(Ordering::Relaxed),
            per_cell,
        }
    }

    /// Visit every entry currently indexed under `cells`,
    /// deduplicated by id (a concurrent cross-cell move can expose a
    /// source in two cells transiently). A `Some(stamp)` records a
    /// query touch on each visited cell (the eviction LRU signal);
    /// `None` is a bookkeeping read that leaves the counters alone.
    fn collect_cells(
        &self,
        cells: &[CellId],
        out: &mut BTreeMap<u64, CatalogEntry>,
        stamp: Option<u64>,
    ) {
        for &cell in cells {
            self.with_shard_read(self.shard_of(cell), |s| {
                if let Some(c) = s.cells.get(&cell) {
                    if let Some(stamp) = stamp {
                        c.touches.fetch_add(1, Ordering::Relaxed);
                        c.last_touch.store(stamp, Ordering::Relaxed);
                    }
                    for (&id, e) in &c.entries {
                        out.insert(id, e.clone());
                    }
                }
            });
        }
    }

    /// Every entry in the store, deduplicated by id. Touch stamping
    /// as in [`CatalogStore::collect_cells`].
    fn collect_all(&self, out: &mut BTreeMap<u64, CatalogEntry>, stamp: Option<u64>) {
        for shard in &self.shards {
            self.with_shard_read(shard, |s| {
                for c in s.cells.values() {
                    if let Some(stamp) = stamp {
                        c.touches.fetch_add(1, Ordering::Relaxed);
                        c.last_touch.store(stamp, Ordering::Relaxed);
                    }
                    for (&id, e) in &c.entries {
                        out.insert(id, e.clone());
                    }
                }
            });
        }
    }

    /// Advance the query clock and return the new stamp. Every sky
    /// query (cone/rect/brightest-N) takes one tick; cells touched by
    /// the query record it as their last-touch time.
    fn query_stamp(&self) -> u64 {
        self.query_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Every source within `radius_arcsec` of `center` with its
    /// separation, nearest first (ties by id). Agrees with the
    /// brute-force [`Catalog::cone_search`] over the same entries,
    /// including across the RA seam, but only touches the shards
    /// whose cells the cone can reach.
    pub fn cone_search(
        &self,
        center: &SkyCoord,
        radius_arcsec: f64,
    ) -> Result<Vec<(CatalogEntry, f64)>, StoreError> {
        if !center.is_finite() {
            return Err(StoreError::InvalidQuery("cone center is non-finite".into()));
        }
        if !radius_arcsec.is_finite() || radius_arcsec < 0.0 {
            return Err(StoreError::InvalidQuery(format!(
                "cone radius must be finite and non-negative, got {radius_arcsec}"
            )));
        }
        let rect = cone_rect(center, radius_arcsec);
        let cells = CellId::covering(&rect, self.level);
        let mut seen = BTreeMap::new();
        self.collect_cells(&cells, &mut seen, Some(self.query_stamp()));
        let mut hits: Vec<(CatalogEntry, f64)> = seen
            .into_values()
            .map(|e| {
                let sep = e.pos.sep_arcsec(center);
                (e, sep)
            })
            .filter(|(_, sep)| sep.is_finite() && *sep <= radius_arcsec)
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        Ok(hits)
    }

    /// Every source inside `rect` (half-open, RA-wraparound honored)
    /// passing `filter`, in ascending id order.
    pub fn rect_search(
        &self,
        rect: &SkyRect,
        filter: &SourceFilter,
    ) -> Result<Vec<CatalogEntry>, StoreError> {
        if ![rect.ra_min, rect.ra_max, rect.dec_min, rect.dec_max]
            .iter()
            .all(|v| v.is_finite())
        {
            return Err(StoreError::InvalidQuery(
                "rect bounds are non-finite".into(),
            ));
        }
        filter.validate()?;
        let cells = CellId::covering(rect, self.level);
        let mut seen = BTreeMap::new();
        self.collect_cells(&cells, &mut seen, Some(self.query_stamp()));
        Ok(seen
            .into_values()
            .filter(|e| rect.contains(&e.pos) && filter.matches(e))
            .collect())
    }

    /// The `n` brightest sources by r-band flux, brightest first
    /// (ties by id), optionally restricted to `within`. Sources with
    /// non-finite flux are skipped. Agrees with the brute-force
    /// [`Catalog::brightest_n`] over the same entries.
    pub fn brightest_n(&self, n: usize, within: Option<&SkyRect>) -> Vec<CatalogEntry> {
        let mut seen = BTreeMap::new();
        let stamp = Some(self.query_stamp());
        match within {
            Some(rect) => {
                self.collect_cells(&CellId::covering(rect, self.level), &mut seen, stamp);
                seen.retain(|_, e| rect.contains(&e.pos));
            }
            None => self.collect_all(&mut seen, stamp),
        }
        let mut bright: Vec<CatalogEntry> = seen
            .into_values()
            .filter(|e| e.flux_r_nmgy.is_finite())
            .collect();
        bright.sort_by(|a, b| {
            b.flux_r_nmgy
                .total_cmp(&a.flux_r_nmgy)
                .then(a.id.cmp(&b.id))
        });
        bright.truncate(n);
        bright
    }

    /// Run a self-describing [`CatalogQuery`], discarding per-hit
    /// separations (use [`CatalogStore::cone_search`] directly if you
    /// need them).
    pub fn query(&self, q: &CatalogQuery) -> Result<Vec<CatalogEntry>, StoreError> {
        match q {
            CatalogQuery::Cone {
                center,
                radius_arcsec,
            } => Ok(self
                .cone_search(center, *radius_arcsec)?
                .into_iter()
                .map(|(e, _)| e)
                .collect()),
            CatalogQuery::Rect { rect, filter } => self.rect_search(rect, filter),
            CatalogQuery::BrightestN { n, within } => Ok(self.brightest_n(*n, within.as_ref())),
        }
    }

    /// Snapshot the whole store as a [`Catalog`], entries in
    /// ascending id order — the same order the batch campaign path
    /// emits, so a store fed by a streamed campaign snapshots to a
    /// catalog bit-identical to the batch output.
    pub fn to_catalog(&self) -> Catalog {
        let mut seen = BTreeMap::new();
        self.collect_all(&mut seen, None);
        Catalog::new(seen.into_values().collect())
    }

    /// The cells a query's search area can reach at this store's
    /// level: `Ok(Some(cells))` for bounded queries, `Ok(None)` for a
    /// whole-sky sweep (`BrightestN { within: None }`). Validates the
    /// query exactly as running it would. The serving layer faults
    /// spilled cells back in from snapshot through this — it shares
    /// the cone's conservative bounding rect with
    /// [`CatalogStore::cone_search`], so fault-in coverage can never
    /// be narrower than the search itself.
    pub fn covering_cells(&self, q: &CatalogQuery) -> Result<Option<Vec<CellId>>, StoreError> {
        match q {
            CatalogQuery::Cone {
                center,
                radius_arcsec,
            } => {
                if !center.is_finite() {
                    return Err(StoreError::InvalidQuery("cone center is non-finite".into()));
                }
                if !radius_arcsec.is_finite() || *radius_arcsec < 0.0 {
                    return Err(StoreError::InvalidQuery(format!(
                        "cone radius must be finite and non-negative, got {radius_arcsec}"
                    )));
                }
                let rect = cone_rect(center, *radius_arcsec);
                Ok(Some(CellId::covering(&rect, self.level)))
            }
            CatalogQuery::Rect { rect, filter } => {
                if ![rect.ra_min, rect.ra_max, rect.dec_min, rect.dec_max]
                    .iter()
                    .all(|v| v.is_finite())
                {
                    return Err(StoreError::InvalidQuery(
                        "rect bounds are non-finite".into(),
                    ));
                }
                filter.validate()?;
                Ok(Some(CellId::covering(rect, self.level)))
            }
            CatalogQuery::BrightestN { within, .. } => match within {
                Some(rect) => Ok(Some(CellId::covering(rect, self.level))),
                None => Ok(None),
            },
        }
    }
}

/// Conservative bounding rect for a cone under the flat-sky metric:
/// the separation scales RA by cos of the *mean* dec of the pair,
/// which for a hit lies within r/2 of the center's dec. A tiny guard
/// pad keeps exactly-on-boundary candidates inside; over-inclusion is
/// harmless (the exact per-entry separation test decides). Shared by
/// [`CatalogStore::cone_search`] and [`CatalogStore::covering_cells`]
/// so the serving layer's fault-in sees the same cells the search
/// will read.
fn cone_rect(center: &SkyCoord, radius_arcsec: f64) -> SkyRect {
    let r_deg = radius_arcsec / 3600.0;
    let pad = 1e-7;
    let worst_dec = (center.dec.abs() + 0.5 * r_deg).min(90.0);
    let cosw = worst_dec.to_radians().cos();
    let half_w = if cosw > 1e-9 {
        (r_deg / cosw + pad).min(180.0)
    } else {
        180.0
    };
    SkyRect::new(
        center.ra - half_w,
        center.ra + half_w,
        (center.dec - r_deg - pad).max(-90.0),
        (center.dec + r_deg + pad).min(90.0 + f64::EPSILON * 90.0),
    )
}

fn fold(acc: u64, bits: u64) -> u64 {
    mix64(acc ^ mix64(bits))
}

fn entry_content_hash(e: &CatalogEntry) -> u64 {
    let mut acc = fold(0x5EED_E27C_0000_0001, e.id);
    for bits in [
        e.pos.ra.to_bits(),
        e.pos.dec.to_bits(),
        u64::from(e.source_type == SourceType::Galaxy),
        e.flux_r_nmgy.to_bits(),
    ] {
        acc = fold(acc, bits);
    }
    for c in e.colors {
        acc = fold(acc, c.to_bits());
    }
    for bits in [
        e.shape.frac_dev.to_bits(),
        e.shape.axis_ratio.to_bits(),
        e.shape.angle_rad.to_bits(),
        e.shape.radius_arcsec.to_bits(),
    ] {
        acc = fold(acc, bits);
    }
    acc
}

/// Content hash of an entire catalog: the fold of every entry's
/// bit-exact content, in order. Drivers fold this (for the survey's
/// truth catalog, whose entries fully determine the rendered imagery
/// given the survey seed) into the provenance `salt` so changed
/// imagery invalidates cached region fits.
pub fn catalog_content_hash(cat: &Catalog) -> u64 {
    cat.entries.iter().fold(0x5EED_CA7A_0106_0003, |acc, e| {
        fold(acc, entry_content_hash(e))
    })
}

/// Content hash of everything a *stage-0* region fit is conditioned
/// on: the task geometry and stage, the initialization-catalog
/// entries of its own sources **and** of the fixed neighbors within
/// the campaign's 15″ neighbor pad, the exact image set, and the fit
/// configuration (folded into `salt` together with any
/// survey-content hash the driver wants to pin). Two tasks with equal
/// keys fit bit-identically, so a cached result can stand in for a
/// refit. Stage-1 tasks additionally depend on stage-0 *outputs*;
/// use [`plan_provenance_keys`] to fold those dependencies in.
pub fn task_provenance_key(
    task: &RegionTask,
    init: &Catalog,
    image_keys: &[ImageKey],
    salt: u64,
) -> u64 {
    let mut acc = fold(0x5EED_F00D_CA7A_0001, salt);
    acc = fold(acc, u64::from(task.stage));
    for bits in [
        task.rect.ra_min.to_bits(),
        task.rect.ra_max.to_bits(),
        task.rect.dec_min.to_bits(),
        task.rect.dec_max.to_bits(),
    ] {
        acc = fold(acc, bits);
    }
    for &i in &task.source_indices {
        acc = fold(acc, i as u64);
        if let Some(e) = init.entries.get(i) {
            acc = fold(acc, entry_content_hash(e));
        }
    }
    // Fixed neighbors, selected exactly as the campaign selects them.
    let neighbor_rect = task.rect.padded(NEIGHBOR_PAD_DEG);
    for (i, e) in init.entries.iter().enumerate() {
        if !task.source_indices.contains(&i) && neighbor_rect.contains(&e.pos) {
            acc = fold(acc, i as u64);
            acc = fold(acc, entry_content_hash(e));
        }
    }
    for (field, band) in image_keys {
        acc = fold(acc, u64::from(field.run));
        acc = fold(acc, u64::from(field.camcol));
        acc = fold(acc, u64::from(field.field));
        acc = fold(acc, band.index() as u64);
    }
    acc
}

/// Provenance keys for a whole campaign plan, one per task, in task
/// order. Stage-0 keys are pure [`task_provenance_key`]s; each
/// stage-1 key additionally folds in the key of every stage-0 task
/// whose rect intersects the stage-1 rect padded by the neighbor
/// margin — those are exactly the tasks whose *outputs* the stage-1
/// fit starts from (its own sources' stage-0 params) or conditions
/// on (fixed neighbors). A change anywhere in a stage-1 task's input
/// cone therefore changes its key and forces a refit, while
/// untouched shards keep their keys and hit the cache.
pub fn plan_provenance_keys<F>(
    tasks: &[RegionTask],
    init: &Catalog,
    salt: u64,
    image_keys_of: F,
) -> Vec<u64>
where
    F: Fn(&RegionTask) -> Vec<ImageKey>,
{
    let base: Vec<u64> = tasks
        .iter()
        .map(|t| task_provenance_key(t, init, &image_keys_of(t), salt))
        .collect();
    tasks
        .iter()
        .zip(&base)
        .map(|(t, &key)| {
            if t.stage == 0 {
                return key;
            }
            let dep_rect = t.rect.padded(STAGE_DEP_PAD_DEG);
            let mut acc = key;
            for (t0, &k0) in tasks.iter().zip(&base) {
                if t0.stage == 0 && t0.rect.intersects(&dep_rect) {
                    acc = fold(acc, k0);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::catalog::GalaxyShape;

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn witness_catches_inverted_acquisition() {
        let _cache = witness::acquire(witness::CACHE, "cache");
        let _stripe = witness::acquire(witness::ID_STRIPE, "id-stripe");
    }

    #[test]
    fn witness_allows_documented_nesting() {
        let stripe = witness::acquire(witness::ID_STRIPE, "id-stripe");
        let shard = witness::acquire(witness::CELL_SHARD, "cell-shard");
        drop(shard);
        drop(stripe);
        // Sequential re-acquisition at any rank is fine once empty.
        let _cache = witness::acquire(witness::CACHE, "cache");
    }

    fn entry(id: u64, ra: f64, dec: f64, flux: f64) -> CatalogEntry {
        CatalogEntry {
            id,
            pos: SkyCoord::new(ra, dec),
            source_type: if id.is_multiple_of(2) {
                SourceType::Star
            } else {
                SourceType::Galaxy
            },
            flux_r_nmgy: flux,
            colors: [0.1, 0.2, -0.1, 0.05],
            shape: GalaxyShape::round_disk(1.5),
        }
    }

    fn store_with(entries: &[CatalogEntry]) -> CatalogStore {
        let store = CatalogStore::default();
        for e in entries {
            store.insert(e.clone());
        }
        store
    }

    #[test]
    fn insert_upserts_and_moves_across_cells() {
        let store = CatalogStore::default();
        store.insert(entry(7, 10.0, 10.0, 1.0));
        assert_eq!(store.len(), 1);
        // Same cell update.
        store.insert(entry(7, 10.001, 10.0, 2.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(7).unwrap().flux_r_nmgy, 2.0);
        // Cross-cell move: far away, old cell must be vacated.
        store.insert(entry(7, 200.0, -40.0, 3.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(7).unwrap().pos.ra, 200.0);
        assert_eq!(store.stats().cells, 1);
        assert_eq!(store.to_catalog().len(), 1);
    }

    #[test]
    fn queries_match_brute_force_references() {
        let entries: Vec<CatalogEntry> = (0..200)
            .map(|i| {
                entry(
                    i,
                    (i as f64 * 37.7) % 360.0,
                    ((i as f64 * 11.3) % 120.0) - 60.0,
                    (i as f64 * 7.1) % 50.0,
                )
            })
            .collect();
        let store = store_with(&entries);
        let cat = Catalog::new(entries);
        let center = SkyCoord::new(37.7, -48.7);
        for radius in [0.0, 3600.0, 500_000.0] {
            let got: Vec<(u64, f64)> = store
                .cone_search(&center, radius)
                .unwrap()
                .iter()
                .map(|(e, s)| (e.id, *s))
                .collect();
            let want: Vec<(u64, f64)> = cat
                .cone_search(&center, radius)
                .iter()
                .map(|(e, s)| (e.id, *s))
                .collect();
            assert_eq!(got, want, "cone radius {radius}");
        }
        let rect = SkyRect::new(10.0, 200.0, -30.0, 45.0);
        let got: Vec<u64> = store
            .rect_search(&rect, &SourceFilter::default())
            .unwrap()
            .iter()
            .map(|e| e.id)
            .collect();
        let mut want: Vec<u64> = cat.in_rect(&rect).iter().map(|e| e.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        let got: Vec<u64> = store.brightest_n(10, None).iter().map(|e| e.id).collect();
        let want: Vec<u64> = cat.brightest_n(10).iter().map(|e| e.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cone_search_spans_the_ra_seam() {
        let store = store_with(&[entry(1, 359.999, 0.0, 1.0), entry(2, 0.0005, 0.0, 1.0)]);
        let hits = store.cone_search(&SkyCoord::new(0.0, 0.0), 10.0).unwrap();
        let ids: Vec<u64> = hits.iter().map(|(e, _)| e.id).collect();
        assert_eq!(ids, vec![2, 1], "west-of-seam neighbor must be found");
    }

    #[test]
    fn filters_and_invalid_queries() {
        let mut galaxy = entry(1, 5.0, 5.0, 30.0);
        galaxy.source_type = SourceType::Galaxy;
        let mut star = entry(2, 5.001, 5.0, 0.5);
        star.source_type = SourceType::Star;
        let store = store_with(&[galaxy, star]);
        let rect = SkyRect::new(0.0, 10.0, 0.0, 10.0);
        let only_galaxies = SourceFilter {
            source_type: Some(SourceType::Galaxy),
            ..SourceFilter::default()
        };
        let got = store.rect_search(&rect, &only_galaxies).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1);
        let bright_r = SourceFilter {
            min_flux: Some((Band::R, 1.0)),
            ..SourceFilter::default()
        };
        let got = store.rect_search(&rect, &bright_r).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1);
        assert!(store
            .cone_search(&SkyCoord::new(f64::NAN, 0.0), 1.0)
            .is_err());
        assert!(store.cone_search(&SkyCoord::new(0.0, 0.0), -1.0).is_err());
        let nan_flux = SourceFilter {
            min_flux: Some((Band::R, f64::NAN)),
            ..SourceFilter::default()
        };
        assert!(store.rect_search(&rect, &nan_flux).is_err());
    }

    #[test]
    fn provenance_keys_separate_stages_and_content() {
        let mk_task = |id: u64, stage: u8, ra0: f64| RegionTask {
            id,
            stage,
            rect: SkyRect::new(ra0, ra0 + 0.1, 0.0, 0.1),
            source_indices: vec![0],
            predicted_work: 1.0,
        };
        let init = Catalog::new(vec![entry(0, 0.05, 0.05, 1.0), entry(1, 0.09, 0.05, 2.0)]);
        let t = mk_task(3, 0, 0.0);
        let keys = vec![(
            celeste_survey::skygeom::FieldId {
                run: 1,
                camcol: 2,
                field: 3,
            },
            Band::R,
        )];
        let k = task_provenance_key(&t, &init, &keys, 0);
        // Stable under irrelevant changes (task id is not an input).
        let mut t2 = t.clone();
        t2.id = 99;
        assert_eq!(k, task_provenance_key(&t2, &init, &keys, 0));
        // Sensitive to stage, salt, images, and neighbor content.
        let mut staged = t.clone();
        staged.stage = 1;
        assert_ne!(k, task_provenance_key(&staged, &init, &keys, 0));
        assert_ne!(k, task_provenance_key(&t, &init, &keys, 1));
        assert_ne!(k, task_provenance_key(&t, &init, &[], 0));
        let mut init2 = init.clone();
        init2.entries[1].flux_r_nmgy += 1.0; // a fixed neighbor moved
        assert_ne!(k, task_provenance_key(&t, &init2, &keys, 0));
    }

    #[test]
    fn stage1_keys_fold_in_overlapping_stage0_keys() {
        let init = Catalog::new(vec![
            entry(0, 0.05, 0.05, 1.0),
            entry(1, 0.15, 0.05, 2.0),
            entry(2, 0.30, 0.05, 3.0),
        ]);
        let mk = |id: u64, stage: u8, ra0: f64, ra1: f64, src: Vec<usize>| RegionTask {
            id,
            stage,
            rect: SkyRect::new(ra0, ra1, 0.0, 0.1),
            source_indices: src,
            predicted_work: 1.0,
        };
        let tasks = vec![
            mk(0, 0, 0.0, 0.1, vec![0]),
            mk(1, 0, 0.1, 0.2, vec![1]),
            mk(2, 0, 0.25, 0.4, vec![2]),
            mk(3, 1, 0.05, 0.15, vec![0, 1]),
        ];
        let keys = plan_provenance_keys(&tasks, &init, 7, |_| Vec::new());
        // Perturb task 0's own source: its key and the overlapping
        // stage-1 key must change; the far-away stage-0 key must not.
        let mut init2 = init.clone();
        init2.entries[0].pos.ra += 1e-6;
        let keys2 = plan_provenance_keys(&tasks, &init2, 7, |_| Vec::new());
        assert_ne!(keys[0], keys2[0]);
        assert_ne!(keys[3], keys2[3], "stage-1 key must track stage-0 inputs");
        assert_eq!(keys[2], keys2[2], "disjoint stage-0 task is unaffected");
    }

    #[test]
    fn concurrent_ingest_and_query() {
        let store = CatalogStore::new(StoreConfig {
            level: 10,
            lock_shards: 8,
        });
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 0..2000u64 {
                    store.insert(entry(
                        i % 200,
                        (i as f64 * 0.91) % 360.0,
                        0.05,
                        1.0 + i as f64,
                    ));
                }
            });
            let reader = s.spawn(|| {
                let rect = SkyRect::new(0.0, 360.0, 0.0, 0.1);
                for _ in 0..200 {
                    let hits = store.rect_search(&rect, &SourceFilter::default()).unwrap();
                    // Dedup invariant: ids strictly ascending.
                    assert!(hits.windows(2).all(|w| w[0].id < w[1].id));
                    let _ = store.brightest_n(5, Some(&rect));
                    let _ = store
                        .cone_search(&SkyCoord::new(180.0, 0.05), 3600.0)
                        .unwrap();
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });
        assert_eq!(store.len(), 200);
        assert_eq!(store.to_catalog().len(), 200);
    }

    #[test]
    fn per_cell_stats_track_occupancy_and_touches() {
        let store = store_with(&[
            entry(1, 10.0, 10.0, 1.0),
            entry(2, 10.0001, 10.0, 2.0),
            entry(3, 200.0, -40.0, 3.0),
        ]);
        let s = store.stats();
        assert_eq!(s.queries, 0);
        assert_eq!(s.per_cell.len(), s.cells);
        assert_eq!(s.per_cell.iter().map(|o| o.entries).sum::<usize>(), 3);
        assert!(s
            .per_cell
            .iter()
            .all(|o| o.touches == 0 && o.last_touch == 0));
        // Sorted ascending by cell id.
        let keys: Vec<_> = s
            .per_cell
            .iter()
            .map(|o| (o.cell.level, o.cell.ix, o.cell.iy))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);

        // A cone near (10, 10) touches that cell but not the far one.
        store.cone_search(&SkyCoord::new(10.0, 10.0), 5.0).unwrap();
        let s = store.stats();
        assert_eq!(s.queries, 1);
        let near = CellId::of(&SkyCoord::new(10.0, 10.0), store.level);
        let far = CellId::of(&SkyCoord::new(200.0, -40.0), store.level);
        let occ = |c: CellId| s.per_cell.iter().find(|o| o.cell == c).unwrap();
        assert!(occ(near).touches >= 1);
        assert_eq!(occ(near).last_touch, 1);
        assert_eq!(occ(far).touches, 0);
        // A whole-sky sweep touches every cell with a later stamp.
        store.brightest_n(1, None);
        let s = store.stats();
        assert_eq!(s.queries, 2);
        assert!(s.per_cell.iter().all(|o| o.last_touch == 2));
        // to_catalog is bookkeeping, not a query: counters unchanged.
        store.to_catalog();
        assert_eq!(store.stats().queries, 2);
    }

    #[test]
    fn insert_if_absent_never_clobbers() {
        let store = CatalogStore::default();
        assert!(store.insert_if_absent(entry(5, 10.0, 10.0, 1.0)));
        assert!(!store.insert_if_absent(entry(5, 20.0, 20.0, 9.0)));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(5).unwrap().flux_r_nmgy, 1.0);
        assert_eq!(store.get(5).unwrap().pos.ra, 10.0);
    }

    #[test]
    fn take_cell_removes_exactly_one_cell() {
        let store = store_with(&[
            entry(1, 10.0, 10.0, 1.0),
            entry(2, 10.0001, 10.0, 2.0),
            entry(3, 200.0, -40.0, 3.0),
        ]);
        let near = CellId::of(&SkyCoord::new(10.0, 10.0), store.level);
        let taken = store.take_cell(near);
        let ids: Vec<u64> = taken.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2], "ascending id order");
        assert_eq!(store.len(), 1);
        assert!(store.get(1).is_none());
        assert!(store.get(3).is_some());
        assert_eq!(store.stats().cells, 1);
        // Idempotent on an absent cell.
        assert!(store.take_cell(near).is_empty());
        // Taken entries fault back in cleanly.
        for e in taken {
            assert!(store.insert_if_absent(e));
        }
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn version_tracks_content_mutation() {
        let store = CatalogStore::default();
        let v0 = store.version();
        store.insert(entry(1, 10.0, 10.0, 1.0));
        let v1 = store.version();
        assert!(v1 > v0);
        // Reads don't bump it.
        store.get(1);
        store.brightest_n(1, None);
        store.stats();
        assert_eq!(store.version(), v1);
        // A refused insert_if_absent doesn't bump it either.
        assert!(!store.insert_if_absent(entry(1, 20.0, 20.0, 9.0)));
        assert_eq!(store.version(), v1);
        // take_cell of a populated cell bumps exactly once; an empty
        // take does not.
        let cell = CellId::of(&SkyCoord::new(10.0, 10.0), store.level);
        store.take_cell(cell);
        let v2 = store.version();
        assert_eq!(v2, v1 + 1);
        store.take_cell(cell);
        assert_eq!(store.version(), v2);
    }

    #[test]
    fn covering_cells_matches_query_reach() {
        let entries: Vec<CatalogEntry> = (0..100)
            .map(|i| {
                entry(
                    i,
                    (i as f64 * 37.7) % 360.0,
                    ((i as f64 * 11.3) % 120.0) - 60.0,
                    (i as f64 * 7.1) % 50.0,
                )
            })
            .collect();
        let store = store_with(&entries);
        let queries = [
            CatalogQuery::Cone {
                center: SkyCoord::new(37.7, -48.7),
                radius_arcsec: 7200.0,
            },
            CatalogQuery::Rect {
                rect: SkyRect::new(10.0, 200.0, -30.0, 45.0),
                filter: SourceFilter::default(),
            },
            CatalogQuery::BrightestN {
                n: 10,
                within: Some(SkyRect::new(0.0, 90.0, -90.0, 0.0)),
            },
        ];
        for q in &queries {
            let cells = store.covering_cells(q).unwrap().expect("bounded query");
            let cellset: std::collections::HashSet<CellId> = cells.into_iter().collect();
            // Every hit must live in a covered cell, else the serving
            // layer's fault-in would miss spilled results.
            for e in store.query(q).unwrap() {
                assert!(
                    cellset.contains(&CellId::of(&e.pos, store.level)),
                    "hit {} outside covering set for {q:?}",
                    e.id
                );
            }
        }
        assert_eq!(
            store
                .covering_cells(&CatalogQuery::BrightestN { n: 3, within: None })
                .unwrap(),
            None,
            "whole-sky sweep has no bounded covering"
        );
        // Validation mirrors the queries themselves.
        assert!(store
            .covering_cells(&CatalogQuery::Cone {
                center: SkyCoord::new(f64::NAN, 0.0),
                radius_arcsec: 1.0
            })
            .is_err());
        assert!(store
            .covering_cells(&CatalogQuery::Cone {
                center: SkyCoord::new(0.0, 0.0),
                radius_arcsec: -1.0
            })
            .is_err());
    }
}
