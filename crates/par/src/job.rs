//! Type-erased jobs and completion latches.
//!
//! A [`JobRef`] is two words — a data pointer and an execute
//! function — so it fits in a deque slot and is trivially `Copy`.
//! Fork-join work lives on the forking thread's stack
//! ([`StackJob`]); fire-and-forget scope work is boxed
//! ([`HeapJob`]). Both catch panics at the job boundary so an
//! unwinding task can never tear down a pool worker.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Completion signal a job fires exactly once, as its very last
/// action (the waiter may free the job's memory immediately after).
pub(crate) trait Latch {
    fn set(&self);
}

/// Spin-probe latch for fork-join waits, where the waiting thread is
/// a pool worker that keeps executing other jobs instead of blocking.
#[derive(Default)]
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// Blocking latch for threads outside the pool (e.g. `install` from
/// the main thread), which have no queue to drain while they wait.
#[derive(Default)]
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cond.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cond.notify_all();
    }
}

/// A pointer to an executable job plus its erased execute function.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

/// Identity is the data pointer alone: a live job's address is
/// unique, and function pointers compare unreliably across codegen
/// units.
impl PartialEq for JobRef {
    fn eq(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

impl Eq for JobRef {}

// SAFETY: a JobRef is only constructed from jobs whose closures are
// `Send` (enforced by the `StackJob`/`HeapJob` constructors), and is
// executed exactly once on whichever thread dequeues it.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must stay valid until the job has executed.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            data: data as *const (),
            execute_fn: T::execute,
        }
    }

    /// Decompose into two machine words for atomic slot storage.
    pub(crate) fn into_words(self) -> (usize, usize) {
        (self.data as usize, self.execute_fn as usize)
    }

    /// Reassemble from [`JobRef::into_words`] output.
    ///
    /// # Safety
    /// The words must have come from `into_words` of a still-valid
    /// job (a racing reader must discard the result unless a CAS
    /// proves the slot was not reclaimed — see `Deque::steal`).
    pub(crate) unsafe fn from_words(data: usize, execute_fn: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            execute_fn: std::mem::transmute::<usize, unsafe fn(*const ())>(execute_fn),
        }
    }

    /// # Safety
    /// Must be called exactly once, while the underlying job is alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// Implemented by concrete job representations.
pub(crate) trait Job {
    /// # Safety
    /// `this` must be the pointer a matching [`JobRef::new`] erased,
    /// still valid, and never executed before.
    unsafe fn execute(this: *const ());
}

pub(crate) enum JobResult<R> {
    NotRun,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

/// A job that lives on the stack of the thread that forked it. The
/// forking thread must not leave the enclosing frame until `latch`
/// fires (even when unwinding), which is what makes borrowing stack
/// data from `join` closures sound.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: the closure is Send (constructor bound); the result slot is
// only touched by the single executing thread before the latch fires
// and by the single waiting thread after.
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch + Sync,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F) -> StackJob<L, F, R> {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::NotRun),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// # Safety
    /// The returned ref must execute before `self` is dropped.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Consume the completed job: return its value or resume its
    /// panic. Must only be called after the latch has fired.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
            JobResult::NotRun => unreachable!("StackJob consumed before it ran"),
        }
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch + Sync,
    F: FnOnce() -> R + Send,
    R: Send,
{
    // SAFETY: `this` is the pointer `as_job_ref` erased; the stack
    // frame it points into outlives execution (callers block on the
    // latch), and nothing else touches the cells until the latch
    // fires.
    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get()).take().expect("StackJob run twice");
        *this.result.get() = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        // Last touch: the waiter may deallocate the job right after.
        this.latch.set();
    }
}

/// A boxed fire-and-forget job (scope spawns). Completion/panic
/// accounting is the closure's own responsibility (the scope wraps
/// it), so execute just runs and frees it.
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    /// Box `func` and return the job ref that will run and free it.
    pub(crate) fn boxed(func: Box<dyn FnOnce() + Send>) -> JobRef {
        let raw = Box::into_raw(Box::new(HeapJob { func }));
        // SAFETY: the box stays alive until execute reclaims it.
        unsafe { JobRef::new(raw) }
    }
}

impl Job for HeapJob {
    // SAFETY: `this` is the `Box::into_raw` pointer from `boxed`,
    // executed exactly once, so reclaiming the box here is the sole
    // owner freeing it.
    unsafe fn execute(this: *const ()) {
        let job = Box::from_raw(this as *mut Self);
        (job.func)();
    }
}
