//! Chase–Lev work-stealing deque, fixed capacity.
//!
//! The classic single-owner double-ended queue (Chase & Lev 2005,
//! with the memory orderings of Lê et al. 2013 "Correct and Efficient
//! Work-Stealing for Weak Memory Models"): the owning worker pushes
//! and pops at the bottom (LIFO, cache-hot fork-join order) while any
//! other thread steals from the top (FIFO, the oldest and usually
//! largest subtree). Only the top pointer is contended, and only via
//! a single CAS per steal.
//!
//! Slots store the two words of a `JobRef` as relaxed atomics: a
//! thief's speculative read may race an owner `push` that has lapped
//! the buffer, so the accesses must be atomic for the race to be
//! defined behavior — the CAS on `top` then decides whether the read
//! value is used or discarded (the same scheme as crossbeam-deque).
//!
//! Instead of the growable circular buffer (which needs deferred
//! reclamation), capacity is fixed and `push` reports a full deque so
//! the pool can overflow into its shared injector queue. Fork-join
//! splitting is depth-logarithmic, so a worker's deque holds O(log n)
//! jobs plus spawned scope work — 1024 slots is far beyond any real
//! depth here.
//!
//! # Memory-ordering argument
//!
//! Every ordering below is load-bearing; `celeste-check`'s mutation
//! harness (`crates/check/src/tests.rs`) demonstrates a detectable
//! failure for each weakening, and the model suite passes the deque
//! exhaustively as written. The argument, ordering by ordering:
//!
//! - **`push`: `bottom.store(b + 1, Release)`** — publishes the slot
//!   words written by `write_slot`. A thief that *acquires* this
//!   `bottom` value (in `steal`) therefore sees the slot contents the
//!   owner wrote before it. Weakened to `Relaxed`, a thief can
//!   observe the new `bottom` but stale slot words and execute a
//!   garbage `JobRef` (mutation `M1`).
//! - **`push`: `top.load(Acquire)`** — only bounds the fullness
//!   check. `Acquire` orders it before the slot write for the lapped
//!   case; the CAS protocol makes a stale (smaller) `top` value
//!   merely conservative (spurious `Err(full)`), never unsound.
//! - **`pop`: `fence(SeqCst)` between the `bottom` decrement and the
//!   `top` read** — the owner must make its claim on the bottom slot
//!   globally visible *before* checking whether a thief could hold
//!   the same slot. The fence pairs with `steal`'s fence in the
//!   single total SeqCst order: whichever executes later sees the
//!   other side's write. Weakened to `Acquire` (mutation `M2`), the
//!   owner can read a stale `top`, take the `t < b` fast path, and
//!   hand out a slot a thief also steals — a double-execute.
//! - **`pop`/`steal`: the `top` CAS (`SeqCst` success)** — the
//!   arbitration point for the last element: exactly one of
//!   {owner, thief} wins `top = t → t+1`. The *values* make the
//!   algorithm correct here (a strong CAS on a single location);
//!   SeqCst keeps the CAS inside the same total order as the two
//!   fences so the claim and the fence-protected reads can't be
//!   mutually reordered.
//! - **`steal`: `top.load(Acquire)` then `fence(SeqCst)` then
//!   `bottom.load(Acquire)`** — the fence pairs with `pop`'s: a thief
//!   that runs its fence after an owner's pop-fence must see the
//!   decremented `bottom` and bail out (`Empty`) instead of stealing
//!   the slot the owner is popping. Weakened to `Acquire` (mutation
//!   `M3`), the thief can read the pre-pop `bottom` and both sides
//!   take the same job. The `Acquire` on `bottom` is what carries the
//!   owner's `Release`-published slot writes (mutation `M4` weakens
//!   exactly this edge and reads stale slot words).

use crate::job::JobRef;
#[cfg(not(celeste_model))]
use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
// Under the model instantiation (compiled a second time inside
// `celeste-check`; see that crate's build.rs) the same names bind the
// model-checked primitives, so every access below becomes a yield
// point in the exhaustive interleaving search.
#[cfg(celeste_model)]
use crate::model_sync::{fence, AtomicIsize, AtomicUsize, Ordering};

#[cfg(not(celeste_model))]
const CAP: usize = 1024;
// The model registers one location per atomic: keep the buffer small
// so a checked deque is ~18 locations, not ~2050.
#[cfg(celeste_model)]
const CAP: usize = 8;
const MASK: isize = CAP as isize - 1;

/// One buffer slot: the two words of a [`JobRef`]. Relaxed atomics —
/// synchronization comes from the top/bottom protocol, the atomicity
/// is what keeps the owner-overwrite vs. thief-read race defined.
struct Slot {
    data: AtomicUsize,
    execute_fn: AtomicUsize,
}

pub(crate) struct Deque {
    /// Steal end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
    slots: Box<[Slot]>,
}

pub(crate) enum Steal {
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    Success(JobRef),
}

impl Deque {
    pub(crate) fn new() -> Deque {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..CAP)
                .map(|_| Slot {
                    data: AtomicUsize::new(0),
                    execute_fn: AtomicUsize::new(0),
                })
                .collect(),
        }
    }

    /// Cheap emptiness probe (racy by nature; used only as a wake-up
    /// heuristic, never for correctness).
    pub(crate) fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b <= t
    }

    fn write_slot(&self, index: isize, job: JobRef) {
        let slot = &self.slots[(index & MASK) as usize];
        let (data, execute_fn) = job.into_words();
        slot.data.store(data, Ordering::Relaxed);
        slot.execute_fn.store(execute_fn, Ordering::Relaxed);
    }

    /// Read a slot's words.
    ///
    /// # Safety
    /// The caller must either own the slot (pop) or validate the read
    /// with a successful CAS on `top` (steal) before trusting the
    /// returned job; an unvalidated value must be discarded unused.
    unsafe fn read_slot(&self, index: isize) -> JobRef {
        let slot = &self.slots[(index & MASK) as usize];
        JobRef::from_words(
            slot.data.load(Ordering::Relaxed),
            slot.execute_fn.load(Ordering::Relaxed),
        )
    }

    /// Owner-only push at the bottom. Returns the job back when the
    /// deque is full so the caller can overflow elsewhere.
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= CAP as isize {
            return Err(job);
        }
        self.write_slot(b, job);
        // Publish the slot write before the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only pop at the bottom (most recently pushed).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The owner's bottom decrement must be globally visible
        // before it reads top, or a concurrent steal of the same slot
        // could go unnoticed.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // SAFETY: with bottom lowered past this slot, no thief
            // whose CAS succeeds can also hand it out (the t == b
            // race below is resolved through top).
            let job = unsafe { self.read_slot(b) };
            if t == b {
                // Last element: race the thieves for it via top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(job);
            }
            Some(job)
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steal from the top. Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: speculative read — it may race an owner push that
        // lapped the buffer (defined behavior, the slot words are
        // atomics). The CAS below validates the read; on failure the
        // value is discarded unused, satisfying read_slot's contract.
        let job = unsafe { self.read_slot(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(job)
        } else {
            Steal::Retry
        }
    }
}
