//! The worker pool: persistent threads, fork-join `join`, scoped
//! spawns, and pool installation.
//!
//! One global pool (sized by `CELESTE_THREADS`, default the machine's
//! available parallelism) serves every parallel construct in the
//! workspace; explicit [`ThreadPool`]s exist for tests and benchmarks
//! that need a specific width. Workers are persistent for the process
//! lifetime, which is what lets callers keep expensive per-thread
//! state (e.g. Newton evaluation workspaces) in `thread_local!`
//! storage and reuse it across every task the worker ever runs — the
//! zero-allocation steady state the optimizer relies on.
//!
//! Scheduling is classic work stealing: each worker owns a Chase–Lev
//! deque, pushes forked work at the bottom, and steals from the top
//! of a victim's deque when its own is dry. External threads submit
//! through a shared injector queue. Idle workers sleep on a condvar
//! guarded by a wake epoch, so an empty pool burns no CPU while the
//! push path stays wait-free unless someone is actually asleep.

use crate::deque::{Deque, Steal};
use crate::job::{HeapJob, JobRef, LockLatch, SpinLatch, StackJob};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The node-level thread-count knob: `CELESTE_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
/// Every layer that wants "one thread per core by default" (the
/// executor, the Cyclades pool, campaign node counts) reads this one
/// knob instead of carrying its own ad-hoc parameter.
pub fn configured_threads() -> usize {
    std::env::var("CELESTE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

struct SleepState {
    /// Wake epoch, bumped (under the lock) by every notification so a
    /// sleeper that raced a wake-up can detect it missed one.
    epoch: Mutex<u64>,
    cond: Condvar,
    sleepers: AtomicUsize,
}

struct PoolInner {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Injector length mirror, so the hot path can skip the lock.
    injected: AtomicUsize,
    sleep: SleepState,
    shutdown: AtomicBool,
}

/// A fixed-width work-stealing pool. Dropping a non-global pool
/// drains its queues and joins its workers.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct WorkerCtx {
    pool: Arc<PoolInner>,
    index: usize,
}

thread_local! {
    /// Points into the live `worker_main` frame of pool workers; null
    /// on every other thread.
    static WORKER: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// The current thread's worker context, if it is a pool worker.
///
/// The returned reference aliases the worker's own stack frame, which
/// outlives every job the worker executes, so handing out an
/// unconstrained lifetime is sound for the only callers that exist:
/// code running on that same worker thread.
fn current_worker<'a>() -> Option<&'a WorkerCtx> {
    WORKER.with(|w| {
        let ptr = w.get();
        if ptr.is_null() {
            None
        } else {
            // SAFETY: non-null means we are on the worker thread
            // whose stack frame owns the ctx (see the fn docs), so
            // the reference cannot dangle while this thread runs.
            Some(unsafe { &*ptr })
        }
    })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-created global pool, sized by [`configured_threads`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Width of the pool the current thread would run parallel work on:
/// the enclosing pool when called from a worker, the global pool
/// otherwise.
pub fn num_threads() -> usize {
    match current_worker() {
        Some(ctx) => ctx.pool.deques.len(),
        None => global().num_threads(),
    }
}

impl ThreadPool {
    /// Spawn a pool with `n_threads` workers (at least one).
    pub fn new(n_threads: usize) -> ThreadPool {
        let n = n_threads.max(1);
        let inner = Arc::new(PoolInner {
            deques: (0..n).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injected: AtomicUsize::new(0),
            sleep: SleepState {
                epoch: Mutex::new(0),
                cond: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..n)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("celeste-par-{index}"))
                    .spawn(move || worker_main(inner, index))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, handles }
    }

    pub fn num_threads(&self) -> usize {
        self.inner.deques.len()
    }

    /// Run `f` on a worker of this pool, blocking until it returns.
    /// Parallel constructs inside `f` (join/scope/par iterators) run
    /// on this pool. Calling from a worker of this same pool runs `f`
    /// inline.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(ctx) = current_worker() {
            if Arc::ptr_eq(&ctx.pool, &self.inner) {
                return f();
            }
        }
        let job = StackJob::new(LockLatch::default(), f);
        // SAFETY: we block on the latch below, so the stack job
        // outlives its execution.
        let job_ref = unsafe { job.as_job_ref() };
        inject(&self.inner, job_ref);
        job.latch().wait();
        job.into_result()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let mut epoch = self
                .inner
                .sleep
                .epoch
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *epoch = epoch.wrapping_add(1);
            self.inner.sleep.cond.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(inner: Arc<PoolInner>, index: usize) {
    let ctx = WorkerCtx { pool: inner, index };
    WORKER.with(|w| w.set(&ctx as *const WorkerCtx));
    loop {
        if let Some(job) = find_work(&ctx.pool, ctx.index) {
            execute_job(job);
            continue;
        }
        if ctx.pool.shutdown.load(Ordering::Acquire) {
            break;
        }
        idle_wait(&ctx.pool);
    }
    WORKER.with(|w| w.set(std::ptr::null()));
}

/// Jobs never unwind past their own boundary (StackJob catches, scope
/// spawns wrap in catch_unwind); if one somehow does, taking down the
/// whole process beats a silently dead worker and a hung pool.
fn execute_job(job: JobRef) {
    let aborter = AbortOnUnwind;
    // SAFETY: every JobRef in a queue came from a live job.
    unsafe { job.execute() };
    std::mem::forget(aborter);
}

struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("celeste-par: a job unwound past its panic boundary; aborting");
        std::process::abort();
    }
}

/// Find a runnable job: own deque first (LIFO, cache-hot), then the
/// injector, then steal sweeps over the other workers' deques.
fn find_work(inner: &PoolInner, self_index: usize) -> Option<JobRef> {
    if let Some(job) = inner.deques[self_index].pop() {
        return Some(job);
    }
    if inner.injected.load(Ordering::Acquire) > 0 {
        let mut q = inner.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = q.pop_front() {
            inner.injected.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    let n = inner.deques.len();
    // Two sweeps: the second absorbs CAS races flagged as Retry.
    for _ in 0..2 {
        let mut saw_retry = false;
        for k in 1..n {
            let victim = (self_index + k) % n;
            match inner.deques[victim].steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if !saw_retry {
            break;
        }
    }
    None
}

fn has_work(inner: &PoolInner) -> bool {
    inner.injected.load(Ordering::SeqCst) > 0 || inner.deques.iter().any(|d| !d.is_empty())
}

fn idle_wait(inner: &PoolInner) {
    let seen = *inner.sleep.epoch.lock().unwrap_or_else(|e| e.into_inner());
    inner.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
    // Recheck after advertising: a producer that pushed before seeing
    // the sleeper count left work this worker must not sleep past.
    if has_work(inner) || inner.shutdown.load(Ordering::Acquire) {
        inner.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    {
        let epoch = inner.sleep.epoch.lock().unwrap_or_else(|e| e.into_inner());
        if *epoch == seen {
            // Timeout is belt-and-braces against any missed wake; the
            // epoch check above is what makes wake-ups reliable.
            let _ = inner
                .sleep
                .cond
                .wait_timeout(epoch, Duration::from_millis(5));
        }
    }
    inner.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
}

/// Wake workers if (and only if) any are asleep. The sleeper check
/// keeps job pushes lock-free in the common all-busy case.
fn notify_new_work(inner: &PoolInner) {
    if inner.sleep.sleepers.load(Ordering::SeqCst) > 0 {
        let mut epoch = inner.sleep.epoch.lock().unwrap_or_else(|e| e.into_inner());
        *epoch = epoch.wrapping_add(1);
        inner.sleep.cond.notify_all();
    }
}

/// Worker-side push: own deque, overflowing to the injector.
fn push_job(ctx: &WorkerCtx, job: JobRef) {
    match ctx.pool.deques[ctx.index].push(job) {
        Ok(()) => notify_new_work(&ctx.pool),
        Err(job) => inject(&ctx.pool, job),
    }
}

/// External submission (and deque overflow): the shared FIFO.
fn inject(inner: &PoolInner, job: JobRef) {
    {
        let mut q = inner.injector.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
    }
    inner.injected.fetch_add(1, Ordering::SeqCst);
    notify_new_work(inner);
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return
/// both results. Either closure's panic is propagated after both have
/// finished (so borrowed data is never observed mid-use).
///
/// On a pool worker this is the classic fork-join: `b` is pushed to
/// the worker's own deque (stealable), `a` runs inline, and `b` is
/// popped back if nobody stole it. Elsewhere the pair is installed
/// onto the global pool, or run serially when the pool is one wide.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some(ctx) => join_on_worker(ctx, oper_a, oper_b),
        None => {
            let pool = global();
            if pool.num_threads() <= 1 {
                return (oper_a(), oper_b());
            }
            pool.install(|| join(oper_a, oper_b))
        }
    }
}

fn join_on_worker<A, B, RA, RB>(ctx: &WorkerCtx, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(SpinLatch::default(), oper_b);
    // SAFETY: this frame blocks on the latch before returning (even
    // when `oper_a` panics), so the job outlives its execution.
    let ref_b = unsafe { job_b.as_job_ref() };
    push_job(ctx, ref_b);

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Retrieve b: thanks to LIFO discipline the top of our deque is
    // either b itself or empty (b stolen / overflowed). While b is in
    // someone else's hands, keep executing other work.
    while !job_b.latch().probe() {
        match ctx.pool.deques[ctx.index].pop() {
            Some(job) if job == ref_b => {
                execute_job(job);
                break;
            }
            Some(job) => execute_job(job),
            None => match find_work(&ctx.pool, ctx.index) {
                Some(job) => execute_job(job),
                None => std::thread::yield_now(),
            },
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        Err(p) => {
            // b has completed; discard its outcome and propagate a's.
            panic::resume_unwind(p)
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion signal for scope owners that are not pool workers.
    done_lock: Mutex<()>,
    done_cond: Condvar,
}

impl ScopeState {
    fn job_done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cond.notify_all();
        }
    }

    fn wait_all(&self) {
        if let Some(ctx) = current_worker() {
            // Pool worker: drain useful work instead of blocking.
            let mut idle_spins = 0u32;
            while self.pending.load(Ordering::SeqCst) > 0 {
                match find_work(&ctx.pool, ctx.index) {
                    Some(job) => {
                        execute_job(job);
                        idle_spins = 0;
                    }
                    None => {
                        idle_spins += 1;
                        if idle_spins < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                }
            }
        } else {
            let mut guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            while self.pending.load(Ordering::SeqCst) > 0 {
                let (g, _) = self
                    .done_cond
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
            }
        }
    }
}

/// A scope for spawning jobs that may borrow from the enclosing
/// frame. All spawns complete before [`scope`] returns.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, like std::thread::Scope.
    _marker: PhantomData<Cell<&'scope ()>>,
}

/// Run `op` with a [`Scope`] handle on the calling thread; every job
/// spawned on the scope finishes before `scope` returns. Panics from
/// the body or any spawn are propagated (body first, then the first
/// spawn panic) — but only after all spawned work has completed, so
/// borrows stay sound.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cond: Condvar::new(),
        }),
        _marker: PhantomData,
    };
    let body_result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    s.state.wait_all();
    match body_result {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            let first_panic = s
                .state
                .panic
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            if let Some(p) = first_panic {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` onto the pool (the enclosing pool when called from a
    /// worker, the global pool otherwise). `f` may borrow anything
    /// that outlives the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        state.pending.fetch_add(1, Ordering::SeqCst);
        let wrapped = move || {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(p);
            }
            state.job_done();
        };
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapped);
        // SAFETY: the scope's wait_all keeps every borrow in `f` alive
        // until the job has run, which is exactly the guarantee the
        // 'static erasure needs.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let job = HeapJob::boxed(boxed);
        match current_worker() {
            Some(ctx) => push_job(ctx, job),
            None => inject(&global().inner, job),
        }
    }
}
