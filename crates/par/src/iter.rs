//! Slice-shaped parallel iterators over the fork-join executor.
//!
//! A deliberately small subset of rayon's model: every source is an
//! exactly-sized, index-splittable producer over a slice
//! ([`Splittable`]), adapters (`map`/`zip`/`enumerate`) preserve that
//! shape, and drivers (`for_each`/`collect`/`sum`) recursively
//! `join`-split the producer until a leaf is at most
//! `len / (threads × SPLITS_PER_THREAD)` items, then run the leaf
//! with ordinary sequential iterators. Order-sensitive results
//! (`collect`, `enumerate` indices, `for_each` over disjoint slices)
//! are assembled positionally, so those drivers are **bit-identical
//! to the serial path** no matter how many threads run or who steals
//! what. `sum` is the exception: it reduces as a tree whose shape
//! follows the (thread-count-dependent) split, which is exact for
//! integer sums but reassociates floating-point addition — callers
//! needing bit-stable float totals should `collect` and sum
//! sequentially.
//!
//! ## Sequential cutoff
//!
//! Splitting costs one stack job push/pop (~0.2 µs on the reference
//! container, and entering the pool from an external thread ~8 µs
//! once per driver call — see
//! `crates/bench/benches/par_overhead.rs`). Leaves are therefore kept
//! coarse — [`SPLITS_PER_THREAD`] pieces per worker is enough slack
//! for stealing to balance skewed loads — and a producer shorter than
//! [`MIN_PARALLEL_LEN`] items, or any run on a one-thread pool, stays
//! entirely sequential on the calling thread. Workloads whose items
//! are sub-microsecond should batch them first (as
//! `render_observed` does by handing out whole rows).

use crate::pool::{join, num_threads};
use std::sync::Arc;

/// Target number of splittable pieces per pool thread. More pieces →
/// better load balancing on skewed items; fewer → less overhead.
pub const SPLITS_PER_THREAD: usize = 4;

/// Producers shorter than this never fork.
pub const MIN_PARALLEL_LEN: usize = 2;

/// An exactly-sized producer that can be split at an index into two
/// independent producers, or lowered into a sequential iterator.
pub trait Splittable: Sized + Send {
    type Item: Send;
    type Seq: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    fn into_seq(self) -> Self::Seq;
}

/// Leaf size for a producer of `len` items on the current pool.
fn leaf_len(len: usize) -> usize {
    let threads = num_threads();
    if threads <= 1 || len < MIN_PARALLEL_LEN {
        return len.max(1);
    }
    (len / (threads * SPLITS_PER_THREAD)).max(1)
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel counterpart of `slice.iter()`.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Splittable for ParSliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParSliceIter { slice: l }, ParSliceIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel counterpart of `slice.chunks(n)`. Splits on chunk
/// boundaries so leaves see exactly the chunks serial code would.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> Splittable for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (
            ParChunks {
                slice: l,
                chunk: self.chunk,
            },
            ParChunks {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel counterpart of `slice.chunks_mut(n)`.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> Splittable for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            ParChunksMut {
                slice: l,
                chunk: self.chunk,
            },
            ParChunksMut {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter. The mapping function is shared across splits.
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential tail of [`Map`].
pub struct MapSeq<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
}

impl<P, F, R> Splittable for Map<P, F>
where
    P: Splittable,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = MapSeq<P::Seq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        MapSeq {
            base: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// `zip` adapter; length is the shorter side, splits stay aligned.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> Splittable for Zip<A, B>
where
    A: Splittable,
    B: Splittable,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// `enumerate` adapter; indices are global (split-invariant).
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential tail of [`Enumerate`].
pub struct EnumerateSeq<I> {
    base: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<P: Splittable> Splittable for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            base: self.base.into_seq(),
            next: self.offset,
        }
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

fn drive_for_each<P, F>(p: P, f: &F, leaf: usize)
where
    P: Splittable,
    F: Fn(P::Item) + Sync,
{
    if p.len() <= leaf {
        for item in p.into_seq() {
            f(item);
        }
        return;
    }
    let mid = p.len() / 2;
    let (l, r) = p.split_at(mid);
    join(
        move || drive_for_each(l, f, leaf),
        move || drive_for_each(r, f, leaf),
    );
}

fn drive_collect_vec<P>(p: P, leaf: usize) -> Vec<P::Item>
where
    P: Splittable,
{
    if p.len() <= leaf {
        return p.into_seq().collect();
    }
    let mid = p.len() / 2;
    let (l, r) = p.split_at(mid);
    let (mut lv, mut rv) = join(
        move || drive_collect_vec(l, leaf),
        move || drive_collect_vec(r, leaf),
    );
    lv.append(&mut rv);
    lv
}

fn drive_sum<P, S>(p: P, leaf: usize) -> S
where
    P: Splittable,
    S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
{
    if p.len() <= leaf {
        return p.into_seq().sum();
    }
    let mid = p.len() / 2;
    let (l, r) = p.split_at(mid);
    let (ls, rs) = join(
        move || drive_sum::<P, S>(l, leaf),
        move || drive_sum::<P, S>(r, leaf),
    );
    [ls, rs].into_iter().sum()
}

/// Collection types buildable from a parallel producer.
pub trait FromParallel<T> {
    fn from_par<P: Splittable<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallel<T> for Vec<T> {
    fn from_par<P: Splittable<Item = T>>(p: P) -> Vec<T> {
        let leaf = leaf_len(p.len());
        drive_collect_vec(p, leaf)
    }
}

/// The user-facing adapter/driver methods, available on every
/// [`Splittable`] (mirroring the rayon method names our call sites
/// already use).
pub trait ParallelIterator: Splittable {
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    fn zip<B: Splittable>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let leaf = leaf_len(self.len());
        drive_for_each(self, &f, leaf);
    }

    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_par(self)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let leaf = leaf_len(self.len());
        drive_sum(self, leaf)
    }

    fn count(self) -> usize {
        self.len()
    }
}

impl<P: Splittable> ParallelIterator for P {}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}
