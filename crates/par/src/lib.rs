//! `celeste-par`: a real work-stealing fork-join executor.
//!
//! The paper's node-level story (§IV-D, §VII) is "saturate every core
//! of the node": Cyclades threads jointly optimizing a region while
//! image synthesis, staging, and coadds run in parallel around them.
//! This crate is the one scheduler all of those layers share:
//!
//! * [`join`] — fork-join primitive with work stealing (Chase–Lev
//!   deques, one per persistent worker);
//! * [`scope`] — structured task spawning that may borrow from the
//!   enclosing frame (what the Cyclades pool and campaign node loop
//!   run on);
//! * [`iter`] — slice-shaped parallel iterators (`par_iter`,
//!   `par_chunks`, `par_chunks_mut` + `map`/`zip`/`enumerate` and
//!   `for_each`/`collect`/`sum` drivers) that the vendored `rayon`
//!   shim re-exports, making every existing call site genuinely
//!   parallel with no signature churn;
//! * a lazily-created global [`ThreadPool`] sized by the single
//!   `CELESTE_THREADS` knob ([`configured_threads`]), plus explicit
//!   pools for tests and benchmarks that need a fixed width.
//!
//! Workers are persistent, so per-thread state in `thread_local!`
//! (e.g. the optimizer's evaluation workspaces) is built once per
//! process and reused forever — the zero-allocation steady state the
//! Newton hot path depends on. All drivers assemble order-sensitive
//! results left-to-right, so parallel output is bit-identical to the
//! serial path at any thread count.

mod deque;
mod job;
mod pool;

pub mod iter;

pub use pool::{configured_threads, global, join, num_threads, scope, Scope, ThreadPool};

#[cfg(test)]
mod tests {
    use super::iter::{ParallelIterator, ParallelSlice, ParallelSliceMut};
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_spawns_borrow_locals() {
        let mut out = vec![0usize; 8];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_zip_enumerate() {
        let mut dst = vec![0u32; 9];
        let src: Vec<u32> = (0..9).collect();
        dst.par_chunks_mut(3)
            .zip(src.par_chunks(3))
            .enumerate()
            .for_each(|(i, (d, s))| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = b + i as u32;
                }
            });
        assert_eq!(dst, vec![0, 1, 2, 4, 5, 6, 8, 9, 10]);
    }

    #[test]
    fn par_sum_matches_serial() {
        let v: Vec<usize> = (0..10_000).collect();
        let par: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(par, (0..10_000).sum::<usize>());
    }

    #[test]
    fn install_runs_on_explicit_pool() {
        let pool = ThreadPool::new(3);
        let n = pool.install(num_threads);
        assert_eq!(n, 3);
        let outside = num_threads();
        assert!(outside >= 1);
    }
}
