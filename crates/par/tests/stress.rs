//! Executor stress tests: nested joins, panic propagation, skewed
//! loads, and work stealing across explicit pool widths.

use celeste_par::iter::{ParallelIterator, ParallelSlice, ParallelSliceMut};
use celeste_par::{join, scope, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Recursive fork-join all the way to single elements: exercises deep
/// nesting, pop-after-push, and steal-while-waiting.
fn par_triangle(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 4 {
        return (lo..hi).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = join(|| par_triangle(lo, mid), || par_triangle(mid, hi));
    a + b
}

#[test]
fn nested_joins_compute_correct_sum() {
    for width in [1, 2, 4, 8] {
        let pool = ThreadPool::new(width);
        let n = 40_000u64;
        let got = pool.install(|| par_triangle(0, n));
        assert_eq!(got, n * (n - 1) / 2, "width {width}");
    }
}

#[test]
fn join_propagates_panic_from_either_side() {
    let pool = ThreadPool::new(2);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| join(|| 1, || panic!("right side")));
    }))
    .unwrap_err();
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "right side");

    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| join(|| panic!("left side"), || 2));
    }))
    .unwrap_err();
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "left side");
}

#[test]
fn join_completes_other_side_before_unwinding() {
    // The panicking side must not unwind past borrowed state while
    // the other side still runs: the counter must always reach 100.
    let pool = ThreadPool::new(4);
    let done = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            join(
                || {
                    for _ in 0..100 {
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                },
                || panic!("boom"),
            )
        })
    }));
    assert!(result.is_err());
    assert_eq!(done.load(Ordering::SeqCst), 100);
}

#[test]
fn scope_propagates_spawn_panic_after_all_jobs_finish() {
    let pool = ThreadPool::new(3);
    let completed = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            scope(|s| {
                for i in 0..16 {
                    let completed = &completed;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("spawn 7");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        })
    }));
    assert!(result.is_err());
    assert_eq!(completed.load(Ordering::SeqCst), 15);
}

#[test]
fn scope_from_external_thread_works() {
    // No install: the scope owner is not a pool worker, so completion
    // goes through the blocking path.
    let total = AtomicUsize::new(0);
    scope(|s| {
        for i in 0..32 {
            let total = &total;
            s.spawn(move || {
                total.fetch_add(i, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(total.load(Ordering::SeqCst), (0..32).sum());
}

#[test]
fn skewed_loads_all_complete_and_stay_ordered() {
    // Item cost varies by ~1000x; stealing must still finish every
    // item and collect must preserve index order.
    let items: Vec<usize> = (0..64).collect();
    for width in [1, 2, 4] {
        let pool = ThreadPool::new(width);
        let out: Vec<u64> = pool.install(|| {
            items
                .par_iter()
                .map(|&i| {
                    let spin = if i % 16 == 0 { 200_000 } else { 200 };
                    let mut acc = 0u64;
                    for k in 0..spin {
                        acc = acc
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(k ^ i as u64);
                    }
                    std::hint::black_box(acc);
                    i as u64
                })
                .collect()
        });
        assert_eq!(out, (0..64).collect::<Vec<u64>>(), "width {width}");
    }
}

#[test]
fn many_small_scopes_reuse_the_pool() {
    let pool = ThreadPool::new(2);
    pool.install(|| {
        for round in 0..200 {
            let mut out = [0usize; 4];
            scope(|s| {
                for (i, slot) in out.iter_mut().enumerate() {
                    s.spawn(move || *slot = i + round);
                }
            });
            assert_eq!(out, [round, round + 1, round + 2, round + 3]);
        }
    });
}

#[test]
fn for_each_write_disjoint_chunks() {
    let mut data = vec![0u64; 4096];
    let pool = ThreadPool::new(4);
    pool.install(|| {
        data.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + j) as u64;
            }
        });
    });
    assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
}

#[test]
fn parallel_output_is_identical_across_widths() {
    let input: Vec<u64> = (0..1 << 12).map(|i| i * 2654435761).collect();
    let reference: Vec<u64> = ThreadPool::new(1).install(|| {
        input
            .par_iter()
            .map(|&x| x.wrapping_mul(x) ^ x.rotate_left(13))
            .collect()
    });
    for width in [2, 4, 7] {
        let got: Vec<u64> = ThreadPool::new(width).install(|| {
            input
                .par_iter()
                .map(|&x| x.wrapping_mul(x) ^ x.rotate_left(13))
                .collect()
        });
        assert_eq!(got, reference, "width {width}");
    }
}
