//! Vector clocks over the model's (small, fixed) thread universe.

/// Maximum model threads per execution, root included. Exhaustive
/// interleaving search is exponential in thread count; every model in
/// this workspace needs at most an owner plus two or three peers.
pub const MAX_THREADS: usize = 4;

/// A vector clock: one Lamport component per model thread. Component
/// `t` counts the store/fence events thread `t` has performed;
/// `a.covers(t, s)` means the owner of `a` has (transitively)
/// synchronized with event `s` of thread `t`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VersionVec {
    v: [u32; MAX_THREADS],
}

impl VersionVec {
    /// The all-zero clock (knows of no events).
    pub fn new() -> VersionVec {
        VersionVec::default()
    }

    /// Pointwise maximum: afterwards `self` covers everything either
    /// clock covered. The heart of acquire/release propagation.
    pub fn join(&mut self, other: &VersionVec) {
        for (a, b) in self.v.iter_mut().zip(other.v.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Component for thread `t`.
    pub fn get(&self, t: usize) -> u32 {
        self.v[t]
    }

    /// Bump thread `t`'s component (a new event by `t`); returns the
    /// event's sequence number.
    pub fn inc(&mut self, t: usize) -> u32 {
        self.v[t] += 1;
        self.v[t]
    }

    /// Whether this clock has seen event `seq` of thread `t`.
    pub fn covers(&self, t: usize, seq: u32) -> bool {
        self.v[t] >= seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VersionVec::new();
        let mut b = VersionVec::new();
        a.inc(0);
        a.inc(0);
        b.inc(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert!(a.covers(0, 2));
        assert!(a.covers(1, 1));
        assert!(!a.covers(1, 2));
    }
}
