//! Seeded weakenings for the mutation harness.
//!
//! A model checker only has teeth if it demonstrably *catches* bugs,
//! so the harness runs each checked algorithm under a list of seeded
//! mutations — memory-ordering downgrades (`SeqCst → AcqRel →
//! Relaxed`) applied at specific sites, or condvar notification
//! weakenings — and asserts the checker reports a violation for every
//! one. Mutations are applied inside the model runtime, so the ported
//! production source text stays byte-identical.
//!
//! Sites are addressed structurally rather than by source span: an
//! atomic location's id is its creation order within the execution
//! (deterministic — the model replays creations identically), the
//! thread id distinguishes e.g. the owner's `pop` fence from a
//! thief's `steal` fence, and `from` pins the ordering the production
//! code requested so a rule can never silently rewrite the wrong
//! operation.

use std::sync::atomic::Ordering;

/// Which class of operation a [`Mutation::Weaken`] rule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (CAS, fetch_add, swap).
    Rmw,
    /// A standalone `fence` (no location; rules must leave `loc` as
    /// `None`).
    Fence,
}

/// One seeded weakening. The first matching rule fires; a rule
/// matches when the op kind and requested ordering equal `kind`/
/// `from` and the optional thread/location filters agree.
#[derive(Clone, Copy, Debug)]
pub enum Mutation {
    /// Replace a requested memory ordering with a weaker one at
    /// matching sites.
    Weaken {
        /// Restrict to ops performed by this model thread id.
        thread: Option<usize>,
        /// Restrict to this atomic location (creation order id).
        loc: Option<usize>,
        /// Operation class the rule applies to.
        kind: OpKind,
        /// The ordering the production source requests at the site.
        from: Ordering,
        /// The weakened ordering to substitute.
        to: Ordering,
    },
    /// Drop `Condvar::notify_one` calls (models a forgotten wakeup).
    SuppressNotifyOne {
        /// Restrict to this condvar (creation order id).
        cond: Option<usize>,
    },
    /// Degrade `Condvar::notify_all` to waking a single thread
    /// (models the "one waiter is enough" fallacy on disconnect
    /// broadcasts).
    NotifyAllToOne {
        /// Restrict to this condvar (creation order id).
        cond: Option<usize>,
    },
}

/// A [`Mutation`] plus whether it ever fired during a run — a rule
/// that never matches means the harness targeted a site that does not
/// exist, which must fail loudly rather than vacuously pass.
#[derive(Clone, Debug)]
pub(crate) struct MutationState {
    pub(crate) rule: Mutation,
    pub(crate) fired: bool,
}
