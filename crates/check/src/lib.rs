//! `celeste-check`: deterministic concurrency model checking for the
//! workspace's lock-free core, plus a workspace invariant lint
//! (`celeste_lint`).
//!
//! The checker is a small vendored loom-style engine: model atomics,
//! mutexes and condvars whose every access is a yield point for an
//! exhaustive DFS scheduler (bounded preemptions), over an
//! approximate C11 memory model (per-location store histories,
//! vector clocks, release/acquire transfer, a global SeqCst clock).
//!
//! The checked code is *the production source text*: `build.rs` sets
//! `celeste_model`, and [`deque`]/[`chan_port`] include
//! `crates/par/src/deque.rs` and `vendor/crossbeam/src/lib.rs` by
//! `#[path]`, where `#[cfg(celeste_model)]` import switches bind the
//! model primitives instead of std's. Same bytes, two instantiations
//! — so a passing model run speaks about the code that ships.

pub mod job;
pub mod lint;
pub mod model;
pub mod mutate;
mod rt;
pub mod sync;
pub mod thread;
pub mod vv;

/// What the ported sources import under `cfg(celeste_model)`: the
/// model primitives under their std names, plus the std types that
/// stay real (`Arc`, `Ordering`).
pub mod model_sync {
    pub use std::sync::atomic::Ordering;
    pub use std::sync::Arc;

    pub use crate::sync::{fence, AtomicIsize, AtomicUsize, Condvar, Mutex, MutexGuard};
}

/// The production Chase-Lev deque (`crates/par/src/deque.rs`),
/// compiled against the model atomics. Only the model test suite
/// drives it, so the non-test build sees it as dead code.
#[allow(dead_code)]
#[path = "../../par/src/deque.rs"]
pub mod deque;

/// The production crossbeam channel shim (`vendor/crossbeam/src/
/// lib.rs`), compiled against the model mutex/condvar. The channel
/// API lives at `chan_port::channel::*` because the included file is
/// that crate's root.
#[path = "../../../vendor/crossbeam/src/lib.rs"]
pub mod chan_port;

#[cfg(test)]
mod tests;
