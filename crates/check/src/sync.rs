//! Model drop-ins for the std sync primitives the checked sources
//! use. Each value registers a location/mutex/condvar id with the
//! current execution at construction; every operation is a scheduler
//! yield point routed through the (private) `rt` module.
//!
//! These types only work inside `Model::check` — constructing one
//! outside an execution panics with a clear message.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::{LockResult, Mutex as OsMutex, MutexGuard as OsGuard};

use crate::rt;

/// Model [`std::sync::atomic::fence`].
pub fn fence(ord: Ordering) {
    rt::fence(ord);
}

/// Model `AtomicUsize`: same API surface as std's, every access a
/// yield point in the interleaving search.
pub struct AtomicUsize {
    loc: usize,
}

impl AtomicUsize {
    pub fn new(v: usize) -> AtomicUsize {
        AtomicUsize {
            loc: rt::new_atomic(v),
        }
    }

    pub fn load(&self, ord: Ordering) -> usize {
        rt::atomic_load(self.loc, ord)
    }

    pub fn store(&self, val: usize, ord: Ordering) {
        rt::atomic_store(self.loc, val, ord);
    }

    pub fn swap(&self, val: usize, ord: Ordering) -> usize {
        rt::atomic_rmw(self.loc, ord, Ordering::Relaxed, |_| Some(val)).0
    }

    pub fn fetch_add(&self, val: usize, ord: Ordering) -> usize {
        rt::atomic_rmw(self.loc, ord, Ordering::Relaxed, |cur| {
            Some(cur.wrapping_add(val))
        })
        .0
    }

    pub fn fetch_sub(&self, val: usize, ord: Ordering) -> usize {
        rt::atomic_rmw(self.loc, ord, Ordering::Relaxed, |cur| {
            Some(cur.wrapping_sub(val))
        })
        .0
    }

    pub fn compare_exchange(
        &self,
        expected: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        let (read, wrote) = rt::atomic_rmw(self.loc, success, failure, |cur| {
            (cur == expected).then_some(new)
        });
        if wrote {
            Ok(read)
        } else {
            Err(read)
        }
    }

    /// Modeled as strong: spurious failures only add retry paths that
    /// the strong model already subsumes via genuine CAS losses.
    pub fn compare_exchange_weak(
        &self,
        expected: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(expected, new, success, failure)
    }
}

/// Model `AtomicIsize`; values round-trip through the usize store
/// history as raw bit patterns.
pub struct AtomicIsize {
    loc: usize,
}

impl AtomicIsize {
    pub fn new(v: isize) -> AtomicIsize {
        AtomicIsize {
            loc: rt::new_atomic(v as usize),
        }
    }

    pub fn load(&self, ord: Ordering) -> isize {
        rt::atomic_load(self.loc, ord) as isize
    }

    pub fn store(&self, val: isize, ord: Ordering) {
        rt::atomic_store(self.loc, val as usize, ord);
    }

    pub fn fetch_add(&self, val: isize, ord: Ordering) -> isize {
        rt::atomic_rmw(self.loc, ord, Ordering::Relaxed, |cur| {
            Some((cur as isize).wrapping_add(val) as usize)
        })
        .0 as isize
    }

    pub fn compare_exchange(
        &self,
        expected: isize,
        new: isize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<isize, isize> {
        let (read, wrote) = rt::atomic_rmw(self.loc, success, failure, |cur| {
            (cur as isize == expected).then_some(new as usize)
        });
        if wrote {
            Ok(read as isize)
        } else {
            Err(read as isize)
        }
    }
}

/// Model `Mutex<T>`.
///
/// Exclusion normally comes from the model protocol (one thread runs
/// at a time and `rt::mutex_lock` blocks on contention). The embedded
/// *real* mutex exists for abort unwinding: when an execution aborts,
/// several OS threads unwind concurrently and their destructors
/// (e.g. channel `Drop` impls) still lock — the real mutex keeps the
/// data access exclusive on that path. The real guard is released
/// *before* the model unlock so a parked unlocker can never hold the
/// real lock across a scheduler switch.
pub struct Mutex<T> {
    id: usize,
    real: OsMutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: the data is only reachable through `lock()`, which enforces
// exclusion via the model protocol (normal mode) or the embedded real
// mutex (abort mode), so `Mutex<T>` is as thread-safe as std's.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only hands out data access under a
// held lock.
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    real: Option<OsGuard<'a, ()>>,
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Mutex<T> {
        Mutex {
            id: rt::new_mutex(),
            real: OsMutex::new(()),
            data: UnsafeCell::new(data),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        // Model acquisition first (may park this thread); the real
        // lock is uncontended in normal mode once the model grants.
        rt::mutex_lock(self.id);
        let real = self.real.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            mx: self,
            real: Some(real),
        })
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusion (model protocol or, while
        // aborting, the embedded real mutex), so no aliasing &mut
        // exists for the lifetime of this borrow.
        unsafe { &*self.mx.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the held lock makes this the only
        // live reference to the data.
        unsafe { &mut *self.mx.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real lock first: a model unlock can park this thread, and
        // holding the real lock across the park would block the next
        // model-granted locker at the OS level.
        drop(self.real.take());
        rt::mutex_unlock(self.mx.id);
    }
}

/// Model `Condvar` (no spurious wakeups; the checked code loops on
/// its condition regardless).
pub struct Condvar {
    id: usize,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar { id: rt::new_cond() }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mx = guard.mx;
        // Release the real lock before the model wait parks us; the
        // guard's Drop must not run (the model mutex is released
        // inside cond_wait as part of the atomic wait protocol).
        drop(guard.real.take());
        std::mem::forget(guard);
        rt::cond_wait(self.id, mx.id);
        let real = mx.real.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            mx,
            real: Some(real),
        })
    }

    pub fn notify_one(&self) {
        rt::cond_notify_one(self.id);
    }

    pub fn notify_all(&self) {
        rt::cond_notify_all(self.id);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}
