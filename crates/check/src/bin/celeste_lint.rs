//! `celeste_lint`: static invariant gate for the workspace. Exits
//! nonzero when any rule is violated; see `celeste_check::lint`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(|| {
            // Default to the workspace root: two levels up from this
            // crate's manifest dir.
            std::env::var("CARGO_MANIFEST_DIR")
                .ok()
                .map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));
    let violations = celeste_check::lint::run(&root);
    if violations.is_empty() {
        println!("celeste_lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
        }
        eprintln!("celeste_lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
