//! Model stand-in for `celeste-par`'s `JobRef`.
//!
//! The production `JobRef` is a type-erased (pointer, fn-pointer)
//! pair whose `from_words` transmutes — undefined behavior if fed
//! words that were never a real job. Under the model we *want* to
//! observe exactly that situation (a mutated ordering letting a thief
//! read unwritten or torn slot words), so the model `JobRef` is a
//! plain two-word value: `from_words` is total, and the tests assert
//! on the word values a steal returns.
//!
//! The ported `deque.rs` names `crate::job::JobRef`; inside
//! `celeste-check` that path resolves here instead of to the
//! production type. Same source text, harmless substitution.

/// Two opaque words standing in for the production job pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobRef {
    pub data: usize,
    pub execute_fn: usize,
}

impl JobRef {
    /// Build a distinguishable fake job for the tests.
    pub fn sentinel(i: usize) -> JobRef {
        JobRef {
            data: 0x1000 + i,
            execute_fn: 0x2000 + i,
        }
    }

    pub fn into_words(self) -> (usize, usize) {
        (self.data, self.execute_fn)
    }

    pub fn from_words(data: usize, execute_fn: usize) -> JobRef {
        JobRef { data, execute_fn }
    }
}
