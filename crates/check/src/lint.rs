//! `celeste_lint`: the workspace invariant gate. A small static pass
//! over every `.rs` file in the workspace (no rustc, no network)
//! enforcing the hand-auditable invariants the type system can't:
//!
//! 1. **`undocumented-unsafe`** — every `unsafe` block, `unsafe fn`
//!    and `unsafe impl` carries a `// SAFETY:` comment (or a
//!    `# Safety` rustdoc section) immediately above or on the line.
//! 2. **`hot-path-panic`** — no `unwrap`/`expect`/`panic!` family
//!    macros in the hot-path modules (`bvn.rs`, `likelihood.rs`,
//!    `fused.rs`, `deque.rs`) outside their `#[cfg(test)]` modules.
//! 3. **`kernel-alloc`** — no heap allocation and no wall-clock reads
//!    (`vec!`, `Box::new`, `collect`, `format!`, `Instant::now`, …)
//!    in the numeric kernel files outside tests. `Vec::new()` is
//!    allowed: it is `const` and does not allocate.
//! 4. **`store-lock-order`** — every lock acquisition in
//!    `crates/store` and `crates/serve` sits under a `// lock-order:`
//!    annotation naming its rank, so the documented serve-policy →
//!    id-stripe → cell-shard order stays visible (and greppable) at
//!    every acquisition site.
//! 5. **`missing-forbid-unsafe`** — crates audited as needing no
//!    unsafe (`store`, `serve`, `celeste`, `photo`, `cluster`) must
//!    pin that with `#![forbid(unsafe_code)]`.
//!
//! The pass works on a comment/string-stripped shadow of each file so
//! tokens inside literals or prose never trip a rule, while the
//! stripped-out comment text is kept per line for the `SAFETY:` /
//! `lock-order:` annotation checks.

use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a file location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

/// Modules where a panic is an outage, not a bug report: the inner
/// pixel loops and the work-stealing deque.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/bvn.rs",
    "crates/core/src/likelihood.rs",
    "crates/linalg/src/fused.rs",
    "crates/par/src/deque.rs",
];

/// Numeric kernel files: additionally no allocation or clock reads
/// (the deque allocates once at construction, so it is hot-path but
/// not kernel).
const KERNEL_FILES: &[&str] = &[
    "crates/core/src/bvn.rs",
    "crates/core/src/likelihood.rs",
    "crates/linalg/src/fused.rs",
];

/// Crates audited as not needing `unsafe` at all.
const FORBID_UNSAFE_CRATES: &[&str] = &[
    "crates/store",
    "crates/serve",
    "crates/celeste",
    "crates/photo",
    "crates/cluster",
];

const PANIC_TOKENS: &[&str] = &[".unwrap(", ".expect(", "panic!", "todo!", "unimplemented!"];

const ALLOC_TOKENS: &[&str] = &[
    "vec!",
    "Vec::with_capacity",
    "Box::new",
    "String::from",
    "String::new",
    "format!",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
    ".collect(",
    "Instant::now",
    "SystemTime::now",
];

/// Run every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let root = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let mut out = Vec::new();
    let mut files = Vec::new();
    for top in ["crates", "tests", "vendor"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = fs::read_to_string(path) else {
            out.push(Violation {
                file: rel,
                line: 0,
                rule: "io",
                msg: "unreadable source file".into(),
            });
            continue;
        };
        let shadow = Shadow::of(&text);
        check_unsafe(&rel, &shadow, &mut out);
        if HOT_PATH_FILES.contains(&rel.as_str()) {
            check_tokens(&rel, &shadow, PANIC_TOKENS, "hot-path-panic", &mut out);
        }
        if KERNEL_FILES.contains(&rel.as_str()) {
            check_tokens(&rel, &shadow, ALLOC_TOKENS, "kernel-alloc", &mut out);
        }
        if rel.starts_with("crates/store/src/") || rel.starts_with("crates/serve/src/") {
            check_store_lock_order(&rel, &shadow, &mut out);
        }
    }
    for krate in FORBID_UNSAFE_CRATES {
        check_forbid_unsafe(&root, krate, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Comment/string-stripped shadow.

/// Per-line views of a source file: `code` has comments and string
/// contents blanked (structure and line count preserved), `comments`
/// holds the text stripped from each line, and `in_test` marks lines
/// inside a `#[cfg(test)]`-gated module.
struct Shadow {
    code: Vec<String>,
    comments: Vec<String>,
    in_test: Vec<bool>,
}

impl Shadow {
    fn of(text: &str) -> Shadow {
        let (code, comments) = strip(text);
        let in_test = mark_test_spans(&code);
        Shadow {
            code,
            comments,
            in_test,
        }
    }
}

/// Split source into per-line code (comments and string/char literal
/// contents replaced with spaces) and per-line stripped comment text.
/// Handles nested block comments, raw strings, and the char-literal /
/// lifetime ambiguity.
fn strip(text: &str) -> (Vec<String>, Vec<String>) {
    let b: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(128);
    let mut comments = String::with_capacity(64);
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut i = 0;
    let flush = |code: &mut String,
                 comments: &mut String,
                 code_lines: &mut Vec<String>,
                 comment_lines: &mut Vec<String>| {
        code_lines.push(std::mem::take(code));
        comment_lines.push(std::mem::take(comments));
    };
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                flush(
                    &mut code,
                    &mut comments,
                    &mut code_lines,
                    &mut comment_lines,
                );
                i += 1;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    comments.push(b[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                comments.push_str("/*");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        comments.push_str("/*");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        comments.push_str("*/");
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            flush(
                                &mut code,
                                &mut comments,
                                &mut code_lines,
                                &mut comment_lines,
                            );
                        } else {
                            comments.push(b[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                code.push('"');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1; // skip the escaped char too
                    }
                    if i < b.len() {
                        if b[i] == '\n' {
                            flush(
                                &mut code,
                                &mut comments,
                                &mut code_lines,
                                &mut comment_lines,
                            );
                        }
                        i += 1;
                    }
                }
                code.push('"');
                i += 1;
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string: r"..." or r#"..."# (any hash depth).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    code.push_str("r\"");
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if b[j] == '\n' {
                            flush(
                                &mut code,
                                &mut comments,
                                &mut code_lines,
                                &mut comment_lines,
                            );
                        }
                        j += 1;
                    }
                    code.push('"');
                    i = j;
                } else {
                    code.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal is 'x' or an
                // escape; a lifetime has no closing quote nearby.
                if i + 2 < b.len() && b[i + 1] == '\\' {
                    code.push_str("' '");
                    i += 2; // opening quote + backslash
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    code.push_str("' '");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    flush(
        &mut code,
        &mut comments,
        &mut code_lines,
        &mut comment_lines,
    );
    (code_lines, comment_lines)
}

/// Mark every line inside a module gated on `#[cfg(test)]` (or
/// `#[cfg(all(test, ...))]`), by brace tracking from the `mod` that
/// follows the attribute.
fn mark_test_spans(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let t = code[i].trim();
        let gates_test =
            t.starts_with("#[cfg(") && (t.contains("cfg(test") || t.contains("(test,"));
        if gates_test {
            // Find the item the attribute gates (skipping further
            // attributes); only blank whole spans for modules — a
            // cfg(test) fn or use is already a single item.
            let mut j = i + 1;
            while j < code.len() && code[j].trim().starts_with("#[") {
                j += 1;
            }
            if j < code.len() && code[j].trim_start().starts_with("mod ") {
                let mut depth = 0i32;
                let mut started = false;
                let mut k = j;
                while k < code.len() {
                    for c in code[k].chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                started = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    marked[k] = true;
                    if started && depth == 0 {
                        break;
                    }
                    k += 1;
                }
                marked[i] = true;
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    marked
}

// ---------------------------------------------------------------------------
// Rule 1: undocumented unsafe.

/// Whether `code[pos..]` begins an `unsafe` keyword occurrence that
/// needs a safety comment (declarations and blocks — not the `unsafe
/// fn(...)` *pointer type*, whose `fn` is immediately followed by a
/// parenthesis instead of a name).
fn needs_safety_comment(code: &str, pos: usize) -> bool {
    let after = code[pos + "unsafe".len()..].trim_start();
    if let Some(rest) = after.strip_prefix("fn") {
        return !rest.trim_start().starts_with('(');
    }
    true
}

fn is_word_at(code: &str, pos: usize, word: &str) -> bool {
    let before_ok = pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let end = pos + word.len();
    let after_ok = end >= code.len()
        || !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

fn check_unsafe(file: &str, sh: &Shadow, out: &mut Vec<Violation>) {
    for (ln, code) in sh.code.iter().enumerate() {
        let mut search = 0;
        while let Some(off) = code[search..].find("unsafe") {
            let pos = search + off;
            search = pos + "unsafe".len();
            if !is_word_at(code, pos, "unsafe") || !needs_safety_comment(code, pos) {
                continue;
            }
            if !has_safety_annotation(sh, ln) {
                out.push(Violation {
                    file: file.into(),
                    line: ln + 1,
                    rule: "undocumented-unsafe",
                    msg: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc) \
                          on the preceding lines"
                        .into(),
                });
            }
            // One diagnostic per line is enough.
            break;
        }
    }
}

/// A safety annotation (the `SAFETY` comment tag with a colon, or a
/// `# Safety` rustdoc section) counts if it is on the same line or in
/// the contiguous run of comment/attribute/blank lines directly above
/// (so a fn's doc block and its attributes are seen).
fn has_safety_annotation(sh: &Shadow, ln: usize) -> bool {
    let hit = |s: &str| s.contains("SAFETY:") || s.contains("# Safety");
    if hit(&sh.comments[ln]) {
        return true;
    }
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let code = sh.code[i].trim();
        let is_annotation_line =
            code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        if hit(&sh.comments[i]) {
            return true;
        }
        if !is_annotation_line {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules 2 and 3: forbidden tokens in hot-path / kernel files.

fn check_tokens(
    file: &str,
    sh: &Shadow,
    tokens: &[&str],
    rule: &'static str,
    out: &mut Vec<Violation>,
) {
    for (ln, code) in sh.code.iter().enumerate() {
        if sh.in_test[ln] {
            continue;
        }
        for tok in tokens {
            if code.contains(tok) {
                out.push(Violation {
                    file: file.into(),
                    line: ln + 1,
                    rule,
                    msg: format!("`{tok}` is not allowed here (outside `#[cfg(test)]`)"),
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: lock-order annotations in the store.

/// Every lock acquisition (`.lock()` / `.read()` / `.write()`)
/// outside tests must carry a `lock-order:` comment on the same line
/// or within the six preceding lines — in practice, acquisitions live
/// in the annotated witness helpers of `CatalogStore`.
fn check_store_lock_order(file: &str, sh: &Shadow, out: &mut Vec<Violation>) {
    const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];
    for (ln, code) in sh.code.iter().enumerate() {
        if sh.in_test[ln] {
            continue;
        }
        if !ACQUIRE.iter().any(|t| code.contains(t)) {
            continue;
        }
        let lo = ln.saturating_sub(6);
        let annotated = (lo..=ln).any(|i| sh.comments[i].contains("lock-order:"));
        if !annotated {
            out.push(Violation {
                file: file.into(),
                line: ln + 1,
                rule: "store-lock-order",
                msg: "lock acquisition without a `// lock-order:` annotation in reach".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: forbid(unsafe_code) pins.

fn check_forbid_unsafe(root: &Path, krate: &str, out: &mut Vec<Violation>) {
    let lib = root.join(krate).join("src/lib.rs");
    let rel = format!("{krate}/src/lib.rs");
    match fs::read_to_string(&lib) {
        Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
        Ok(_) => out.push(Violation {
            file: rel,
            line: 1,
            rule: "missing-forbid-unsafe",
            msg: "crate is audited unsafe-free; add `#![forbid(unsafe_code)]`".into(),
        }),
        Err(_) => out.push(Violation {
            file: rel,
            line: 0,
            rule: "missing-forbid-unsafe",
            msg: "expected crate root not found".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow(src: &str) -> Shadow {
        Shadow::of(src)
    }

    #[test]
    fn strip_blanks_comments_and_strings() {
        let sh = shadow("let x = \"unsafe\"; // unsafe in comment\nunsafe { f() }\n");
        assert!(!sh.code[0].contains("unsafe"));
        assert!(sh.comments[0].contains("unsafe in comment"));
        assert!(sh.code[1].contains("unsafe"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let sh = shadow("fn f<'a>(c: char) -> bool { c == 'x' || c == '\\n' }\n");
        assert!(sh.code[0].contains("<'a>"), "lifetime kept: {}", sh.code[0]);
        assert!(
            !sh.code[0].contains('x'),
            "char literal blanked: {}",
            sh.code[0]
        );
    }

    #[test]
    fn unsafe_fn_pointer_type_is_exempt() {
        let sh = shadow("struct S { f: unsafe fn(*const ()) }\n");
        let mut out = Vec::new();
        check_unsafe("t.rs", &sh, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_safety_accepted() {
        let mut out = Vec::new();
        check_unsafe("t.rs", &shadow("unsafe { f() }\n"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "undocumented-unsafe");

        let mut out = Vec::new();
        check_unsafe(
            "t.rs",
            &shadow("// SAFETY: f has no preconditions here.\nunsafe { f() }\n"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");

        // Doc `# Safety` above attributes counts for an unsafe fn.
        let mut out = Vec::new();
        check_unsafe(
            "t.rs",
            &shadow("/// # Safety\n/// Caller checked cpuid.\n#[inline]\nunsafe fn g() {}\n"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cfg_test_spans_are_masked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let sh = shadow(src);
        assert!(!sh.in_test[0]);
        assert!(sh.in_test[2] && sh.in_test[3] && sh.in_test[4]);
        let mut out = Vec::new();
        check_tokens("t.rs", &sh, PANIC_TOKENS, "hot-path-panic", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hot_path_panic_flagged_outside_tests() {
        let mut out = Vec::new();
        check_tokens(
            "t.rs",
            &shadow("fn hot() { x.unwrap(); }\n"),
            PANIC_TOKENS,
            "hot-path-panic",
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn lock_order_annotation_reach() {
        let mut out = Vec::new();
        check_store_lock_order(
            "t.rs",
            &shadow("// lock-order: id-stripe (1).\nlet g = m.lock();\n"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        let mut out = Vec::new();
        check_store_lock_order("t.rs", &shadow("let g = m.lock();\n"), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn workspace_is_clean() {
        // The real gate, run as a unit test too: the workspace must
        // lint clean from inside `cargo test`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = run(&root);
        assert!(
            violations.is_empty(),
            "celeste_lint found {} violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
