//! The model-checking runtime: a deterministic exhaustive scheduler
//! over real OS threads plus an approximate C11 memory model.
//!
//! One model thread runs at a time; every visible operation (atomic
//! access, fence, mutex/condvar op, spawn, termination) is a *yield
//! point* where the scheduler picks the next thread to run. The
//! sequence of picks — plus value choices such as which store a
//! relaxed load reads from and which waiter a `notify_one` wakes — is
//! recorded on a trail; depth-first backtracking over the trail
//! enumerates every interleaving up to a preemption bound.
//!
//! The memory model follows loom's approximation of C11: per-location
//! store histories (modification order = append order), per-thread
//! vector clocks with release/acquire clock transfer, per-thread
//! coherence floors, release-fence and acquire-fence clocks, and a
//! single global `sc` clock that every `SeqCst` operation two-way
//! joins with (a sound over-approximation of the total order S for
//! the patterns checked here; see the deque tests for the fence
//! dichotomy it has to capture). Strong RMWs always read the latest
//! store in modification order, which is what makes a CAS an
//! arbitration point.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

use crate::mutate::{Mutation, MutationState, OpKind};
use crate::vv::{VersionVec, MAX_THREADS};

/// Payload used to unwind model threads when an execution aborts
/// (failure found or state-space exhaustion). Caught by the worker;
/// never observed by user code.
pub(crate) struct AbortToken;

fn acq(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn rel(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Trail: the DFS backbone.

#[derive(Clone, Debug)]
struct ChoicePoint {
    options: Vec<usize>,
    chosen: usize,
}

/// The recorded sequence of scheduling/value choices for one
/// execution. Replayed from the front; `backtrack` advances the last
/// choice point that still has unexplored siblings.
#[derive(Clone, Default, Debug)]
pub(crate) struct Trail {
    choices: Vec<ChoicePoint>,
    pos: usize,
}

impl Trail {
    /// Pick among `options` (non-empty): replay if this point was
    /// already recorded, otherwise record it with its first option.
    fn choose(&mut self, options: Vec<usize>) -> usize {
        if self.pos < self.choices.len() {
            let c = &self.choices[self.pos];
            assert_eq!(
                c.options, options,
                "model replay diverged: execution is not deterministic"
            );
            self.pos += 1;
            c.options[c.chosen]
        } else {
            let v = options[0];
            self.choices.push(ChoicePoint { options, chosen: 0 });
            self.pos += 1;
            v
        }
    }

    /// Advance to the next unexplored execution. Returns false when
    /// the whole tree has been visited.
    pub(crate) fn backtrack(&mut self) -> bool {
        while let Some(c) = self.choices.last_mut() {
            if c.chosen + 1 < c.options.len() {
                c.chosen += 1;
                self.pos = 0;
                return true;
            }
            self.choices.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Execution state.

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    Blocked,
    Terminated,
}

struct ThreadSt {
    state: TState,
    clock: VersionVec,
    /// Release-fence clock: carried by subsequent relaxed stores.
    fence_rel: VersionVec,
    /// Clocks of every store read so far; merged into `clock` by an
    /// acquire fence.
    acq_stash: VersionVec,
    /// Per-location coherence floor: minimal index in the store
    /// history this thread may still read.
    last_seen: Vec<usize>,
    /// Final clock at termination, joined by `join`ers.
    end_clock: VersionVec,
    joiners: Vec<usize>,
}

#[derive(Clone)]
struct StoreEvent {
    val: usize,
    by: usize,
    /// The storer's own clock component at the store: `clock.covers
    /// (by, seq)` means the observer happens-after this store.
    seq: u32,
    /// Clock released with the store (empty-ish for relaxed stores
    /// with no preceding release fence).
    rel: VersionVec,
}

struct AtomicSt {
    stores: Vec<StoreEvent>,
    /// Index of the latest SeqCst store (in S, which the serialized
    /// execution realizes directly). SC loads — and loads sequenced
    /// after an SC fence — may not read anything older.
    last_sc: Option<usize>,
}

struct MutexSt {
    owner: Option<usize>,
    /// Clock of the last unlock; joined on acquisition.
    rel: VersionVec,
    waiters: Vec<usize>,
}

struct CondSt {
    waiters: Vec<usize>,
}

const TRACE_CAP: usize = 64;
/// `active` value meaning "no thread running" (end of execution).
const NO_ACTIVE: usize = usize::MAX;

pub(crate) struct Exec {
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicSt>,
    mutexes: Vec<MutexSt>,
    conds: Vec<CondSt>,
    /// The SC-*fence* clock: two-way joined at every SeqCst fence
    /// (and only there). Joining it on every SC atomic op — loom's
    /// shortcut — over-synchronizes: an SC CAS on one location would
    /// publish unrelated plain stores, hiding exactly the stale-read
    /// bugs the mutation harness seeds (see the steal-fence test).
    /// C++17 [atomics.order] couples SC *atomics* to other threads
    /// only per-location, which `AtomicSt::last_sc` implements.
    sc: VersionVec,
    active: usize,
    preemptions: usize,
    preemption_bound: usize,
    steps: usize,
    max_steps: usize,
    /// OS-side jobs still running (model threads occupying a worker).
    os_live: usize,
    exec_done: bool,
    pub(crate) aborting: bool,
    pub(crate) failure: Option<String>,
    trace: Vec<String>,
    trail: Trail,
    mutations: Vec<MutationState>,
}

impl Exec {
    pub(crate) fn new(
        trail: Trail,
        mutations: Vec<MutationState>,
        preemption_bound: usize,
        max_steps: usize,
    ) -> Exec {
        let mut ex = Exec {
            threads: Vec::new(),
            atomics: Vec::new(),
            mutexes: Vec::new(),
            conds: Vec::new(),
            sc: VersionVec::new(),
            active: 0,
            preemptions: 0,
            preemption_bound,
            steps: 0,
            max_steps,
            os_live: 1,
            exec_done: false,
            aborting: false,
            failure: None,
            trace: Vec::new(),
            trail,
            mutations,
        };
        // Root thread (tid 0).
        ex.threads
            .push(ThreadSt::fresh(VersionVec::new(), Vec::new()));
        ex
    }

    pub(crate) fn into_outcome(self) -> (Trail, Vec<MutationState>, Option<String>, Vec<String>) {
        (self.trail, self.mutations, self.failure, self.trace)
    }

    fn trace_push(&mut self, s: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.remove(0);
        }
        self.trace.push(s);
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.aborting = true;
    }

    // -- mutation hooks ----------------------------------------------------

    fn mutate_ord(
        &mut self,
        tid: usize,
        loc: Option<usize>,
        kind: OpKind,
        ord: Ordering,
    ) -> Ordering {
        for m in &mut self.mutations {
            if let Mutation::Weaken {
                thread,
                loc: ml,
                kind: mk,
                from,
                to,
            } = m.rule
            {
                if mk == kind
                    && from == ord
                    && thread.is_none_or(|t| t == tid)
                    && ml.is_none_or(|l| Some(l) == loc)
                {
                    m.fired = true;
                    return to;
                }
            }
        }
        ord
    }

    fn mutate_suppress_notify_one(&mut self, cond: usize) -> bool {
        for m in &mut self.mutations {
            if let Mutation::SuppressNotifyOne { cond: mc } = m.rule {
                if mc.is_none_or(|c| c == cond) {
                    m.fired = true;
                    return true;
                }
            }
        }
        false
    }

    fn mutate_notify_all_to_one(&mut self, cond: usize) -> bool {
        for m in &mut self.mutations {
            if let Mutation::NotifyAllToOne { cond: mc } = m.rule {
                if mc.is_none_or(|c| c == cond) {
                    m.fired = true;
                    return true;
                }
            }
        }
        false
    }

    // -- memory model ------------------------------------------------------

    fn sc_pre(&mut self, tid: usize) {
        self.threads[tid].clock.join(&self.sc);
    }

    fn sc_post(&mut self, tid: usize) {
        self.sc.join(&self.threads[tid].clock);
    }

    fn floor(&self, tid: usize, loc: usize) -> usize {
        self.threads[tid].last_seen.get(loc).copied().unwrap_or(0)
    }

    fn set_floor(&mut self, tid: usize, loc: usize, idx: usize) {
        let ls = &mut self.threads[tid].last_seen;
        if ls.len() <= loc {
            ls.resize(loc + 1, 0);
        }
        ls[loc] = ls[loc].max(idx);
    }

    fn do_load(&mut self, tid: usize, loc: usize, ord: Ordering) -> usize {
        let ord = self.mutate_ord(tid, Some(loc), OpKind::Load, ord);
        // Readable window: at or after the coherence floor, the
        // latest store this thread happens-after, and — for SC loads
        // — the latest SC store to this location plus anything the SC
        // fence clock covers ([atomics.order] p4-p6).
        let clock = self.threads[tid].clock;
        let mut lo = self.floor(tid, loc);
        if ord == Ordering::SeqCst {
            if let Some(i) = self.atomics[loc].last_sc {
                lo = lo.max(i);
            }
        }
        let sc = self.sc;
        let stores = &self.atomics[loc].stores;
        for (i, s) in stores.iter().enumerate().skip(lo) {
            if clock.covers(s.by, s.seq) || (ord == Ordering::SeqCst && sc.covers(s.by, s.seq)) {
                lo = i;
            }
        }
        let options: Vec<usize> = (lo..stores.len()).collect();
        let idx = if options.len() == 1 {
            options[0]
        } else {
            self.trail.choose(options)
        };
        let ev = self.atomics[loc].stores[idx].clone();
        self.set_floor(tid, loc, idx);
        let th = &mut self.threads[tid];
        th.acq_stash.join(&ev.rel);
        if acq(ord) {
            th.clock.join(&ev.rel);
        }
        self.trace_push(format!(
            "t{tid} load a{loc} ({ord:?}) -> {} [idx {idx}]",
            ev.val
        ));
        ev.val
    }

    fn do_store(&mut self, tid: usize, loc: usize, val: usize, ord: Ordering) {
        let ord = self.mutate_ord(tid, Some(loc), OpKind::Store, ord);
        let th = &mut self.threads[tid];
        let seq = th.clock.inc(tid);
        let relc = if rel(ord) { th.clock } else { th.fence_rel };
        let idx = self.atomics[loc].stores.len();
        self.atomics[loc].stores.push(StoreEvent {
            val,
            by: tid,
            seq,
            rel: relc,
        });
        if ord == Ordering::SeqCst {
            self.atomics[loc].last_sc = Some(idx);
        }
        self.set_floor(tid, loc, idx);
        self.trace_push(format!("t{tid} store a{loc} <- {val} ({ord:?})"));
    }

    /// Strong read-modify-write: reads the *latest* store in
    /// modification order (this is what makes a CAS decide races),
    /// applies `f`, and writes iff `f` returns `Some`. Returns the
    /// value read and whether the write happened.
    fn do_rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        ord_fail: Ordering,
        f: &mut dyn FnMut(usize) -> Option<usize>,
    ) -> (usize, bool) {
        let ord = self.mutate_ord(tid, Some(loc), OpKind::Rmw, ord);
        let last = self.atomics[loc].stores.len() - 1;
        let ev = self.atomics[loc].stores[last].clone();
        self.set_floor(tid, loc, last);
        self.threads[tid].acq_stash.join(&ev.rel);
        let wrote = match f(ev.val) {
            Some(newval) => {
                let th = &mut self.threads[tid];
                if acq(ord) {
                    th.clock.join(&ev.rel);
                }
                let seq = th.clock.inc(tid);
                let mut relc = if rel(ord) { th.clock } else { th.fence_rel };
                // RMWs continue the release sequence of the store
                // they replace: acquiring from this store must also
                // synchronize with the previous releaser.
                relc.join(&ev.rel);
                let idx = self.atomics[loc].stores.len();
                self.atomics[loc].stores.push(StoreEvent {
                    val: newval,
                    by: tid,
                    seq,
                    rel: relc,
                });
                if ord == Ordering::SeqCst {
                    self.atomics[loc].last_sc = Some(idx);
                }
                self.set_floor(tid, loc, idx);
                true
            }
            None => {
                if acq(ord_fail) {
                    self.threads[tid].clock.join(&ev.rel);
                }
                false
            }
        };
        self.trace_push(format!(
            "t{tid} rmw a{loc} read {} wrote={wrote} ({ord:?})",
            ev.val
        ));
        (ev.val, wrote)
    }

    fn do_fence(&mut self, tid: usize, ord: Ordering) {
        let ord = self.mutate_ord(tid, None, OpKind::Fence, ord);
        if acq(ord) {
            let stash = self.threads[tid].acq_stash;
            self.threads[tid].clock.join(&stash);
        }
        if rel(ord) {
            let clock = self.threads[tid].clock;
            self.threads[tid].fence_rel.join(&clock);
        }
        if ord == Ordering::SeqCst {
            // Fence-fence rule ([atomics.order] p6): everything any
            // earlier SC-fencing thread had written is a coherence
            // floor for loads sequenced after this fence — realized
            // by the two-way clock join (covered stores raise `lo` in
            // do_load).
            self.sc_pre(tid);
            self.sc_post(tid);
            // SC-write -> SC-fence rule (p5): loads after this fence
            // may not read past writes older than each location's
            // latest SC store.
            for loc in 0..self.atomics.len() {
                if let Some(i) = self.atomics[loc].last_sc {
                    self.set_floor(tid, loc, i);
                }
            }
        }
        self.trace_push(format!("t{tid} fence ({ord:?})"));
    }

    // -- scheduling --------------------------------------------------------

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].state == TState::Runnable)
            .collect()
    }

    /// Pick the next active thread after `tid` finished an op. The
    /// heart of the search: switching away from a still-runnable
    /// thread costs one unit of the preemption budget.
    fn schedule(&mut self, tid: usize) {
        let runnable = self.runnable();
        if runnable.is_empty() {
            self.active = NO_ACTIVE;
            if self.threads.iter().any(|t| t.state == TState::Blocked) {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state == TState::Blocked)
                    .map(|(i, _)| format!("t{i}"))
                    .collect();
                self.fail(format!(
                    "deadlock: {} blocked with no runnable thread",
                    stuck.join(", ")
                ));
            }
            return;
        }
        let cur_runnable = self.threads[tid].state == TState::Runnable;
        let options = if cur_runnable && self.preemptions >= self.preemption_bound {
            vec![tid]
        } else {
            runnable
        };
        let next = if options.len() == 1 {
            options[0]
        } else {
            self.trail.choose(options)
        };
        if cur_runnable && next != tid {
            self.preemptions += 1;
        }
        self.active = next;
    }
}

impl ThreadSt {
    fn fresh(clock: VersionVec, last_seen: Vec<usize>) -> ThreadSt {
        ThreadSt {
            state: TState::Runnable,
            clock,
            fence_rel: VersionVec::new(),
            acq_stash: VersionVec::new(),
            last_seen,
            end_clock: VersionVec::new(),
            joiners: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared scheduler handle + thread-local context.

pub(crate) struct SchedShared {
    pub(crate) m: OsMutex<Exec>,
    pub(crate) cv: OsCondvar,
    pub(crate) pool: Pool,
}

impl SchedShared {
    /// Poison-tolerant lock: model threads unwind (AbortToken) while
    /// holding this mutex by design, and the state stays consistent.
    pub(crate) fn lock(&self) -> OsGuard<'_, Exec> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<SchedShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Set while unwinding an aborted execution: model ops become
    /// no-ops instead of re-panicking inside destructors.
    static IN_ABORT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Set while running model code: silences the panic hook.
    pub(crate) static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn ctx() -> (Arc<SchedShared>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("model primitive used outside Model::check execution")
    })
}

pub(crate) fn in_abort() -> bool {
    IN_ABORT.with(|a| a.get())
}

fn abort_unwind() -> ! {
    IN_ABORT.with(|a| a.set(true));
    panic::panic_any(AbortToken)
}

// ---------------------------------------------------------------------------
// The yield protocol.

pub(crate) enum Attempt<R> {
    Done(R),
    Blocked,
}

/// Run one visible operation: execute `f` under the scheduler lock
/// (re-attempting while it reports Blocked), then let the scheduler
/// pick the next thread and park until this thread is granted again.
pub(crate) fn yield_op<R>(mut f: impl FnMut(&mut Exec, usize) -> Attempt<R>) -> R {
    if in_abort() {
        abort_unwind();
    }
    let (shared, tid) = ctx();
    let mut guard = shared.lock();
    loop {
        if guard.aborting {
            drop(guard);
            abort_unwind();
        }
        debug_assert_eq!(guard.active, tid, "op from non-active thread");
        guard.steps += 1;
        if guard.steps > guard.max_steps {
            let max = guard.max_steps;
            guard.fail(format!("exceeded {max} steps: livelock or unbounded loop"));
            shared.cv.notify_all();
            drop(guard);
            abort_unwind();
        }
        let attempt = f(&mut guard, tid);
        let done = matches!(attempt, Attempt::Done(_));
        if !done {
            guard.threads[tid].state = TState::Blocked;
        }
        guard.schedule(tid);
        shared.cv.notify_all();
        while guard.active != tid {
            if guard.aborting {
                shared.cv.notify_all();
                drop(guard);
                abort_unwind();
            }
            if guard.active == NO_ACTIVE {
                // Execution over (we must be terminated or aborting —
                // a blocked thread here means deadlock already
                // failed).
                drop(guard);
                abort_unwind();
            }
            guard = shared.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        if let Attempt::Done(r) = attempt {
            return r;
        }
        // Re-attempt the blocked op now that we were woken + granted.
    }
}

// ---------------------------------------------------------------------------
// Registration ops (no scheduling: creation is invisible to peers).

pub(crate) fn new_atomic(init: usize) -> usize {
    let (shared, tid) = ctx();
    let mut ex = shared.lock();
    let th = &mut ex.threads[tid];
    let seq = th.clock.inc(tid);
    let rel = th.clock;
    let id = ex.atomics.len();
    ex.atomics.push(AtomicSt {
        stores: vec![StoreEvent {
            val: init,
            by: tid,
            seq,
            rel,
        }],
        last_sc: None,
    });
    let idx_floor = 0;
    ex.set_floor(tid, id, idx_floor);
    id
}

pub(crate) fn new_mutex() -> usize {
    let (shared, _) = ctx();
    let mut ex = shared.lock();
    let id = ex.mutexes.len();
    ex.mutexes.push(MutexSt {
        owner: None,
        rel: VersionVec::new(),
        waiters: Vec::new(),
    });
    id
}

pub(crate) fn new_cond() -> usize {
    let (shared, _) = ctx();
    let mut ex = shared.lock();
    let id = ex.conds.len();
    ex.conds.push(CondSt {
        waiters: Vec::new(),
    });
    id
}

// ---------------------------------------------------------------------------
// Atomic / fence ops.

pub(crate) fn atomic_load(loc: usize, ord: Ordering) -> usize {
    yield_op(|ex, tid| Attempt::Done(ex.do_load(tid, loc, ord)))
}

pub(crate) fn atomic_store(loc: usize, val: usize, ord: Ordering) {
    yield_op(|ex, tid| {
        ex.do_store(tid, loc, val, ord);
        Attempt::Done(())
    })
}

pub(crate) fn atomic_rmw(
    loc: usize,
    ord: Ordering,
    ord_fail: Ordering,
    mut f: impl FnMut(usize) -> Option<usize>,
) -> (usize, bool) {
    yield_op(|ex, tid| Attempt::Done(ex.do_rmw(tid, loc, ord, ord_fail, &mut f)))
}

pub(crate) fn fence(ord: Ordering) {
    yield_op(|ex, tid| {
        ex.do_fence(tid, ord);
        Attempt::Done(())
    })
}

// ---------------------------------------------------------------------------
// Mutex / condvar ops.

pub(crate) fn mutex_lock(id: usize) {
    if in_abort() {
        // Exclusion during abort unwinding comes from the real lock
        // embedded in the model Mutex (see sync.rs).
        return;
    }
    yield_op(|ex, tid| {
        if let Some(owner) = ex.mutexes[id].owner {
            debug_assert_ne!(owner, tid, "model mutex is not reentrant");
            if !ex.mutexes[id].waiters.contains(&tid) {
                ex.mutexes[id].waiters.push(tid);
            }
            Attempt::Blocked
        } else {
            ex.mutexes[id].owner = Some(tid);
            ex.mutexes[id].waiters.retain(|&w| w != tid);
            let relc = ex.mutexes[id].rel;
            ex.threads[tid].clock.join(&relc);
            ex.trace_push(format!("t{tid} lock m{id}"));
            Attempt::Done(())
        }
    })
}

pub(crate) fn mutex_unlock(id: usize) {
    if in_abort() {
        return;
    }
    yield_op(|ex, tid| {
        debug_assert_eq!(ex.mutexes[id].owner, Some(tid));
        ex.mutexes[id].owner = None;
        let clock = ex.threads[tid].clock;
        ex.mutexes[id].rel.join(&clock);
        // Wake every waiter; they race to re-acquire (losers block
        // again), which models OS wakeup races faithfully.
        let waiters = std::mem::take(&mut ex.mutexes[id].waiters);
        for w in waiters {
            if ex.threads[w].state == TState::Blocked {
                ex.threads[w].state = TState::Runnable;
            }
        }
        ex.trace_push(format!("t{tid} unlock m{id}"));
        Attempt::Done(())
    })
}

/// Condvar wait: atomically release `mutex` and sleep until notified,
/// then re-acquire. The two phases live in one re-attempted op.
pub(crate) fn cond_wait(cond: usize, mutex: usize) {
    if in_abort() {
        return;
    }
    let mut phase = 0usize;
    yield_op(|ex, tid| {
        match phase {
            0 => {
                // Release the mutex and enqueue on the condvar.
                debug_assert_eq!(ex.mutexes[mutex].owner, Some(tid));
                ex.mutexes[mutex].owner = None;
                let clock = ex.threads[tid].clock;
                ex.mutexes[mutex].rel.join(&clock);
                let waiters = std::mem::take(&mut ex.mutexes[mutex].waiters);
                for w in waiters {
                    if ex.threads[w].state == TState::Blocked {
                        ex.threads[w].state = TState::Runnable;
                    }
                }
                ex.conds[cond].waiters.push(tid);
                ex.trace_push(format!("t{tid} wait c{cond} (released m{mutex})"));
                phase = 1;
                Attempt::Blocked
            }
            _ => {
                // Woken by notify; re-acquire the mutex.
                if let Some(owner) = ex.mutexes[mutex].owner {
                    debug_assert_ne!(owner, tid);
                    if !ex.mutexes[mutex].waiters.contains(&tid) {
                        ex.mutexes[mutex].waiters.push(tid);
                    }
                    Attempt::Blocked
                } else {
                    ex.mutexes[mutex].owner = Some(tid);
                    ex.mutexes[mutex].waiters.retain(|&w| w != tid);
                    let relc = ex.mutexes[mutex].rel;
                    ex.threads[tid].clock.join(&relc);
                    ex.trace_push(format!("t{tid} woke c{cond}, relocked m{mutex}"));
                    Attempt::Done(())
                }
            }
        }
    })
}

pub(crate) fn cond_notify_one(cond: usize) {
    if in_abort() {
        return;
    }
    yield_op(|ex, tid| {
        if ex.mutate_suppress_notify_one(cond) {
            ex.trace_push(format!(
                "t{tid} notify_one c{cond} [SUPPRESSED by mutation]"
            ));
            return Attempt::Done(());
        }
        wake_one(ex, tid, cond);
        Attempt::Done(())
    })
}

pub(crate) fn cond_notify_all(cond: usize) {
    if in_abort() {
        return;
    }
    yield_op(|ex, tid| {
        if ex.mutate_notify_all_to_one(cond) {
            ex.trace_push(format!(
                "t{tid} notify_all c{cond} [DEGRADED to notify_one]"
            ));
            wake_one(ex, tid, cond);
            return Attempt::Done(());
        }
        let waiters = std::mem::take(&mut ex.conds[cond].waiters);
        for w in &waiters {
            ex.threads[*w].state = TState::Runnable;
        }
        ex.trace_push(format!(
            "t{tid} notify_all c{cond} (woke {})",
            waiters.len()
        ));
        Attempt::Done(())
    })
}

/// Wake one condvar waiter; *which* waiter is a value choice.
fn wake_one(ex: &mut Exec, tid: usize, cond: usize) {
    if ex.conds[cond].waiters.is_empty() {
        ex.trace_push(format!("t{tid} notify_one c{cond} (no waiters)"));
        return;
    }
    let options = ex.conds[cond].waiters.clone();
    let target = if options.len() == 1 {
        options[0]
    } else {
        ex.trail.choose(options)
    };
    ex.conds[cond].waiters.retain(|&w| w != target);
    ex.threads[target].state = TState::Runnable;
    ex.trace_push(format!("t{tid} notify_one c{cond} -> t{target}"));
}

// ---------------------------------------------------------------------------
// Threads: spawn / join / the worker-side entry.

pub(crate) fn spawn_thread(f: Box<dyn FnOnce() + Send>) -> usize {
    if in_abort() {
        abort_unwind();
    }
    let (shared, tid) = ctx();
    let child = {
        let mut ex = shared.lock();
        if ex.aborting {
            drop(ex);
            abort_unwind();
        }
        assert!(
            ex.threads.len() < MAX_THREADS,
            "model supports at most {MAX_THREADS} threads"
        );
        ex.steps += 1;
        // Thread creation synchronizes-with the child's start: the
        // child begins with the parent's clock and coherence floors.
        let clock = ex.threads[tid].clock;
        let last_seen = ex.threads[tid].last_seen.clone();
        ex.threads.push(ThreadSt::fresh(clock, last_seen));
        let child = ex.threads.len() - 1;
        ex.os_live += 1;
        ex.trace_push(format!("t{tid} spawn t{child}"));
        child
    };
    // Submit the OS-side job *before* yielding so the child can run
    // as soon as the scheduler picks it.
    let shared2 = Arc::clone(&shared);
    shared
        .pool
        .submit(Box::new(move || worker_entry(shared2, child, f)));
    yield_op(|ex, tid2| {
        debug_assert_eq!(tid2, tid);
        ex.trace_push(format!("t{tid2} post-spawn yield"));
        Attempt::Done(())
    });
    child
}

pub(crate) fn join_thread(target: usize) {
    yield_op(|ex, tid| {
        if ex.threads[target].state == TState::Terminated {
            let end = ex.threads[target].end_clock;
            ex.threads[tid].clock.join(&end);
            ex.trace_push(format!("t{tid} joined t{target}"));
            Attempt::Done(())
        } else {
            if !ex.threads[target].joiners.contains(&tid) {
                ex.threads[target].joiners.push(tid);
            }
            Attempt::Blocked
        }
    })
}

/// Runs on a pool worker: installs the context, parks until first
/// granted, runs the model thread body, then retires the thread.
pub(crate) fn worker_entry(shared: Arc<SchedShared>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), tid)));
    IN_ABORT.with(|a| a.set(false));
    IN_MODEL.with(|m| m.set(true));

    // Park until the scheduler grants this thread for the first time.
    let mut aborted_before_start = false;
    {
        let mut guard = shared.lock();
        while guard.active != tid {
            if guard.aborting || guard.active == NO_ACTIVE {
                aborted_before_start = true;
                break;
            }
            guard = shared.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    let outcome = if aborted_before_start {
        Err(None)
    } else {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => Ok(()),
            Err(p) if p.is::<AbortToken>() => Err(None),
            // `&*p`: pass the payload itself, not the Box-as-Any.
            Err(p) => Err(Some(panic_message(&*p))),
        }
    };

    let mut ex = shared.lock();
    let th = &mut ex.threads[tid];
    th.state = TState::Terminated;
    th.end_clock = th.clock;
    match outcome {
        Ok(()) => {
            let joiners = std::mem::take(&mut ex.threads[tid].joiners);
            for j in joiners {
                if ex.threads[j].state == TState::Blocked {
                    ex.threads[j].state = TState::Runnable;
                }
            }
            ex.trace_push(format!("t{tid} terminated"));
            if ex.active == tid {
                ex.schedule(tid);
            }
        }
        Err(Some(msg)) => {
            ex.trace_push(format!("t{tid} panicked: {msg}"));
            ex.fail(msg);
        }
        Err(None) => {
            // Aborted: the failure (if any) is already recorded.
        }
    }
    ex.os_live -= 1;
    if ex.os_live == 0 {
        ex.exec_done = true;
    }
    drop(ex);
    shared.cv.notify_all();

    IN_MODEL.with(|m| m.set(false));
    IN_ABORT.with(|a| a.set(false));
    CTX.with(|c| *c.borrow_mut() = None);
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Worker pool: OS threads are reused across the (many) executions of
// a DFS run instead of being spawned per model thread.

type Job = Box<dyn FnOnce() + Send>;

struct PoolInner {
    q: OsMutex<(Vec<Job>, bool)>,
    cv: OsCondvar,
}

pub(crate) struct Pool {
    inner: Arc<PoolInner>,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
    spawned: std::sync::atomic::AtomicUsize,
}

impl Pool {
    pub(crate) fn new() -> Pool {
        Pool {
            inner: Arc::new(PoolInner {
                q: OsMutex::new((Vec::new(), false)),
                cv: OsCondvar::new(),
            }),
            handles: OsMutex::new(Vec::new()),
            spawned: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    pub(crate) fn submit(&self, job: Job) {
        {
            let mut q = self.inner.q.lock().unwrap_or_else(|e| e.into_inner());
            q.0.push(job);
        }
        self.inner.cv.notify_one();
        // Every live model thread occupies a worker while parked, so
        // keep one worker per possible model thread. The counter only
        // gates the first MAX_THREADS submits; later ones reuse.
        if self.spawned.fetch_add(1, Ordering::Relaxed) < MAX_THREADS {
            let inner = Arc::clone(&self.inner);
            let h = std::thread::Builder::new()
                .name("celeste-check-worker".into())
                .spawn(move || worker_loop(inner))
                .expect("spawn model worker");
            self.handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(h);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.q.lock().unwrap_or_else(|e| e.into_inner());
            q.1 = true;
        }
        self.inner.cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let job = {
            let mut q = inner.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.0.pop() {
                    break j;
                }
                if q.1 {
                    return;
                }
                q = inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

// ---------------------------------------------------------------------------
// Controller-side helpers (used by model.rs).

/// Reset the execution state for a (re)run and release the root
/// thread, then submit its job and wait for the execution to finish.
pub(crate) fn run_one(
    shared: &Arc<SchedShared>,
    body: Arc<dyn Fn() + Send + Sync>,
    trail: Trail,
    mutations: Vec<MutationState>,
    preemption_bound: usize,
    max_steps: usize,
) -> (Trail, Vec<MutationState>, Option<String>, Vec<String>) {
    {
        let mut ex = shared.lock();
        *ex = Exec::new(trail, mutations, preemption_bound, max_steps);
    }
    let shared2 = Arc::clone(shared);
    shared.pool.submit(Box::new(move || {
        worker_entry(shared2, 0, Box::new(move || body()))
    }));
    let mut ex = shared.lock();
    while !ex.exec_done {
        ex = shared.cv.wait(ex).unwrap_or_else(|e| e.into_inner());
    }
    let done = std::mem::replace(&mut *ex, Exec::new(Trail::default(), Vec::new(), 0, 0));
    done.into_outcome()
}
