//! Model-checker test suite: engine smoke tests, the ported deque
//! and channel models, the store lock-protocol model, and the
//! mutation harness that proves the checker catches seeded bugs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::chan_port::channel;
use crate::deque::{Deque, Steal};
use crate::job::JobRef;
use crate::model::{Builder, Report};
use crate::mutate::{Mutation, OpKind};
use crate::sync::{AtomicUsize, Mutex};
use crate::thread;

// ---------------------------------------------------------------------------
// Engine smoke tests.

#[test]
fn engine_finds_lost_update() {
    // Two unsynchronized increments: load+store (not RMW) so one can
    // stomp the other. The checker must find the interleaving where
    // the final value is 1.
    let report = Builder::new().preemption_bound(2).check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        h.join().ok();
        let total = c.load(Ordering::SeqCst);
        assert!(total == 2, "lost update: total {total}");
    });
    assert!(!report.ok, "lost update must be discoverable");
    assert!(
        report
            .failure
            .as_deref()
            .is_some_and(|m| m.contains("lost update")),
        "unexpected failure: {:?}\ntrace:\n  {}",
        report.failure,
        report.trace.join("\n  ")
    );
}

#[test]
fn engine_passes_rmw_counter() {
    // The same counter with fetch_add is race-free; every
    // interleaving must pass.
    let report = Builder::new().preemption_bound(2).check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let h = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        h.join().ok();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    report.assert_ok();
}

#[test]
fn engine_finds_relaxed_publication_race() {
    // Message-passing with a relaxed flag store: the reader may see
    // the flag without the payload. The checker must catch it; the
    // Release/Acquire version below must pass.
    let mp = |flag_ord: Ordering, read_ord: Ordering| {
        move || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, flag_ord);
            });
            if flag.load(read_ord) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "saw flag without payload");
            }
            h.join().ok();
        }
    };
    let racy = Builder::new()
        .preemption_bound(2)
        .check(mp(Ordering::Relaxed, Ordering::Acquire));
    assert!(!racy.ok, "relaxed publication must be caught");
    let sound = Builder::new()
        .preemption_bound(2)
        .check(mp(Ordering::Release, Ordering::Acquire));
    sound.assert_ok();
}

// ---------------------------------------------------------------------------
// Deque model: the production Chase-Lev source under the model.

/// One item pushed *concurrently* with a thief (the spawn edge must
/// not order the push before the steal, or the push-publication
/// orderings would be vacuously covered). Exactly one valid copy of
/// the item must surface.
fn deque_push_vs_steal() {
    let d = Arc::new(Deque::new());
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || {
        let mut got = Vec::new();
        for _ in 0..2 {
            match d2.steal() {
                Steal::Success(j) => {
                    got.push(j);
                    break;
                }
                Steal::Empty | Steal::Retry => {}
            }
        }
        got
    });
    d.push(JobRef::sentinel(0)).unwrap();
    let mut got = thief.join().expect("thief result");
    while let Some(j) = d.pop() {
        got.push(j);
    }
    assert_eq!(
        got.len(),
        1,
        "item lost or duplicated ({} copies)",
        got.len()
    );
    assert_eq!(
        got[0],
        JobRef::sentinel(0),
        "stale slot words: {:?}",
        got[0]
    );
    assert!(d.is_empty());
}

/// Two items, owner pops once while a thief steals up to twice, then
/// the owner drains. Conservation: every pushed item surfaces exactly
/// once — this is the closure that exposes the pop/steal SeqCst-fence
/// dichotomy (double-take of the last slot when either fence is
/// weakened) and the size-1 pop-vs-steal CAS arbitration.
fn deque_two_item_workout() {
    let d = Arc::new(Deque::new());
    d.push(JobRef::sentinel(0)).unwrap();
    d.push(JobRef::sentinel(1)).unwrap();
    let d2 = Arc::clone(&d);
    let thief = thread::spawn(move || {
        let mut got = Vec::new();
        for _ in 0..3 {
            match d2.steal() {
                Steal::Success(j) => {
                    got.push(j);
                    if got.len() == 2 {
                        break;
                    }
                }
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        got
    });
    let mut got = Vec::new();
    if let Some(j) = d.pop() {
        got.push(j);
    }
    got.append(&mut thief.join().expect("thief result"));
    while let Some(j) = d.pop() {
        got.push(j);
    }
    let mut words: Vec<usize> = got.iter().map(|j| j.data).collect();
    words.sort_unstable();
    assert_eq!(
        words,
        vec![JobRef::sentinel(0).data, JobRef::sentinel(1).data],
        "deque conservation violated"
    );
    assert!(d.is_empty());
}

#[test]
fn deque_push_vs_steal_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(deque_push_vs_steal)
        .assert_ok();
}

#[test]
fn deque_two_item_workout_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(deque_two_item_workout)
        .assert_ok();
}

// ---------------------------------------------------------------------------
// Channel model: the vendored crossbeam shim under the model.

/// Consumer blocks, producer sends one value then leaks the sender
/// (no disconnect broadcast): delivery depends entirely on send's
/// `notify_one`.
fn chan_send_wakes_consumer() {
    let (tx, rx) = channel::unbounded::<u32>();
    let consumer = thread::spawn(move || rx.recv());
    tx.send(7).unwrap();
    // Leak the sender: the disconnect broadcast must not be what
    // rescues a lost wakeup.
    std::mem::forget(tx);
    let got = consumer.join().expect("consumer result");
    assert_eq!(got.ok(), Some(7));
}

/// Two consumers block on an empty queue; dropping the last sender
/// must wake *both* so each observes the disconnect.
fn chan_disconnect_wakes_all() {
    let (tx, rx) = channel::unbounded::<u32>();
    let rx2 = rx.clone();
    let c1 = thread::spawn(move || rx.recv());
    let c2 = thread::spawn(move || rx2.recv());
    drop(tx);
    let r1 = c1.join().expect("consumer 1");
    let r2 = c2.join().expect("consumer 2");
    assert!(
        r1.is_err() && r2.is_err(),
        "both consumers must see disconnect"
    );
}

/// MPMC conservation: two values, two competing consumers, ended by
/// disconnect. Every value is delivered exactly once.
fn chan_two_consumers_drain() {
    let (tx, rx) = channel::unbounded::<u32>();
    let rx2 = rx.clone();
    let c1 = thread::spawn(move || rx.iter().collect::<Vec<_>>());
    let c2 = thread::spawn(move || rx2.iter().collect::<Vec<_>>());
    tx.send(7).unwrap();
    tx.send(8).unwrap();
    drop(tx);
    let mut all = c1.join().expect("consumer 1");
    all.append(&mut c2.join().expect("consumer 2"));
    all.sort_unstable();
    assert_eq!(all, vec![7, 8], "channel lost or duplicated a value");
}

#[test]
fn channel_send_wakes_consumer_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(chan_send_wakes_consumer)
        .assert_ok();
}

#[test]
fn channel_disconnect_wakes_all_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(chan_disconnect_wakes_all)
        .assert_ok();
}

#[test]
fn channel_two_consumers_drain_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(chan_two_consumers_drain)
        .assert_ok();
}

// ---------------------------------------------------------------------------
// Store lock-protocol model: a miniature of CatalogStore's id-stripe
// -> cell-shard discipline (model mutexes standing in for the
// parking_lot locks; see crates/store's lock-order witness).

/// Both threads honor id-stripe (A) before cell-shard (B): every
/// interleaving completes.
fn store_lock_order_honored() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let h = thread::spawn(move || {
        let _ga = a2.lock().unwrap();
        let mut gb = b2.lock().unwrap();
        *gb += 1;
    });
    {
        let _ga = a.lock().unwrap();
        let mut gb = b.lock().unwrap();
        *gb += 1;
    }
    h.join().ok();
}

/// One thread inverts the order (B then A): classic ABBA — the
/// checker must find the deadlock.
fn store_lock_order_inverted() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let h = thread::spawn(move || {
        let _gb = b2.lock().unwrap();
        let mut ga = a2.lock().unwrap();
        *ga += 1;
    });
    {
        let _ga = a.lock().unwrap();
        let mut gb = b.lock().unwrap();
        *gb += 1;
    }
    h.join().ok();
}

/// The store's cell-migration invariant: while an id moves between
/// cells, a reader holding the id-stripe lock must always find it.
/// `gap` models releasing the stripe between remove and re-insert.
fn store_migration(gap: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        // stripe guards the id -> cell mapping; present[cell] is the
        // per-cell membership the reader checks.
        let stripe = Arc::new(Mutex::new(0usize));
        let present = Arc::new([Mutex::new(true), Mutex::new(false)]);
        let (stripe2, present2) = (Arc::clone(&stripe), Arc::clone(&present));
        let writer = thread::spawn(move || {
            if gap {
                // Buggy: the id vanishes between the two criticals.
                {
                    let cell = *stripe2.lock().unwrap();
                    *present2[cell].lock().unwrap() = false;
                }
                {
                    let mut cell = stripe2.lock().unwrap();
                    *present2[1].lock().unwrap() = true;
                    *cell = 1;
                }
            } else {
                // Production order: insert-new, repoint, remove-old,
                // all under the stripe lock.
                let mut cell = stripe2.lock().unwrap();
                let old = *cell;
                *present2[1].lock().unwrap() = true;
                *cell = 1;
                if old != 1 {
                    *present2[old].lock().unwrap() = false;
                }
            }
        });
        {
            // Hold the stripe lock across the cell check, as the
            // store's readers do — releasing it between the mapping
            // read and the cell access would be a (different) bug.
            let cell = stripe.lock().unwrap();
            let here = *present[*cell].lock().unwrap();
            assert!(here, "reader found its id in no cell (migration gap)");
        }
        writer.join().ok();
    }
}

#[test]
fn store_lock_order_model_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(store_lock_order_honored)
        .assert_ok();
}

#[test]
fn store_lock_order_inversion_deadlocks() {
    let report = Builder::new()
        .preemption_bound(3)
        .check(store_lock_order_inverted);
    assert!(!report.ok, "ABBA inversion must deadlock");
    assert!(
        report
            .failure
            .as_deref()
            .is_some_and(|m| m.contains("deadlock")),
        "unexpected failure: {:?}",
        report.failure
    );
}

#[test]
fn store_migration_model_is_sound() {
    Builder::new()
        .preemption_bound(3)
        .check(store_migration(false))
        .assert_ok();
}

#[test]
fn store_migration_gap_is_caught() {
    let report = Builder::new()
        .preemption_bound(3)
        .check(store_migration(true));
    assert!(!report.ok, "migration gap must be observable");
    assert!(
        report
            .failure
            .as_deref()
            .is_some_and(|m| m.contains("migration gap")),
        "unexpected failure: {:?}",
        report.failure
    );
}

// ---------------------------------------------------------------------------
// Mutation harness: every seeded weakening of the production
// orderings must be caught. Location ids follow creation order in
// `Deque::new`: a0 = top, a1 = bottom, a2.. = slot words. Thread ids:
// t0 = owner/root, t1 = the spawned thief.
//
// Deliberately NOT seeded (benign in this fixed-capacity variant, by
// hand analysis):
//  - push/steal `top.load(Acquire)` -> Relaxed: the Acquire only
//    tightens the emptiness estimate; the CAS on `top` re-validates.
//  - CAS success/failure orderings: the model's strong RMW reads the
//    latest store, so arbitration never depends on them here.

fn run_mutation(m: Mutation, bound: usize, closure: fn()) -> Report {
    Builder::new()
        .preemption_bound(bound)
        .mutate(m)
        .check(closure)
}

#[test]
fn mutation_push_bottom_release_to_relaxed_is_caught() {
    // push's `bottom.store(Release)` publishes the slot words; a
    // relaxed store lets the thief read stale slot contents.
    let r = run_mutation(
        Mutation::Weaken {
            thread: None,
            loc: Some(1),
            kind: OpKind::Store,
            from: Ordering::Release,
            to: Ordering::Relaxed,
        },
        3,
        deque_push_vs_steal,
    );
    r.assert_caught();
}

#[test]
fn mutation_pop_fence_seqcst_to_acquire_is_caught() {
    // pop's SeqCst fence orders the bottom decrement before the top
    // read; weakened, the owner fast-pops a slot a thief also takes.
    let r = run_mutation(
        Mutation::Weaken {
            thread: Some(0),
            loc: None,
            kind: OpKind::Fence,
            from: Ordering::SeqCst,
            to: Ordering::Acquire,
        },
        2,
        deque_two_item_workout,
    );
    r.assert_caught();
}

#[test]
fn mutation_steal_fence_seqcst_to_acquire_is_caught() {
    // steal's SeqCst fence forces a fresh bottom read; weakened, the
    // thief over-reads past the owner's decrement.
    let r = run_mutation(
        Mutation::Weaken {
            thread: Some(1),
            loc: None,
            kind: OpKind::Fence,
            from: Ordering::SeqCst,
            to: Ordering::Acquire,
        },
        2,
        deque_two_item_workout,
    );
    r.assert_caught();
}

#[test]
fn mutation_steal_bottom_acquire_to_relaxed_is_caught() {
    // steal's `bottom.load(Acquire)` synchronizes with push's
    // Release; relaxed, the slot words may predate the push.
    let r = run_mutation(
        Mutation::Weaken {
            thread: Some(1),
            loc: Some(1),
            kind: OpKind::Load,
            from: Ordering::Acquire,
            to: Ordering::Relaxed,
        },
        3,
        deque_push_vs_steal,
    );
    r.assert_caught();
}

#[test]
fn mutation_suppressed_notify_one_is_caught() {
    // Losing send's notify_one strands the blocked consumer (the
    // leaked sender means no disconnect broadcast rescues it).
    let r = run_mutation(
        Mutation::SuppressNotifyOne { cond: None },
        2,
        chan_send_wakes_consumer,
    );
    r.assert_caught();
    assert!(
        r.failure.as_deref().is_some_and(|m| m.contains("deadlock")),
        "expected deadlock, got {:?}",
        r.failure
    );
}

#[test]
fn mutation_notify_all_to_one_is_caught() {
    // Degrading the disconnect broadcast to notify_one strands one of
    // the two blocked consumers.
    let r = run_mutation(
        Mutation::NotifyAllToOne { cond: None },
        2,
        chan_disconnect_wakes_all,
    );
    r.assert_caught();
    assert!(
        r.failure.as_deref().is_some_and(|m| m.contains("deadlock")),
        "expected deadlock, got {:?}",
        r.failure
    );
}
