//! Public entry points: configure a model, run the exhaustive DFS,
//! get a [`Report`].

use std::panic;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, Once};

use crate::mutate::{Mutation, MutationState};
use crate::rt::{self, Exec, Pool, SchedShared, Trail};

/// Outcome of a model run.
#[derive(Debug)]
pub struct Report {
    /// No execution failed (and the state space was fully explored).
    pub ok: bool,
    /// First failure found: panic message, deadlock, or livelock.
    pub failure: Option<String>,
    /// Number of executions explored (up to and including the failing
    /// one).
    pub executions: usize,
    /// Last ops of the failing execution, oldest first.
    pub trace: Vec<String>,
    /// For each seeded mutation: did it rewrite at least one op?
    pub mutations_fired: Vec<bool>,
}

impl Report {
    /// Panic with the recorded trace if the run failed — the standard
    /// assertion for correctness tests.
    pub fn assert_ok(&self) {
        assert!(
            self.ok,
            "model check failed after {} execution(s): {}\ntrace:\n  {}",
            self.executions,
            self.failure.as_deref().unwrap_or("?"),
            self.trace.join("\n  "),
        );
    }

    /// Assert the checker caught a seeded bug *and* every mutation
    /// actually rewrote an op — a rule that never fires means the
    /// harness targeted a nonexistent site and proved nothing.
    pub fn assert_caught(&self) {
        assert!(
            self.mutations_fired.iter().all(|&f| f),
            "a seeded mutation never fired: the harness targets a nonexistent site"
        );
        assert!(
            !self.ok,
            "seeded weakening was NOT caught in {} executions",
            self.executions
        );
    }
}

/// Model configuration. Defaults: preemption bound 3, 20_000 steps
/// per execution, 400_000 executions max.
pub struct Builder {
    pub preemption_bound: usize,
    pub max_steps: usize,
    pub max_executions: usize,
    mutations: Vec<Mutation>,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: 3,
            max_steps: 20_000,
            max_executions: 400_000,
            mutations: Vec::new(),
        }
    }

    pub fn preemption_bound(mut self, b: usize) -> Builder {
        self.preemption_bound = b;
        self
    }

    pub fn mutate(mut self, m: Mutation) -> Builder {
        self.mutations.push(m);
        self
    }

    /// Exhaustively explore every interleaving of `f` (up to the
    /// preemption bound), stopping at the first failure.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let shared = Arc::new(SchedShared {
            m: OsMutex::new(Exec::new(Trail::default(), Vec::new(), 0, 0)),
            cv: OsCondvar::new(),
            pool: Pool::new(),
        });

        let mut trail = Trail::default();
        let mut muts: Vec<MutationState> = self
            .mutations
            .iter()
            .map(|&rule| MutationState { rule, fired: false })
            .collect();
        let mut executions = 0usize;

        loop {
            executions += 1;
            let (t, m, failure, trace) = rt::run_one(
                &shared,
                Arc::clone(&body),
                trail,
                muts,
                self.preemption_bound,
                self.max_steps,
            );
            trail = t;
            muts = m;
            if let Some(msg) = failure {
                return Report {
                    ok: false,
                    failure: Some(msg),
                    executions,
                    trace,
                    mutations_fired: muts.iter().map(|m| m.fired).collect(),
                };
            }
            if executions >= self.max_executions {
                return Report {
                    ok: false,
                    failure: Some(format!(
                        "state space not exhausted after {executions} executions \
                         (raise max_executions or shrink the test)"
                    )),
                    executions,
                    trace,
                    mutations_fired: muts.iter().map(|m| m.fired).collect(),
                };
            }
            if !trail.backtrack() {
                return Report {
                    ok: true,
                    failure: None,
                    executions,
                    trace: Vec::new(),
                    mutations_fired: muts.iter().map(|m| m.fired).collect(),
                };
            }
        }
    }
}

/// `Builder::new().check(f)` shorthand.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Model threads panic on purpose (aborts, seeded-bug detections) —
/// thousands of times per mutation run. Silence the default hook for
/// panics raised while running model code; everything else prints as
/// usual.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_model = rt::IN_MODEL.with(|m| m.get());
            if !in_model {
                default(info);
            }
        }));
    });
}
