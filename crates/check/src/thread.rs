//! Model threads: `spawn`/`join` with the same shape as
//! `std::thread`, scheduled by the model's exhaustive scheduler.

use std::sync::{Arc, Mutex as OsMutex};

use crate::rt;

pub struct JoinHandle<T> {
    tid: usize,
    /// Written exactly once by the child before it terminates; the
    /// join op's happens-before edge orders the read after it.
    result: Arc<OsMutex<Option<T>>>,
}

/// Spawn a model thread running `f`. At most
/// [`crate::vv::MAX_THREADS`] threads (root included) per execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(OsMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn_thread(Box::new(move || {
        let v = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    }));
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Block until the thread terminates; returns its result. Unlike
    /// std, a panicking child aborts the whole execution (the checker
    /// reports it), so join itself cannot observe an Err. The
    /// `Result<_, ()>` shape exists only to mirror `std::thread`'s
    /// signature for the dual-instantiation sources.
    #[allow(clippy::result_unit_err)]
    pub fn join(self) -> Result<T, ()> {
        rt::join_thread(self.tid);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .ok_or(())
    }
}
