// The model instantiation switch: the production sources of the
// Chase-Lev deque (crates/par/src/deque.rs) and the crossbeam MPMC
// channel (vendor/crossbeam/src/lib.rs) are compiled a second time
// inside this crate, with `celeste_model` set so their `#[cfg]` type
// aliases bind the model atomics/mutexes instead of std's. Same
// source text, two instantiations — like the fma/portable kernel
// split in celeste-core.
fn main() {
    println!("cargo::rustc-cfg=celeste_model");
    println!("cargo::rustc-check-cfg=cfg(celeste_model)");
    // Rebuild when the ported sources change: cargo only tracks files
    // inside the crate directory by default.
    println!("cargo::rerun-if-changed=../par/src/deque.rs");
    println!("cargo::rerun-if-changed=../../vendor/crossbeam/src/lib.rs");
}
