//! Hot-path regression tests: the evaluation inner loop must stay
//! allocation-free and workspace-reusing after warmup.
//!
//! A counting global allocator wraps the system allocator for this
//! test binary, tallying into a thread-local counter: the assertions
//! measure exactly what the measuring thread allocates, so harness or
//! executor threads elsewhere in the process can never pollute the
//! deltas (a process-global counter here was measurably flaky).
//! Everything still runs inside ONE #[test] so the warmup/measure
//! phases stay ordered.

use celeste_core::likelihood::{likelihood_value_into, ActivePixel, ImageBlock, LikScratch};
use celeste_core::newton::workspace_builds;
use celeste_core::{
    fit_source_with, source_workspace, FitConfig, ModelPriors, Objective, SourceParams,
    SourceProblem,
};
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::psf::Psf;
use celeste_survey::skygeom::SkyCoord;
use celeste_survey::Priors;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

struct CountingAlloc;

std::thread_local! {
    // Const-initialized: plain TLS slot, no lazy setup allocation.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Count an allocation against the calling thread. `try_with` so a
/// late allocation during TLS teardown can't recurse or abort.
fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to `System` plus a TLS counter bump;
// every GlobalAlloc contract obligation is delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's layout contract; forwarded
    // verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: as for `alloc` — `ptr`/`layout` come from a matching
    // `System` allocation.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout pair the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: as for `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: same ptr/layout/new_size the caller vouched for.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

fn fixture() -> (SourceParams, SourceProblem) {
    let entry = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.0, 0.0),
        source_type: SourceType::Galaxy,
        flux_r_nmgy: 5.0,
        colors: [0.5, 0.2, 0.1, 0.05],
        shape: GalaxyShape {
            frac_dev: 0.4,
            axis_ratio: 0.7,
            angle_rad: 0.6,
            radius_arcsec: 1.5,
        },
    };
    let sp = SourceParams::init_from_entry(&entry);
    let mut pixels = Vec::new();
    for y in 0..15 {
        for x in 0..15 {
            let dx = x as f64 - 7.0;
            let dy = y as f64 - 7.0;
            pixels.push(ActivePixel {
                px: 20.0 + dx,
                py: 21.0 + dy,
                x: (130.0 + 350.0 * (-0.3 * (dx * dx + dy * dy)).exp()).round(),
                eps: 130.0,
            });
        }
    }
    let blocks = vec![ImageBlock {
        band: 2,
        iota: 300.0,
        jac: [[0.7, 0.01], [-0.02, 0.71]],
        center0: [20.0, 21.0],
        psf: Arc::new(Psf::core_halo(1.3)),
        pixels,
    }];
    let priors = ModelPriors::new(Priors::sdss_default());
    (
        sp,
        SourceProblem {
            blocks,
            priors,
            cull_tol: FitConfig::default().cull_tol,
        },
    )
}

/// One test on purpose: the allocation counter is process-global, so
/// parallel sibling tests would corrupt the deltas.
#[test]
fn evaluation_hot_path_is_allocation_free_after_warmup() {
    let (sp, problem) = fixture();

    // --- eval_into: zero heap allocations after warmup. ---
    let mut ws = source_workspace();
    for _ in 0..3 {
        problem.eval_into(&sp.params, &mut ws); // warm scratch capacity
    }
    let before = allocs();
    for _ in 0..25 {
        problem.eval_into(&sp.params, &mut ws);
    }
    let evals_allocs = allocs() - before;
    assert_eq!(
        evals_allocs, 0,
        "eval_into allocated {evals_allocs} times over 25 warmed-up evaluations"
    );
    assert!(ws.value.is_finite());

    // --- value-only path: zero heap allocations after warmup. ---
    let mut lik_scratch = LikScratch::default();
    for _ in 0..3 {
        likelihood_value_into(
            &sp.params,
            &problem.blocks,
            &mut lik_scratch,
            problem.cull_tol,
        );
    }
    let before = allocs();
    for _ in 0..25 {
        likelihood_value_into(
            &sp.params,
            &problem.blocks,
            &mut lik_scratch,
            problem.cull_tol,
        );
    }
    let value_allocs = allocs() - before;
    assert_eq!(
        value_allocs, 0,
        "likelihood_value_into allocated {value_allocs} times over 25 warmed-up calls"
    );

    // --- maximize: exactly one workspace per fit_source (the shim),
    // zero per fit_source_with, regardless of iteration count. ---
    let cfg = FitConfig {
        laplace_scales: false,
        ..Default::default()
    };
    let ws_before = workspace_builds();
    let mut source = sp.clone();
    let stats = fit_source_with(&mut source, &problem, &cfg, &mut ws);
    assert!(
        stats.newton.iterations > 0,
        "fixture should need Newton steps"
    );
    assert_eq!(
        workspace_builds() - ws_before,
        0,
        "fit_source_with must reuse the caller's workspace across all \
         {} iterations and {} trial evaluations",
        stats.newton.iterations,
        stats.newton.value_evals
    );

    let ws_before = workspace_builds();
    let mut source = sp.clone();
    celeste_core::fit_source(&mut source, &problem, &cfg);
    assert_eq!(
        workspace_builds() - ws_before,
        1,
        "fit_source allocates exactly one workspace up front"
    );

    // --- full maximize_with: ZERO heap allocations across the entire
    // Newton run (every iteration, trust-region solve — eigen
    // decomposition included — and trial evaluation), not merely per
    // eval_into. First run warms the trust-region workspace; the
    // counted repeats must not touch the heap at all. ---
    let mut x = vec![0.0; sp.params.len()];
    x.copy_from_slice(&sp.params);
    let run_stats = celeste_core::maximize_with(&problem, &mut x, &cfg.newton, &mut ws);
    assert!(
        run_stats.iterations > 0,
        "warmup run should take Newton steps"
    );
    let before = allocs();
    let mut total_iters = 0;
    let mut total_trials = 0;
    for _ in 0..3 {
        x.copy_from_slice(&sp.params);
        let s = celeste_core::maximize_with(&problem, &mut x, &cfg.newton, &mut ws);
        total_iters += s.iterations;
        total_trials += s.value_evals;
    }
    let maximize_allocs = allocs() - before;
    assert!(total_iters > 0, "counted runs should take Newton steps");
    assert_eq!(
        maximize_allocs, 0,
        "maximize_with allocated {maximize_allocs} times across 3 warmed-up \
         runs ({total_iters} iterations, {total_trials} trial evaluations)"
    );
}
