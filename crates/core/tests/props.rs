//! Property tests for the inference core: the hand-coded derivatives
//! must agree with the AD-instantiated generic ELBO at *random* points
//! in parameter space, not just at the fixed points the unit tests use.

use celeste_core::bvn::{GalaxyGeo, GeoEval, PreparedGalaxy, PreparedStar, GEO};
use celeste_core::generic;
use celeste_core::kl::{add_kl, kl_value, ModelPriors};
use celeste_core::likelihood::{add_likelihood, likelihood_value, ActivePixel, ImageBlock};
use celeste_core::params::{ids, SourceParams, NUM_PARAMS};
use celeste_linalg::Mat;
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::psf::Psf;
use celeste_survey::skygeom::SkyCoord;
use celeste_survey::Priors;
use proptest::prelude::*;

fn base_params() -> [f64; NUM_PARAMS] {
    let entry = CatalogEntry {
        id: 0,
        pos: SkyCoord::new(0.0, 0.0),
        source_type: SourceType::Galaxy,
        flux_r_nmgy: 4.0,
        colors: [0.5, 0.3, 0.2, 0.1],
        shape: GalaxyShape {
            frac_dev: 0.4,
            axis_ratio: 0.7,
            angle_rad: 0.8,
            radius_arcsec: 1.5,
        },
    };
    SourceParams::init_from_entry(&entry).params
}

fn perturbed(scale: f64, noise: &[f64]) -> [f64; NUM_PARAMS] {
    let mut p = base_params();
    for (i, v) in p.iter_mut().enumerate() {
        *v += scale * noise[i % noise.len()];
    }
    p
}

fn small_block() -> ImageBlock {
    let mut pixels = Vec::new();
    for y in 0..6 {
        for x in 0..6 {
            let dx = x as f64 - 3.0;
            let dy = y as f64 - 3.0;
            pixels.push(ActivePixel {
                px: 15.0 + dx,
                py: 16.0 + dy,
                x: (130.0 + 420.0 * (-0.4 * (dx * dx + dy * dy)).exp()).round(),
                eps: 130.0,
            });
        }
    }
    ImageBlock {
        band: 3,
        iota: 280.0,
        jac: [[0.7, 0.04], [-0.02, 0.69]],
        center0: [15.0, 16.0],
        psf: std::sync::Arc::new(Psf::core_halo(1.25)),
        pixels,
    }
}

/// Assert every slot of two geometry evaluations agrees within
/// `abs_bound` plus a 1e-12 relative rounding allowance.
fn assert_geo_close(a: &GeoEval, b: &GeoEval, abs_bound: f64, what: &str) {
    let close = |x: f64, y: f64, slot: &str| {
        let tol = abs_bound + 1e-12 * (1.0 + y.abs());
        assert!(
            (x - y).abs() <= tol,
            "{what} {slot}: {x} vs {y} (bound {tol})"
        );
    };
    close(a.val, b.val, "val");
    for i in 0..GEO {
        close(a.grad[i], b.grad[i], &format!("grad[{i}]"));
        for j in 0..GEO {
            close(a.hess[i][j], b.hess[i][j], &format!("hess[{i}][{j}]"));
        }
    }
}

const PROP_JAC: [[f64; 2]; 2] = [[0.7, 0.04], [-0.02, 0.69]];

/// A PSF with `n` equal-weight components of staggered widths:
/// parameterizes the prepared mixture size (stars: `n` comps,
/// galaxies: `14·n`) so the SIMD kernel's batch remainders are all
/// exercised.
fn uniform_psf(n: usize) -> Psf {
    Psf {
        components: (0..n)
            .map(|i| celeste_survey::psf::PsfComponent {
                weight: 1.0 / n as f64,
                sigma_px: 1.0 + 0.35 * i as f64,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn culled_galaxy_kernel_matches_reference_within_bound(
        u in (-0.6..0.6f64, -0.6..0.6f64),
        fd in -2.0..2.0f64,
        axis in -1.0..2.0f64,
        angle in 0.0..3.0f64,
        lr in -1.0..1.0f64,
        off in (-14.0..14.0f64, -14.0..14.0f64),
        tol_exp in 3.0..14.0f64,
    ) {
        // The tentpole parity property: at tolerance zero the culled,
        // lane-batched kernel agrees with the frozen reference kernel
        // to 1e-12; at a finite tolerance it stays within the
        // advertised error bound of `comps × tol` on every output slot
        // (value, gradient, and Hessian alike).
        let geo = GalaxyGeo { fd_logit: fd, axis_logit: axis, angle, ln_radius: lr };
        let psf = Psf::core_halo(1.25);
        let center0 = [20.0, 22.0];
        let tol = 10f64.powf(-tol_exp);
        let exact = PreparedGalaxy::new(&psf, &geo, center0, [u.0, u.1], &PROP_JAC);
        let mut culled = PreparedGalaxy::default();
        culled.prepare(&psf, &geo, center0, [u.0, u.1], &PROP_JAC, tol);

        let (px, py) = (center0[0] + off.0, center0[1] + off.1);
        let reference = exact.eval_reference(px, py);
        // Zero tolerance: 1e-12 parity with the frozen kernel.
        assert_geo_close(&exact.eval(px, py), &reference, 0.0, "zero-tol");
        // Finite tolerance: the advertised bound.
        let bound = culled.n_comps() as f64 * tol;
        assert_geo_close(&culled.eval(px, py), &reference, bound, "culled");
        // The value-only path must cull identically to the derivative
        // path (trust-region ratios compare like with like).
        let ev = culled.eval(px, py);
        let vv = culled.eval_value(px, py);
        prop_assert!(
            (ev.val - vv).abs() <= 1e-12 * (1.0 + ev.val.abs()),
            "value path {vv} vs derivative path {}", ev.val
        );
    }

    #[test]
    fn culled_star_kernel_matches_reference_within_bound(
        u in (-0.6..0.6f64, -0.6..0.6f64),
        off in (-10.0..10.0f64, -10.0..10.0f64),
        seeing in 0.9..1.8f64,
        tol_exp in 3.0..14.0f64,
    ) {
        let psf = Psf::core_halo(seeing);
        let center0 = [15.0, 16.0];
        let tol = 10f64.powf(-tol_exp);
        let exact = PreparedStar::new(&psf, center0, [u.0, u.1], &PROP_JAC);
        let mut culled = PreparedStar::default();
        culled.prepare(&psf, center0, [u.0, u.1], &PROP_JAC, tol);

        let (px, py) = (center0[0] + off.0, center0[1] + off.1);
        let reference = exact.eval_reference(px, py);
        assert_geo_close(&exact.eval(px, py), &reference, 0.0, "zero-tol star");
        let bound = culled.n_comps() as f64 * tol;
        assert_geo_close(&culled.eval(px, py), &reference, bound, "culled star");
    }

    #[test]
    fn batched_galaxy_kernel_matches_portable_instantiation(
        u in (-0.6..0.6f64, -0.6..0.6f64),
        fd in -2.0..2.0f64,
        axis in -1.0..2.0f64,
        angle in 0.0..3.0f64,
        lr in -1.0..1.0f64,
        off in (-40.0..40.0f64, -40.0..40.0f64),
        n_psf in 1usize..5,
        tol_exp in 3.0..14.0f64,
    ) {
        // The batched-exp + SoA-assembly instantiation (dispatched on
        // AVX2 hardware) against the portable scalar instantiation:
        // zero-tol parity at 1e-12 against the dense reference for
        // both, plus a few-ulp scalar-vs-SIMD bound on every slot.
        // `n_psf` varies the mixture size (14·n_psf components) so
        // partial final chunks (n % 4 ≠ 0, e.g. n = 14, 42) and full
        // ones (n = 28, 56) are both exercised; the wide `off` range
        // reaches the all-culled regime.
        let psf = uniform_psf(n_psf);
        let geo = GalaxyGeo { fd_logit: fd, axis_logit: axis, angle, ln_radius: lr };
        let center0 = [50.0, 52.0];
        let exact = PreparedGalaxy::new(&psf, &geo, center0, [u.0, u.1], &PROP_JAC);
        let (px, py) = (center0[0] + off.0, center0[1] + off.1);

        // Zero tolerance: both instantiations meet the 1e-12 parity
        // bar against the frozen dense reference.
        let reference = exact.eval_reference(px, py);
        let simd = exact.eval(px, py);
        let portable = exact.eval_portable(px, py);
        assert_geo_close(&simd, &reference, 0.0, "dispatched vs reference");
        assert_geo_close(&portable, &reference, 0.0, "portable vs reference");
        // Scalar vs SIMD: a few-ulp relative bound per slot.
        assert_geo_close(&simd, &portable, 0.0, "dispatched vs portable");
        // Value path agrees across instantiations too.
        let v_simd = exact.eval_value(px, py);
        let v_port = exact.eval_value_portable(px, py);
        prop_assert!(
            (v_simd - v_port).abs() <= 1e-12 * (1.0 + v_port.abs()),
            "value dispatched {v_simd} vs portable {v_port}"
        );

        // All-culled pixels are *exactly* zero in every path.
        if reference.val == 0.0 {
            prop_assert!(simd.val == 0.0 && portable.val == 0.0 && v_simd == 0.0);
        }

        // And at a finite culling tolerance the instantiations still
        // agree with each other to ulps (same screening decisions:
        // one shared dispatch).
        let tol = 10f64.powf(-tol_exp);
        let mut culled = PreparedGalaxy::default();
        culled.prepare(&psf, &geo, center0, [u.0, u.1], &PROP_JAC, tol);
        assert_geo_close(
            &culled.eval(px, py),
            &culled.eval_portable(px, py),
            0.0,
            "culled dispatched vs portable",
        );
    }

    #[test]
    fn batched_star_kernel_matches_portable_instantiation(
        u in (-0.6..0.6f64, -0.6..0.6f64),
        off in (-35.0..35.0f64, -35.0..35.0f64),
        n_psf in 1usize..7,
    ) {
        // Star mixtures sweep n = 1..6: below, at, and above one exp
        // batch, so the small-mixture streaming shortcut and the
        // chunked path are both held to parity with the portable
        // instantiation (on AVX2 hardware both dispatch HwFma; the
        // assertion is that they agree with ScalarMadd to ulps).
        let psf = uniform_psf(n_psf);
        let center0 = [40.0, 41.0];
        let exact = PreparedStar::new(&psf, center0, [u.0, u.1], &PROP_JAC);
        let (px, py) = (center0[0] + off.0, center0[1] + off.1);
        let reference = exact.eval_reference(px, py);
        let simd = exact.eval(px, py);
        let portable = exact.eval_portable(px, py);
        assert_geo_close(&simd, &reference, 0.0, "star dispatched vs reference");
        assert_geo_close(&simd, &portable, 0.0, "star dispatched vs portable");
        let v_simd = exact.eval_value(px, py);
        let v_port = exact.eval_value_portable(px, py);
        prop_assert!((v_simd - v_port).abs() <= 1e-12 * (1.0 + v_port.abs()));
        if reference.val == 0.0 {
            prop_assert!(simd.val == 0.0 && v_simd == 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hand_gradient_matches_ad_at_random_points(
        noise in prop::collection::vec(-0.3..0.3f64, 11),
        scale in 0.1..1.0f64,
    ) {
        let p = perturbed(scale, &noise);
        let blocks = vec![small_block()];
        let priors = ModelPriors::new(Priors::sdss_default());

        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let mut kl_grad = [0.0; NUM_PARAMS];
        let mut kl_hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &priors, &mut kl_grad, &mut kl_hess);

        let ad = celeste_ad::gradient::<NUM_PARAMS>(
            |x| {
                let arr: [celeste_ad::Dual<NUM_PARAMS>; NUM_PARAMS] =
                    std::array::from_fn(|i| x[i]);
                generic::elbo(&arr, &blocks, &priors)
            },
            &p,
        );
        for i in 0..NUM_PARAMS {
            let hand = grad[i] - kl_grad[i];
            prop_assert!(
                (ad[i] - hand).abs() < 1e-5 * (1.0 + hand.abs()),
                "param {}: AD {} vs hand {}", i, ad[i], hand
            );
        }
    }

    #[test]
    fn value_paths_agree_at_random_points(
        noise in prop::collection::vec(-0.4..0.4f64, 13),
        scale in 0.1..1.0f64,
    ) {
        let p = perturbed(scale, &noise);
        let blocks = vec![small_block()];
        let priors = ModelPriors::new(Priors::sdss_default());
        let hand = likelihood_value(&p, &blocks) - kl_value(&p, &priors);
        let gen = generic::elbo::<f64>(&generic::lift(&p), &blocks, &priors);
        prop_assert!((hand - gen).abs() < 1e-8 * (1.0 + hand.abs()));
    }

    #[test]
    fn hessian_sample_matches_hyperdual_at_random_points(
        noise in prop::collection::vec(-0.25..0.25f64, 7),
        i_raw in 0..NUM_PARAMS,
        j_raw in 0..NUM_PARAMS,
    ) {
        let p = perturbed(0.7, &noise);
        let blocks = vec![small_block()];
        let priors = ModelPriors::new(Priors::sdss_default());
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let mut kl_grad = [0.0; NUM_PARAMS];
        let mut kl_hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &priors, &mut kl_grad, &mut kl_hess);

        let f = |x: &[celeste_ad::Dual2]| {
            let arr: [celeste_ad::Dual2; NUM_PARAMS] = std::array::from_fn(|i| x[i]);
            generic::elbo(&arr, &blocks, &priors)
        };
        let mut v = vec![0.0; NUM_PARAMS];
        let mut w = vec![0.0; NUM_PARAMS];
        v[i_raw] = 1.0;
        w[j_raw] = 1.0;
        let ad = celeste_ad::hessian_bilinear(f, &p, &v, &w);
        let hand = hess[(i_raw, j_raw)] - kl_hess[(i_raw, j_raw)];
        prop_assert!(
            (ad - hand).abs() < 1e-4 * (1.0 + hand.abs()),
            "H[{}][{}]: AD {} vs hand {}", i_raw, j_raw, ad, hand
        );
    }

    #[test]
    fn kl_nonnegative_up_to_structured_slack(
        noise in prop::collection::vec(-0.5..0.5f64, 9),
        scale in 0.0..1.5f64,
    ) {
        // The structured color bound can undershoot true KL by at most
        // Σ_t w'_t·(−min_k ln π_tk); everything else is a true KL ≥ 0.
        let p = perturbed(scale, &noise);
        let priors = ModelPriors::new(Priors::sdss_default());
        let slack: f64 = (0..2)
            .map(|t| {
                priors.survey.color[t]
                    .components
                    .iter()
                    .map(|c| -c.weight.max(1e-12).ln())
                    .fold(0.0_f64, f64::max)
            })
            .sum::<f64>()
            + 1.0;
        prop_assert!(kl_value(&p, &priors) > -slack);
    }

    #[test]
    fn posterior_summaries_are_finite_and_physical(
        noise in prop::collection::vec(-1.0..1.0f64, 17),
        scale in 0.0..2.0f64,
    ) {
        let mut sp = SourceParams::init_from_entry(&CatalogEntry {
            id: 5,
            pos: SkyCoord::new(1.0, 1.0),
            source_type: SourceType::Star,
            flux_r_nmgy: 2.0,
            colors: [0.1; 4],
            shape: GalaxyShape::round_disk(1.0),
        });
        for (i, v) in sp.params.iter_mut().enumerate() {
            *v += scale * noise[i % noise.len()];
        }
        // Keep log-scales in a representable range.
        for idx in [ids::U_LSD[0], ids::U_LSD[1]] {
            sp.params[idx] = sp.params[idx].clamp(-5.0, 3.0);
        }
        let e = sp.to_entry();
        prop_assert!(e.flux_r_nmgy.is_finite() && e.flux_r_nmgy > 0.0);
        prop_assert!(e.shape.axis_ratio > 0.0 && e.shape.axis_ratio <= 1.0);
        prop_assert!((0.0..std::f64::consts::PI).contains(&e.shape.angle_rad));
        let u = sp.uncertainty();
        prop_assert!((0.0..=1.0).contains(&u.star_prob));
        prop_assert!(u.flux_sd_nmgy >= 0.0);
    }
}
