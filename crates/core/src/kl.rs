//! Analytic KL-divergence terms of the ELBO, with exact derivatives.
//!
//! `ELBO = E_q[log p(x|z)] − KL(q ‖ p)`; this module computes the KL
//! part. Every term is closed-form (that is the point of the chosen
//! variational family, paper §III):
//!
//! * type indicator `a` — Bernoulli vs. the prior star probability;
//! * flux `r` per type — log-normal KL, weighted by `q(a = t)`;
//! * colors per type — structured mean-field bound: responsibilities
//!   `κ` over the K=5 prior mixture components, `Σ_k κ_k KL(q(c)‖p_k)
//!   + KL(κ‖π)`, weighted by `q(a = t)`;
//! * galaxy shape — Gaussian KLs in the unconstrained space, weighted
//!   by `q(a = galaxy)`;
//! * position — Gaussian KL around the initialization anchor.
//!
//! Because per-type terms are weighted by `w_t(a)`, every term couples
//! its own block to the type logits; those cross-derivatives are what
//! lets the classifier trade off how well each type explains the data.

use crate::fluxdist::type_weight;
use crate::params::{ids, K_COLOR, NUM_PARAMS};
use celeste_linalg::Mat;
use celeste_survey::bands::NUM_COLORS;
use celeste_survey::priors::Priors;

/// Constant floor on the per-type KL weights (see [`add_kl`]).
pub const KL_WEIGHT_FLOOR: f64 = 0.02;

/// Priors in the form the model consumes, plus the anchors that are
/// not part of the survey prior set.
#[derive(Debug, Clone)]
pub struct ModelPriors {
    pub survey: Priors,
    /// Prior sd of the position offset from initialization, arcsec.
    pub u_prior_sd_arcsec: f64,
    /// Prior sd of the (unconstrained) position angle, radians. Wide:
    /// the angle prior is effectively uniform.
    pub angle_prior_sd: f64,
}

impl ModelPriors {
    pub fn new(survey: Priors) -> ModelPriors {
        ModelPriors {
            survey,
            u_prior_sd_arcsec: 1.0,
            angle_prior_sd: 10.0,
        }
    }

    /// (prior mean, prior sd) of unconstrained shape parameter `j`
    /// (0 = deV logit, 1 = axis logit, 2 = angle, 3 = ln radius).
    fn shape_prior(&self, j: usize) -> (f64, f64) {
        let s = &self.survey.shape;
        match j {
            0 => (s.frac_dev_logit_mu, s.frac_dev_logit_sigma),
            1 => (s.axis_ratio_logit_mu, s.axis_ratio_logit_sigma),
            2 => (0.0, self.angle_prior_sd),
            _ => (s.radius_ln_mu, s.radius_ln_sigma),
        }
    }
}

/// A value with derivatives over a small support of parameter indices.
#[derive(Debug, Clone)]
struct Term<const M: usize> {
    idx: [usize; M],
    val: f64,
    grad: [f64; M],
    hess: [[f64; M]; M],
}

/// Gaussian KL `KL(N(m, e^{2·lsd}) ‖ N(pm, ps²))` over support
/// `(mean_idx, lsd_idx)`.
fn gauss_kl(
    params: &[f64; NUM_PARAMS],
    mean_idx: usize,
    lsd_idx: usize,
    pm: f64,
    ps: f64,
) -> Term<2> {
    let m = params[mean_idx];
    let lsd = params[lsd_idx];
    let var = (2.0 * lsd).exp();
    let ps2 = ps * ps;
    let val = ps.ln() - lsd + (var + (m - pm) * (m - pm)) / (2.0 * ps2) - 0.5;
    let gm = (m - pm) / ps2;
    let gl = -1.0 + var / ps2;
    Term {
        idx: [mean_idx, lsd_idx],
        val,
        grad: [gm, gl],
        hess: [[1.0 / ps2, 0.0], [0.0, 2.0 * var / ps2]],
    }
}

/// Add `alpha · w_t(a) · term` with the full a-coupling into
/// (grad, hess); returns the weighted (unscaled) value.
fn add_weighted<const M: usize>(
    w: &crate::fluxdist::TypeWeight,
    term: &Term<M>,
    alpha: f64,
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    // d(w·F)/dθ_F = w ∇F ; d/da = ∇w F
    let aw = alpha * w.val;
    for c in 0..M {
        grad[term.idx[c]] += aw * term.grad[c];
        for c2 in 0..M {
            hess[(term.idx[c], term.idx[c2])] += aw * term.hess[c][c2];
        }
    }
    for k in 0..2 {
        grad[ids::A[k]] += alpha * w.grad[k] * term.val;
        for k2 in 0..2 {
            hess[(ids::A[k], ids::A[k2])] += alpha * w.hess[k][k2] * term.val;
        }
        for c in 0..M {
            let v = alpha * w.grad[k] * term.grad[c];
            hess[(ids::A[k], term.idx[c])] += v;
            hess[(term.idx[c], ids::A[k])] += v;
        }
    }
    w.val * term.val
}

/// Add `alpha · term` (unweighted); returns the unscaled value.
fn add_plain<const M: usize>(
    term: &Term<M>,
    alpha: f64,
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    for c in 0..M {
        grad[term.idx[c]] += alpha * term.grad[c];
        for c2 in 0..M {
            hess[(term.idx[c], term.idx[c2])] += alpha * term.hess[c][c2];
        }
    }
    term.val
}

/// KL of the Bernoulli type indicator against the prior star
/// probability, on the two logit slots.
fn type_kl(params: &[f64; NUM_PARAMS], star_prob: f64) -> Term<2> {
    let d = params[ids::A[0]] - params[ids::A[1]];
    let w0 = crate::params::sigmoid(d);
    let w1 = 1.0 - w0;
    let p0 = star_prob.clamp(1e-9, 1.0 - 1e-9);
    let val = w0 * (w0 / p0).ln() + w1 * (w1 / (1.0 - p0)).ln();
    let dd = (w0 / p0).ln() - (w1 / (1.0 - p0)).ln();
    let s = w0 * w1;
    let g = s * dd; // dKL/dd
    let h = s * (w1 - w0) * dd + s; // d²KL/dd²
    Term {
        idx: [ids::A[0], ids::A[1]],
        val,
        grad: [g, -g],
        hess: [[h, -h], [-h, h]],
    }
}

/// Size of the per-type color support: 4 means + 4 log-vars + K logits.
const MC: usize = 2 * NUM_COLORS + K_COLOR;

/// Structured color KL for type `t`:
/// `Σ_k κ_k (KL(q(c)‖p_k) + ln κ_k − ln π_k)`.
fn color_kl(params: &[f64; NUM_PARAMS], priors: &ModelPriors, t: usize) -> Term<MC> {
    let mut idx = [0usize; MC];
    for i in 0..NUM_COLORS {
        idx[i] = ids::c_mean(t, i);
        idx[NUM_COLORS + i] = ids::c_lvar(t, i);
    }
    for k in 0..K_COLOR {
        idx[2 * NUM_COLORS + k] = ids::kappa(t, k);
    }

    // Responsibilities κ = softmax(logits). Stack arrays: this runs
    // inside the allocation-free evaluation hot path.
    let mut logits = [0.0; K_COLOR];
    for (k, l) in logits.iter_mut().enumerate() {
        *l = params[ids::kappa(t, k)];
    }
    let maxl = logits.iter().cloned().fold(f64::MIN, f64::max);
    let mut kap = [0.0; K_COLOR];
    let mut z = 0.0;
    for (e, &l) in kap.iter_mut().zip(&logits) {
        *e = (l - maxl).exp();
        z += *e;
    }
    for e in &mut kap {
        *e /= z;
    }

    let comp = &priors.survey.color[t].components;
    assert_eq!(
        comp.len(),
        K_COLOR,
        "color prior must have K={K_COLOR} components"
    );

    // Per component: KL(q(c)‖p_k) and its derivatives over the 8 color
    // slots (means then log-vars).
    let mut a = [0.0; K_COLOR]; // A_k = KL_k + ln κ_k − ln π_k
    let mut dkl = [[0.0; 2 * NUM_COLORS]; K_COLOR];
    let mut d2kl = [[0.0; 2 * NUM_COLORS]; K_COLOR]; // diagonal only
    for k in 0..K_COLOR {
        let mut kl = 0.0;
        for i in 0..NUM_COLORS {
            let c = params[ids::c_mean(t, i)];
            let lv = params[ids::c_lvar(t, i)];
            let var = lv.exp();
            let pm = comp[k].mean[i];
            let pv = comp[k].var[i].max(1e-8);
            kl += 0.5 * (pv.ln() - lv) + (var + (c - pm) * (c - pm)) / (2.0 * pv) - 0.5;
            dkl[k][i] = (c - pm) / pv;
            d2kl[k][i] = 1.0 / pv;
            dkl[k][NUM_COLORS + i] = -0.5 + var / (2.0 * pv);
            d2kl[k][NUM_COLORS + i] = var / (2.0 * pv);
        }
        a[k] = kl + kap[k].max(1e-300).ln() - comp[k].weight.max(1e-12).ln();
    }
    let abar: f64 = (0..K_COLOR).map(|k| kap[k] * a[k]).sum();
    let val = abar;

    let mut grad = [0.0; MC];
    let mut hess = [[0.0; MC]; MC];
    // Color-slot derivatives: Σ_k κ_k ∇KL_k (diag Hessian per slot).
    for c in 0..2 * NUM_COLORS {
        for k in 0..K_COLOR {
            grad[c] += kap[k] * dkl[k][c];
            hess[c][c] += kap[k] * d2kl[k][c];
        }
    }
    // Logit derivatives: ∂T/∂l_j = κ_j (A_j − Ā).
    for j in 0..K_COLOR {
        grad[2 * NUM_COLORS + j] = kap[j] * (a[j] - abar);
    }
    // Logit-logit Hessian (see DESIGN notes): for i, j:
    // H_ij = κ_j(δ_ij−κ_i)(A_j−Ā) + κ_j[(δ_ij−κ_i) − κ_i(A_i−Ā)].
    for i in 0..K_COLOR {
        for j in 0..K_COLOR {
            let dij = if i == j { 1.0 } else { 0.0 };
            let h = kap[j] * (dij - kap[i]) * (a[j] - abar)
                + kap[j] * ((dij - kap[i]) - kap[i] * (a[i] - abar));
            hess[2 * NUM_COLORS + i][2 * NUM_COLORS + j] = h;
        }
    }
    // Logit-color cross: κ_j (∇_c KL_j − Σ_k κ_k ∇_c KL_k).
    for j in 0..K_COLOR {
        for c in 0..2 * NUM_COLORS {
            let mean_d: f64 = (0..K_COLOR).map(|k| kap[k] * dkl[k][c]).sum();
            let h = kap[j] * (dkl[j][c] - mean_d);
            hess[2 * NUM_COLORS + j][c] = h;
            hess[c][2 * NUM_COLORS + j] = h;
        }
    }
    Term {
        idx,
        val,
        grad,
        hess,
    }
}

/// Evaluate the total KL with derivatives *added* into (grad, hess).
/// Returns the KL value (≥ 0 up to the structured-bound slack).
pub fn add_kl(
    params: &[f64; NUM_PARAMS],
    priors: &ModelPriors,
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    accumulate_kl(params, priors, 1.0, grad, hess)
}

/// Evaluate the total KL, *subtracting* its derivatives from
/// (grad, hess) — the ELBO's `−KL` contribution in one pass, without
/// the scratch gradient/Hessian buffers a subtract-after-the-fact
/// needs. Returns the (positive) KL value.
pub fn sub_kl(
    params: &[f64; NUM_PARAMS],
    priors: &ModelPriors,
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    accumulate_kl(params, priors, -1.0, grad, hess)
}

/// Shared implementation: derivatives are scaled by `alpha` on the
/// way in; the returned value is always the unscaled KL.
fn accumulate_kl(
    params: &[f64; NUM_PARAMS],
    priors: &ModelPriors,
    alpha: f64,
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    let mut total = 0.0;
    // Dormant-branch anchor: when q(a = t) → 0, type t's parameters
    // feel neither data nor (weighted) prior, so trust-region steps
    // can drift them arbitrarily along null directions. A small
    // constant floor on the KL weight keeps every branch anchored to
    // its prior without noticeably biasing the active branch.
    let mut w = [type_weight(params, 0), type_weight(params, 1)];
    w[0].val += KL_WEIGHT_FLOOR;
    w[1].val += KL_WEIGHT_FLOOR;

    total += add_plain(&type_kl(params, priors.survey.star_prob), alpha, grad, hess);
    for t in 0..2 {
        let fp = &priors.survey.flux[t];
        let r_kl = gauss_kl(params, ids::r_mu(t), ids::r_lsd(t), fp.mu, fp.sigma);
        total += add_weighted(&w[t], &r_kl, alpha, grad, hess);
        let c_kl = color_kl(params, priors, t);
        total += add_weighted(&w[t], &c_kl, alpha, grad, hess);
    }
    // Shape block: galaxy-weighted.
    for j in 0..4 {
        let (pm, ps) = priors.shape_prior(j);
        let s_kl = gauss_kl(params, ids::SHAPE[j], ids::SHAPE_LSD[j], pm, ps);
        total += add_weighted(&w[1], &s_kl, alpha, grad, hess);
    }
    // Position block: unweighted, anchored at the initialization.
    for j in 0..2 {
        let u_kl = gauss_kl(
            params,
            ids::U[j],
            ids::U_LSD[j],
            0.0,
            priors.u_prior_sd_arcsec,
        );
        total += add_plain(&u_kl, alpha, grad, hess);
    }
    total
}

/// Value-only KL (trust-region trial points). Sums the same terms as
/// [`add_kl`] without touching gradient/Hessian buffers — every term
/// lives on the stack, so this path performs no heap allocation
/// (unlike the old implementation, which built a scratch 44×44 matrix
/// per trial point).
pub fn kl_value(params: &[f64; NUM_PARAMS], priors: &ModelPriors) -> f64 {
    let mut total = 0.0;
    let mut w = [type_weight(params, 0), type_weight(params, 1)];
    w[0].val += KL_WEIGHT_FLOOR;
    w[1].val += KL_WEIGHT_FLOOR;

    total += type_kl(params, priors.survey.star_prob).val;
    for t in 0..2 {
        let fp = &priors.survey.flux[t];
        total += w[t].val * gauss_kl(params, ids::r_mu(t), ids::r_lsd(t), fp.mu, fp.sigma).val;
        total += w[t].val * color_kl(params, priors, t).val;
    }
    for j in 0..4 {
        let (pm, ps) = priors.shape_prior(j);
        total += w[1].val * gauss_kl(params, ids::SHAPE[j], ids::SHAPE_LSD[j], pm, ps).val;
    }
    for j in 0..2 {
        total += gauss_kl(
            params,
            ids::U[j],
            ids::U_LSD[j],
            0.0,
            priors.u_prior_sd_arcsec,
        )
        .val;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SourceParams;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn priors() -> ModelPriors {
        ModelPriors::new(Priors::sdss_default())
    }

    fn test_params() -> [f64; NUM_PARAMS] {
        let entry = CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.0, 0.0),
            source_type: SourceType::Galaxy,
            flux_r_nmgy: 2.5,
            colors: [0.8, 0.4, 0.2, 0.1],
            shape: GalaxyShape {
                frac_dev: 0.4,
                axis_ratio: 0.7,
                angle_rad: 0.9,
                radius_arcsec: 1.5,
            },
        };
        let mut sp = SourceParams::init_from_entry(&entry);
        for (i, p) in sp.params.iter_mut().enumerate() {
            *p += 0.05 * ((i * 13 % 19) as f64 - 9.0) / 9.0;
        }
        sp.params
    }

    #[test]
    fn kl_is_nonnegative_and_zero_free_params_at_prior() {
        // Construct parameters that sit exactly at the priors; KL ≈ 0.
        let pr = priors();
        let mut p = [0.0; NUM_PARAMS];
        // a at prior log-odds.
        let d = (pr.survey.star_prob / (1.0 - pr.survey.star_prob)).ln();
        p[ids::A[0]] = 0.5 * d;
        p[ids::A[1]] = -0.5 * d;
        for t in 0..2 {
            p[ids::r_mu(t)] = pr.survey.flux[t].mu;
            p[ids::r_lsd(t)] = pr.survey.flux[t].sigma.ln();
            // colors: sit on component 0 with matching variance, and
            // put all κ mass there.
            for i in 0..NUM_COLORS {
                p[ids::c_mean(t, i)] = pr.survey.color[t].components[0].mean[i];
                p[ids::c_lvar(t, i)] = pr.survey.color[t].components[0].var[i].ln();
            }
            p[ids::kappa(t, 0)] = 30.0;
        }
        for j in 0..4 {
            let (pm, ps) = pr.shape_prior(j);
            p[ids::SHAPE[j]] = pm;
            p[ids::SHAPE_LSD[j]] = ps.ln();
        }
        p[ids::U_LSD[0]] = pr.u_prior_sd_arcsec.ln();
        p[ids::U_LSD[1]] = pr.u_prior_sd_arcsec.ln();
        let v = kl_value(&p, &pr);
        // Residual: κ concentrated on one component costs −ln π_0 per
        // type (the structured-bound slack), weighted by w_t.
        let slack: f64 = -pr.survey.color[0].components[0].weight.ln();
        assert!(v >= -1e-9, "KL negative: {v}");
        assert!(v <= slack + 1e-6, "KL {v} exceeds expected slack {slack}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let pr = priors();
        let p = test_params();
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &pr, &mut grad, &mut hess);
        let h = 1e-6;
        for idx in 0..NUM_PARAMS {
            let mut up = p;
            let mut dn = p;
            up[idx] += h;
            dn[idx] -= h;
            let fd = (kl_value(&up, &pr) - kl_value(&dn, &pr)) / (2.0 * h);
            assert!(
                (grad[idx] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn hessian_matches_fd_of_gradient() {
        let pr = priors();
        let p = test_params();
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &pr, &mut grad, &mut hess);
        let h = 1e-5;
        for j in 0..NUM_PARAMS {
            let mut up = p;
            let mut dn = p;
            up[j] += h;
            dn[j] -= h;
            let mut gu = [0.0; NUM_PARAMS];
            let mut gd = [0.0; NUM_PARAMS];
            let mut scratch_u = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            let mut scratch_d = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            add_kl(&up, &pr, &mut gu, &mut scratch_u);
            add_kl(&dn, &pr, &mut gd, &mut scratch_d);
            for i in 0..NUM_PARAMS {
                let fd = (gu[i] - gd[i]) / (2.0 * h);
                let an = hess[(i, j)];
                assert!(
                    (an - fd).abs() < 5e-4 * (1.0 + fd.abs().max(an.abs())),
                    "H[{i}][{j}]: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let pr = priors();
        let p = test_params();
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &pr, &mut grad, &mut hess);
        assert!(hess.is_symmetric(1e-10));
    }

    #[test]
    fn moving_from_prior_increases_kl() {
        let pr = priors();
        let base = test_params();
        let v0 = kl_value(&base, &pr);
        let mut moved = base;
        moved[ids::r_mu(0)] += 5.0; // far from the flux prior
        assert!(kl_value(&moved, &pr) > v0);
    }

    #[test]
    fn kappa_gradient_pulls_toward_best_component() {
        let pr = priors();
        let p = test_params();
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_kl(&p, &pr, &mut grad, &mut hess);
        // The gradient over kappa logits must sum to ~0 (softmax
        // invariance to a common shift).
        for t in 0..2 {
            let s: f64 = (0..K_COLOR).map(|k| grad[ids::kappa(t, k)]).sum();
            assert!(s.abs() < 1e-10, "type {t} kappa grad sum {s}");
        }
    }
}
