//! FLOP accounting (the paper's §VI-B methodology, without Intel SDE).
//!
//! Celeste's FLOP totals are derived by counting *active pixel visits*
//! at runtime and multiplying by a per-visit FLOP cost measured once
//! offline. Here the per-visit cost is measured with the op-counting
//! float ([`celeste_ad::Counting`]) run through the generic ELBO path
//! (see `celeste-bench`), and visits are counted with a process-wide
//! atomic that the likelihood kernels bump.

use std::sync::atomic::{AtomicU64, Ordering};

static ACTIVE_PIXEL_VISITS: AtomicU64 = AtomicU64::new(0);

/// Record `n` active-pixel visits (called by the likelihood kernels).
#[inline]
pub fn record_visits(n: u64) {
    ACTIVE_PIXEL_VISITS.fetch_add(n, Ordering::Relaxed);
}

/// Total visits since process start / last reset.
pub fn visits() -> u64 {
    ACTIVE_PIXEL_VISITS.load(Ordering::Relaxed)
}

/// Zero the counter (benchmarks bracket runs with this).
pub fn reset_visits() {
    ACTIVE_PIXEL_VISITS.store(0, Ordering::Relaxed);
}

/// The paper's measured ratio of total FLOPs to objective-only FLOPs
/// (trust-region eigendecompositions, Cholesky factorizations, …):
/// "these additional sources of FLOPS increase the total flop count to
/// 1.375 times the FLOP count derived from active pixel visits alone"
/// (§VI-B). Our benches re-measure this for the Rust implementation;
/// the constant is exported for the Table I reproduction.
pub const OBJECTIVE_OVERHEAD_FACTOR: f64 = 1.375;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset_visits();
        record_visits(10);
        record_visits(32);
        assert_eq!(visits(), 42);
        reset_visits();
        assert_eq!(visits(), 0);
    }
}
