//! A Markov chain Monte Carlo baseline (paper §II).
//!
//! "Markov chain Monte Carlo (MCMC) is the most common approach
//! [to approximate Bayesian inference]. Unfortunately, the
//! computational work required to draw enough 'samples' makes it
//! poorly suited to large-scale problems. It is also difficult to
//! determine when the Markov chain has mixed."
//!
//! This module provides the comparison point: adaptive random-walk
//! Metropolis over the same 44-parameter space and the same objective
//! surface the variational optimizer maximizes (used as a log-density).
//! `ablation_mcmc` measures objective evaluations to localize the
//! optimum region versus Newton's count — the paper's argument in
//! numbers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Metropolis configuration.
#[derive(Debug, Clone, Copy)]
pub struct McmcConfig {
    /// Total samples to draw.
    pub samples: usize,
    /// Burn-in samples discarded from summaries.
    pub burn_in: usize,
    /// Initial per-coordinate proposal sd.
    pub initial_step: f64,
    /// Adapt the step size toward this acceptance rate during burn-in
    /// (0.234 is the classic high-dimensional optimum).
    pub target_accept: f64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            samples: 4000,
            burn_in: 1000,
            initial_step: 0.05,
            target_accept: 0.234,
        }
    }
}

/// Result of a Metropolis run.
#[derive(Debug, Clone)]
pub struct McmcResult {
    /// Post-burn-in posterior mean per coordinate.
    pub mean: Vec<f64>,
    /// Post-burn-in posterior sd per coordinate.
    pub sd: Vec<f64>,
    /// Best (maximum log-density) point seen anywhere in the chain.
    pub map_point: Vec<f64>,
    pub map_value: f64,
    /// Acceptance rate after burn-in.
    pub accept_rate: f64,
    /// Total log-density evaluations (the cost measure).
    pub evaluations: usize,
}

/// Adaptive random-walk Metropolis on `log_density`, starting at `x0`.
pub fn metropolis(
    log_density: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    cfg: &McmcConfig,
    seed: u64,
) -> McmcResult {
    let n = x0.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = x0.to_vec();
    let mut fx = log_density(&x);
    let mut evaluations = 1usize;
    let mut step = cfg.initial_step;

    let mut map_point = x.clone();
    let mut map_value = fx;
    let mut accepted_post = 0usize;
    let mut kept = 0usize;
    let mut sum = vec![0.0; n];
    let mut sumsq = vec![0.0; n];

    let mut proposal = vec![0.0; n];
    for it in 0..cfg.samples {
        for (p, xi) in proposal.iter_mut().zip(&x) {
            p.clone_from(xi);
            *p += step * standard_normal(&mut rng);
        }
        let f_new = log_density(&proposal);
        evaluations += 1;
        let accept = f_new >= fx || rng.random::<f64>().ln() < f_new - fx;
        if accept {
            x.copy_from_slice(&proposal);
            fx = f_new;
            if fx > map_value {
                map_value = fx;
                map_point.copy_from_slice(&x);
            }
        }
        if it < cfg.burn_in {
            // Robbins–Monro step adaptation toward the target rate.
            let a = if accept { 1.0 } else { 0.0 };
            step *= ((a - cfg.target_accept) / (1.0 + it as f64).sqrt()).exp();
            step = step.clamp(1e-6, 10.0);
        } else {
            if accept {
                accepted_post += 1;
            }
            kept += 1;
            for i in 0..n {
                sum[i] += x[i];
                sumsq[i] += x[i] * x[i];
            }
        }
    }
    let kf = kept.max(1) as f64;
    let mean: Vec<f64> = sum.iter().map(|s| s / kf).collect();
    let sd: Vec<f64> = sumsq
        .iter()
        .zip(&mean)
        .map(|(sq, m)| (sq / kf - m * m).max(0.0).sqrt())
        .collect();
    McmcResult {
        mean,
        sd,
        map_point,
        map_value,
        accept_rate: accepted_post as f64 / kept.max(1) as f64,
        evaluations,
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard normal in n dimensions.
    fn gauss_logpdf(x: &[f64]) -> f64 {
        -0.5 * x.iter().map(|v| v * v).sum::<f64>()
    }

    #[test]
    fn recovers_gaussian_moments() {
        let cfg = McmcConfig {
            samples: 30_000,
            burn_in: 5_000,
            ..Default::default()
        };
        let r = metropolis(gauss_logpdf, &[3.0, -2.0], &cfg, 7);
        for (i, (&m, &s)) in r.mean.iter().zip(&r.sd).enumerate() {
            assert!(m.abs() < 0.15, "dim {i} mean {m}");
            assert!((s - 1.0).abs() < 0.15, "dim {i} sd {s}");
        }
        assert_eq!(r.evaluations, 30_001);
    }

    #[test]
    fn adaptation_reaches_sane_acceptance() {
        let cfg = McmcConfig {
            samples: 20_000,
            burn_in: 5_000,
            ..Default::default()
        };
        let r = metropolis(gauss_logpdf, &[0.0; 5], &cfg, 3);
        assert!(
            r.accept_rate > 0.1 && r.accept_rate < 0.6,
            "acceptance {}",
            r.accept_rate
        );
    }

    #[test]
    fn map_tracking_finds_mode_region() {
        let shifted = |x: &[f64]| -0.5 * ((x[0] - 4.0).powi(2) + (x[1] + 1.0).powi(2));
        let cfg = McmcConfig {
            samples: 20_000,
            burn_in: 4_000,
            ..Default::default()
        };
        let r = metropolis(shifted, &[0.0, 0.0], &cfg, 5);
        assert!((r.map_point[0] - 4.0).abs() < 0.3, "map {:?}", r.map_point);
        assert!((r.map_point[1] + 1.0).abs() < 0.3);
        assert!(r.map_value > -0.1);
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = McmcConfig {
            samples: 2_000,
            burn_in: 500,
            ..Default::default()
        };
        let a = metropolis(gauss_logpdf, &[1.0], &cfg, 11);
        let b = metropolis(gauss_logpdf, &[1.0], &cfg, 11);
        assert_eq!(a.mean, b.mean);
        let c = metropolis(gauss_logpdf, &[1.0], &cfg, 12);
        assert_ne!(a.mean, c.mean);
    }
}
