//! The 44-parameter variational block for one light source.
//!
//! Each celestial body is characterized by 44 parameters (paper §IV),
//! optimized jointly by Newton's method. All parameters live in an
//! unconstrained space (logits / logs) so the optimizer never needs
//! projections; the layout is:
//!
//! | slice    | idx    | meaning                                            |
//! |----------|--------|----------------------------------------------------|
//! | `U`      | 0..2   | position offset from init (Δra, Δdec), arcsec      |
//! | `U_LSD`  | 2..4   | ln sd of position (uncertainty report)             |
//! | `A`      | 4..6   | star/galaxy logits, softmax → q(a)                 |
//! | `R_MU`   | 6,8    | per-type mean of ln flux_r (star, galaxy)          |
//! | `R_LSD`  | 7,9    | per-type ln sd of ln flux_r                        |
//! | `C_MEAN` | 10..14 / 18..22 | per-type color means (star / galaxy)      |
//! | `C_LVAR` | 14..18 / 22..26 | per-type ln color variances               |
//! | `KAPPA`  | 26..31 / 31..36 | per-type color-prior responsibilities (K=5 logits) |
//! | `SHAPE`  | 36..40 | galaxy: deV logit, axis logit, angle, ln radius    |
//! | `SHAPE_LSD` | 40..44 | ln sd of the shape block (uncertainty report)   |

use celeste_survey::bands::NUM_COLORS;
use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
use celeste_survey::priors::NUM_COLOR_COMPONENTS;
use celeste_survey::skygeom::SkyCoord;

/// Parameters per source (fixed by the model; see module docs).
pub const NUM_PARAMS: usize = 44;
/// Source types: 0 = star, 1 = galaxy.
pub const NUM_TYPES: usize = 2;
/// Mixture components per color prior (matches `celeste_survey`).
pub const K_COLOR: usize = NUM_COLOR_COMPONENTS;

/// Index constants for the parameter layout.
pub mod ids {
    use super::{K_COLOR, NUM_COLORS};

    pub const U: [usize; 2] = [0, 1];
    pub const U_LSD: [usize; 2] = [2, 3];
    pub const A: [usize; 2] = [4, 5];

    /// Mean of ln flux for type `t`.
    pub const fn r_mu(t: usize) -> usize {
        6 + 2 * t
    }
    /// ln sd of ln flux for type `t`.
    pub const fn r_lsd(t: usize) -> usize {
        7 + 2 * t
    }
    /// Color mean `i` for type `t`.
    pub const fn c_mean(t: usize, i: usize) -> usize {
        10 + t * 2 * NUM_COLORS + i
    }
    /// ln color variance `i` for type `t`.
    pub const fn c_lvar(t: usize, i: usize) -> usize {
        10 + t * 2 * NUM_COLORS + NUM_COLORS + i
    }
    /// Color-prior responsibility logit `k` for type `t`.
    pub const fn kappa(t: usize, k: usize) -> usize {
        26 + t * K_COLOR + k
    }

    /// Galaxy shape block: [deV logit, axis-ratio logit, angle, ln radius].
    pub const SHAPE: [usize; 4] = [36, 37, 38, 39];
    pub const SHAPE_LSD: [usize; 4] = [40, 41, 42, 43];

    pub const FRAC_DEV: usize = SHAPE[0];
    pub const AXIS: usize = SHAPE[1];
    pub const ANGLE: usize = SHAPE[2];
    pub const LN_RADIUS: usize = SHAPE[3];
}

/// The variational parameters of one source plus its anchor position.
///
/// `base_pos` is the initialization position; `params[U]` is the offset
/// from it in arcseconds, so a freshly initialized source has `u = 0`
/// and well-scaled position steps.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceParams {
    /// Survey-unique source identifier.
    pub id: u64,
    /// Anchor sky position (from the initialization catalog).
    pub base_pos: SkyCoord,
    /// The 44 unconstrained parameters.
    pub params: [f64; NUM_PARAMS],
}

#[inline]
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

impl SourceParams {
    /// Initialize from an existing catalog entry (the paper's task
    /// descriptions carry initial values from a prior catalog, §IV-A).
    pub fn init_from_entry(entry: &CatalogEntry) -> SourceParams {
        let mut p = [0.0; NUM_PARAMS];
        p[ids::U_LSD[0]] = (0.15_f64).ln();
        p[ids::U_LSD[1]] = (0.15_f64).ln();
        // Mild confidence in the initial classification.
        let a0 = if entry.is_star() { 0.7 } else { -0.7 };
        p[ids::A[0]] = a0;
        p[ids::A[1]] = -a0;
        let ln_flux = entry.flux_r_nmgy.max(1e-3).ln();
        for t in 0..NUM_TYPES {
            p[ids::r_mu(t)] = ln_flux;
            p[ids::r_lsd(t)] = (0.25_f64).ln();
            for i in 0..NUM_COLORS {
                p[ids::c_mean(t, i)] = entry.colors[i];
                p[ids::c_lvar(t, i)] = (0.09_f64).ln();
            }
            for k in 0..K_COLOR {
                p[ids::kappa(t, k)] = 0.0;
            }
        }
        p[ids::FRAC_DEV] = logit(entry.shape.frac_dev);
        p[ids::AXIS] = logit(entry.shape.axis_ratio);
        p[ids::ANGLE] = entry.shape.angle_rad;
        p[ids::LN_RADIUS] = entry.shape.radius_arcsec.max(0.05).ln();
        for &i in &ids::SHAPE_LSD {
            p[i] = (0.15_f64).ln();
        }
        SourceParams {
            id: entry.id,
            base_pos: entry.pos,
            params: p,
        }
    }

    /// Current sky position (anchor + offset).
    pub fn position(&self) -> SkyCoord {
        SkyCoord::new(
            self.base_pos.ra + self.params[ids::U[0]] / 3600.0,
            self.base_pos.dec + self.params[ids::U[1]] / 3600.0,
        )
    }

    /// q(a = star).
    pub fn star_prob(&self) -> f64 {
        sigmoid(self.params[ids::A[0]] - self.params[ids::A[1]])
    }

    /// Type probabilities [star, galaxy].
    pub fn type_probs(&self) -> [f64; 2] {
        let s = self.star_prob();
        [s, 1.0 - s]
    }

    /// Posterior mean reference-band flux for type `t`:
    /// `E[lognormal] = exp(μ + σ²/2)`.
    pub fn flux_mean(&self, t: usize) -> f64 {
        let mu = self.params[ids::r_mu(t)];
        let sd = self.params[ids::r_lsd(t)].exp();
        (mu + 0.5 * sd * sd).exp()
    }

    /// Posterior sd of reference-band flux for type `t`.
    pub fn flux_sd(&self, t: usize) -> f64 {
        let mu = self.params[ids::r_mu(t)];
        let v = (2.0 * self.params[ids::r_lsd(t)]).exp();
        let m = (mu + 0.5 * v).exp();
        (((v).exp() - 1.0).max(0.0)).sqrt() * m
    }

    /// Galaxy shape point estimates from the unconstrained block.
    pub fn shape(&self) -> GalaxyShape {
        GalaxyShape {
            frac_dev: sigmoid(self.params[ids::FRAC_DEV]),
            axis_ratio: sigmoid(self.params[ids::AXIS]).clamp(0.02, 1.0),
            angle_rad: self.params[ids::ANGLE].rem_euclid(std::f64::consts::PI),
            radius_arcsec: self.params[ids::LN_RADIUS].exp(),
        }
    }

    /// Most probable source type.
    pub fn map_type(&self) -> SourceType {
        if self.star_prob() >= 0.5 {
            SourceType::Star
        } else {
            SourceType::Galaxy
        }
    }

    /// Posterior *median* reference-band flux for type `t`:
    /// `exp(μ)`. The median is the optimal point estimate under
    /// absolute-magnitude loss (what Table II scores); the mean
    /// `exp(μ + σ²/2)` would carry an `e^{σ²/2}` bias for faint
    /// sources whose posterior log-flux sd is large.
    pub fn flux_median(&self, t: usize) -> f64 {
        self.params[ids::r_mu(t)].exp()
    }

    /// Collapse the variational posterior into a point-estimate catalog
    /// entry: MAP type, posterior-median flux, posterior-mean colors.
    pub fn to_entry(&self) -> CatalogEntry {
        let t = usize::from(self.map_type() == SourceType::Galaxy);
        let mut colors = [0.0; NUM_COLORS];
        for (i, c) in colors.iter_mut().enumerate() {
            *c = self.params[ids::c_mean(t, i)];
        }
        CatalogEntry {
            id: self.id,
            pos: self.position(),
            source_type: self.map_type(),
            flux_r_nmgy: self.flux_median(t),
            colors,
            shape: self.shape(),
        }
    }

    /// Posterior uncertainty summary — the paper's headline qualitative
    /// advantage over Photo (§VIII): per-source class probability plus
    /// brightness/color standard deviations.
    pub fn uncertainty(&self) -> Uncertainty {
        let t = usize::from(self.map_type() == SourceType::Galaxy);
        let mut color_sd = [0.0; NUM_COLORS];
        for (i, c) in color_sd.iter_mut().enumerate() {
            *c = (0.5 * self.params[ids::c_lvar(t, i)]).exp();
        }
        Uncertainty {
            star_prob: self.star_prob(),
            flux_sd_nmgy: self.flux_sd(t),
            color_sd,
            position_sd_arcsec: [
                self.params[ids::U_LSD[0]].exp(),
                self.params[ids::U_LSD[1]].exp(),
            ],
        }
    }
}

/// Posterior uncertainty report for one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uncertainty {
    /// Posterior probability the source is a star.
    pub star_prob: f64,
    /// Posterior sd of the reference-band flux.
    pub flux_sd_nmgy: f64,
    /// Posterior sd of each color (MAP type).
    pub color_sd: [f64; NUM_COLORS],
    /// Posterior sd of position (arcsec per axis).
    pub position_sd_arcsec: [f64; 2],
}

/// Per-band flux coefficients: `ln ℓ_b = ln r + Σᵢ coef[b][i]·cᵢ`.
/// Walking from the reference band (r): u needs −c₀−c₁, g needs −c₁,
/// i needs +c₂, z needs +c₂+c₃.
pub const BAND_COLOR_COEF: [[f64; NUM_COLORS]; 5] = [
    [-1.0, -1.0, 0.0, 0.0], // u
    [0.0, -1.0, 0.0, 0.0],  // g
    [0.0, 0.0, 0.0, 0.0],   // r (reference)
    [0.0, 0.0, 1.0, 0.0],   // i
    [0.0, 0.0, 1.0, 1.0],   // z
];

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::{fluxes_from_colors, REFERENCE_BAND};

    fn star_entry() -> CatalogEntry {
        CatalogEntry {
            id: 9,
            pos: SkyCoord::new(10.0, -1.0),
            source_type: SourceType::Star,
            flux_r_nmgy: 5.0,
            colors: [0.4, 0.2, 0.1, 0.05],
            shape: GalaxyShape::round_disk(1.2),
        }
    }

    #[test]
    fn layout_is_dense_and_disjoint() {
        // Every index 0..44 must be covered exactly once.
        let mut seen = [0u8; NUM_PARAMS];
        for i in ids::U.into_iter().chain(ids::U_LSD).chain(ids::A) {
            seen[i] += 1;
        }
        for t in 0..NUM_TYPES {
            seen[ids::r_mu(t)] += 1;
            seen[ids::r_lsd(t)] += 1;
            for i in 0..NUM_COLORS {
                seen[ids::c_mean(t, i)] += 1;
                seen[ids::c_lvar(t, i)] += 1;
            }
            for k in 0..K_COLOR {
                seen[ids::kappa(t, k)] += 1;
            }
        }
        for i in ids::SHAPE.into_iter().chain(ids::SHAPE_LSD) {
            seen[i] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "layout covers: {seen:?}");
    }

    #[test]
    fn init_roundtrips_to_entry() {
        let entry = star_entry();
        let sp = SourceParams::init_from_entry(&entry);
        let back = sp.to_entry();
        assert_eq!(back.source_type, SourceType::Star);
        assert!(back.pos.sep_arcsec(&entry.pos) < 1e-9);
        // Flux mean: exp(ln f + σ²/2) with σ = 0.25 → 3.2% high.
        assert!((back.flux_r_nmgy / entry.flux_r_nmgy - 1.0).abs() < 0.04);
        for (a, b) in back.colors.iter().zip(&entry.colors) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn star_prob_follows_logits() {
        let mut sp = SourceParams::init_from_entry(&star_entry());
        assert!(sp.star_prob() > 0.5);
        sp.params[ids::A[0]] = -3.0;
        sp.params[ids::A[1]] = 3.0;
        assert!(sp.star_prob() < 0.01);
        assert_eq!(sp.map_type(), SourceType::Galaxy);
        let probs = sp.type_probs();
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn position_offset_in_arcsec() {
        let mut sp = SourceParams::init_from_entry(&star_entry());
        sp.params[ids::U[0]] = 3.6; // 3.6 arcsec = 0.001 deg
        let p = sp.position();
        assert!((p.ra - 10.001).abs() < 1e-12);
        assert!((p.dec - -1.0).abs() < 1e-12);
    }

    #[test]
    fn shape_transforms_are_inverse_of_init() {
        let mut entry = star_entry();
        entry.source_type = SourceType::Galaxy;
        entry.shape = GalaxyShape {
            frac_dev: 0.3,
            axis_ratio: 0.6,
            angle_rad: 1.1,
            radius_arcsec: 2.5,
        };
        let sp = SourceParams::init_from_entry(&entry);
        let s = sp.shape();
        assert!((s.frac_dev - 0.3).abs() < 1e-9);
        assert!((s.axis_ratio - 0.6).abs() < 1e-9);
        assert!((s.angle_rad - 1.1).abs() < 1e-12);
        assert!((s.radius_arcsec - 2.5).abs() < 1e-9);
    }

    #[test]
    fn band_coefs_match_flux_walk() {
        // BAND_COLOR_COEF must agree with fluxes_from_colors.
        let flux_r = 2.0;
        let colors = [0.3, -0.1, 0.2, 0.4];
        let fluxes = fluxes_from_colors(flux_r, &colors);
        for b in 0..5 {
            let ln_f = flux_r.ln()
                + BAND_COLOR_COEF[b]
                    .iter()
                    .zip(&colors)
                    .map(|(&c, &x)| c * x)
                    .sum::<f64>();
            assert!(
                (ln_f.exp() - fluxes[b]).abs() < 1e-12,
                "band {b}: {} vs {}",
                ln_f.exp(),
                fluxes[b]
            );
        }
        assert_eq!(BAND_COLOR_COEF[REFERENCE_BAND], [0.0; 4]);
    }

    #[test]
    fn uncertainty_fields_positive() {
        let sp = SourceParams::init_from_entry(&star_entry());
        let u = sp.uncertainty();
        assert!(u.flux_sd_nmgy > 0.0);
        assert!(u.color_sd.iter().all(|&s| s > 0.0));
        assert!((u.position_sd_arcsec[0] - 0.15).abs() < 1e-9);
    }
}
