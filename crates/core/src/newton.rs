//! Newton's method with a trust region (paper §IV-D).
//!
//! Each light source's 44 parameters are optimized "to machine
//! tolerance by Newton's method, with step sizes controlled by a trust
//! region … the trust region ensures convergence to a stationary point
//! from any starting point even though the objective function is, in
//! general, nonconvex." Exact Hessians (not L-BFGS) are the paper's
//! headline optimization choice: 1–2 orders of magnitude fewer
//! iterations (§IV-D) at ~3× the per-iteration cost — our
//! `bench/ablation_newton` measures the same trade-off.

use celeste_linalg::{solve_tr_subproblem, vecops, Mat};

/// An objective to *maximize*: full evaluation (value + gradient +
/// Hessian) and cheap value-only evaluation for trial points.
pub trait Objective {
    /// Dimension of the parameter vector.
    fn dim(&self) -> usize;
    /// Value, gradient, Hessian at `x`.
    fn eval(&self, x: &[f64]) -> (f64, Vec<f64>, Mat);
    /// Value only (used for trust-region ratio tests).
    fn value(&self, x: &[f64]) -> f64;
}

/// Trust-region Newton configuration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonConfig {
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Stop when the gradient max-norm falls below this.
    pub grad_tol: f64,
    /// Stop when an accepted step improves the objective by less.
    pub f_tol: f64,
    /// Initial trust radius.
    pub initial_radius: f64,
    /// Trust radius ceiling.
    pub max_radius: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        NewtonConfig {
            max_iters: 50,
            grad_tol: 1e-6,
            f_tol: 1e-9,
            initial_radius: 1.0,
            max_radius: 100.0,
        }
    }
}

/// Outcome statistics of one maximization.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewtonStats {
    /// Newton iterations performed.
    pub iterations: usize,
    /// Full (value+grad+Hessian) evaluations.
    pub full_evals: usize,
    /// Value-only evaluations.
    pub value_evals: usize,
    /// Final objective value.
    pub value: f64,
    /// Final gradient max-norm.
    pub grad_norm: f64,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// Maximize `obj` starting from `x` (updated in place).
pub fn maximize(obj: &impl Objective, x: &mut [f64], cfg: &NewtonConfig) -> NewtonStats {
    let n = obj.dim();
    assert_eq!(x.len(), n);
    let mut stats = NewtonStats::default();
    let mut radius = cfg.initial_radius;

    let (mut f, mut grad, mut hess) = obj.eval(x);
    stats.full_evals += 1;
    for iter in 0..cfg.max_iters {
        stats.iterations = iter;
        stats.grad_norm = vecops::max_abs(&grad);

        // Maximization: minimize the negated quadratic model.
        let mut neg_h = hess.clone();
        neg_h.scale(-1.0);
        let neg_g: Vec<f64> = grad.iter().map(|g| -g).collect();
        let sol = solve_tr_subproblem(&neg_h, &neg_g, radius);
        // Converged only when both the gradient is flat AND the model
        // promises nothing — a zero gradient alone can be a saddle,
        // which the TR step escapes along negative curvature.
        if stats.grad_norm < cfg.grad_tol
            && sol.predicted_reduction <= cfg.f_tol * (1.0 + f.abs())
        {
            stats.converged = true;
            break;
        }
        if sol.predicted_reduction <= 0.0 {
            // Numerically flat model: nothing left to gain.
            stats.converged = true;
            break;
        }

        let x_trial: Vec<f64> = x.iter().zip(&sol.step).map(|(a, b)| a + b).collect();
        let f_trial = obj.value(&x_trial);
        stats.value_evals += 1;
        let rho = (f_trial - f) / sol.predicted_reduction;

        if rho > 1e-4 && f_trial.is_finite() {
            // Accept.
            let improvement = f_trial - f;
            x.copy_from_slice(&x_trial);
            let refresh = obj.eval(x);
            stats.full_evals += 1;
            f = refresh.0;
            grad = refresh.1;
            hess = refresh.2;
            if rho > 0.75 && sol.on_boundary {
                radius = (2.0 * radius).min(cfg.max_radius);
            } else if rho < 0.25 {
                radius *= 0.5;
            }
            if improvement < cfg.f_tol * (1.0 + f.abs()) {
                stats.converged = true;
                break;
            }
        } else {
            // Reject and shrink.
            radius = 0.25 * vecops::norm2(&sol.step);
            if radius < 1e-12 {
                stats.converged = true;
                break;
            }
        }
    }
    stats.value = f;
    stats.grad_norm = vecops::max_abs(&grad);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concave quadratic with known maximizer.
    struct Quadratic {
        center: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn eval(&self, x: &[f64]) -> (f64, Vec<f64>, Mat) {
            let n = x.len();
            let scale: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let mut v = 0.0;
            let mut g = vec![0.0; n];
            let mut h = Mat::zeros(n, n);
            for i in 0..n {
                let d = x[i] - self.center[i];
                v -= 0.5 * scale[i] * d * d;
                g[i] = -scale[i] * d;
                h[(i, i)] = -scale[i];
            }
            (v, g, h)
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.eval(x).0
        }
    }

    /// Negated Rosenbrock: nonconvex, curved valley, max at (1,1).
    struct NegRosenbrock;

    impl Objective for NegRosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&self, x: &[f64]) -> (f64, Vec<f64>, Mat) {
            let (a, b) = (x[0], x[1]);
            let v = -((1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2));
            let g = vec![
                -(-2.0 * (1.0 - a) - 400.0 * a * (b - a * a)),
                -(200.0 * (b - a * a)),
            ];
            let mut h = Mat::zeros(2, 2);
            h[(0, 0)] = -(2.0 - 400.0 * (b - 3.0 * a * a));
            h[(0, 1)] = 400.0 * a;
            h[(1, 0)] = 400.0 * a;
            h[(1, 1)] = -200.0;
            (v, g, h)
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.eval(x).0
        }
    }

    #[test]
    fn quadratic_converges_in_one_accepted_step() {
        let obj = Quadratic { center: vec![3.0, -1.0, 0.5] };
        let mut x = vec![0.0; 3];
        let stats = maximize(&obj, &mut x, &NewtonConfig { initial_radius: 50.0, ..Default::default() });
        assert!(stats.converged);
        assert!(stats.iterations <= 2, "iterations {}", stats.iterations);
        for (xi, ci) in x.iter().zip(&obj.center) {
            assert!((xi - ci).abs() < 1e-8);
        }
    }

    #[test]
    fn rosenbrock_reaches_global_max() {
        let mut x = vec![-1.2, 1.0];
        let stats = maximize(&NegRosenbrock, &mut x, &NewtonConfig {
            max_iters: 200,
            ..Default::default()
        });
        assert!(stats.converged, "stats {stats:?}");
        assert!((x[0] - 1.0).abs() < 1e-6, "x {x:?}");
        assert!((x[1] - 1.0).abs() < 1e-6);
        // Newton on Rosenbrock: tens of iterations, not thousands
        // (the paper's pitch for exact Hessians, §IV-D).
        assert!(stats.iterations < 100);
    }

    #[test]
    fn respects_gradient_tolerance_immediately_at_optimum() {
        let obj = Quadratic { center: vec![2.0] };
        let mut x = vec![2.0];
        let stats = maximize(&obj, &mut x, &NewtonConfig::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn saddle_point_escapes_via_negative_curvature() {
        // f = x² − y² has a saddle at 0; maximization should push |y| up
        // — but the TR solver must at least move off the saddle.
        struct Saddle;
        impl Objective for Saddle {
            fn dim(&self) -> usize {
                2
            }
            fn eval(&self, x: &[f64]) -> (f64, Vec<f64>, Mat) {
                let v = -(x[0] * x[0]) + x[1] * x[1] - 0.01 * x[1].powi(4);
                let g = vec![-2.0 * x[0], 2.0 * x[1] - 0.04 * x[1].powi(3)];
                let mut h = Mat::zeros(2, 2);
                h[(0, 0)] = -2.0;
                h[(1, 1)] = 2.0 - 0.12 * x[1] * x[1];
                (v, g, h)
            }
            fn value(&self, x: &[f64]) -> f64 {
                self.eval(x).0
            }
        }
        let mut x = vec![0.0, 0.0]; // exact saddle, zero gradient
        let stats = maximize(&Saddle, &mut x, &NewtonConfig::default());
        assert!(x[1].abs() > 1.0, "failed to escape saddle: {x:?}");
        assert!(stats.value > 0.0);
    }
}
