//! Newton's method with a trust region (paper §IV-D).
//!
//! Each light source's 44 parameters are optimized "to machine
//! tolerance by Newton's method, with step sizes controlled by a trust
//! region … the trust region ensures convergence to a stationary point
//! from any starting point even though the objective function is, in
//! general, nonconvex." Exact Hessians (not L-BFGS) are the paper's
//! headline optimization choice: 1–2 orders of magnitude fewer
//! iterations (§IV-D) at ~3× the per-iteration cost — our
//! `bench/ablation_newton` measures the same trade-off.
//!
//! The evaluation API is workspace-based: [`Objective::eval_into`]
//! writes value/gradient/Hessian into an [`EvalWorkspace`] the caller
//! owns, so the optimizer's inner loop performs no heap allocation
//! after the workspace is built (the paper's threads "spend their
//! time in arithmetic, not allocation"). [`maximize`] builds one
//! workspace up front; long-lived workers keep their own and call
//! [`maximize_with`].

use celeste_linalg::{solve_tr_subproblem_with, vecops, Mat, TrWorkspace};

thread_local! {
    /// Counts [`EvalWorkspace`] constructions on this thread, so tests
    /// can assert that hot loops reuse workspaces instead of
    /// re-allocating them (thread-local: parallel test runners and
    /// worker pools don't perturb each other's counts).
    static WORKSPACE_BUILDS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of `EvalWorkspace`s constructed so far on this thread.
pub fn workspace_builds() -> u64 {
    WORKSPACE_BUILDS.with(|c| c.get())
}

/// Caller-owned evaluation buffers: the objective writes its value,
/// gradient, and Hessian here, plus whatever objective-specific
/// scratch `S` it needs (e.g. prepared per-image appearance mixtures
/// for the ELBO). Build once, reuse for every evaluation.
pub struct EvalWorkspace<S = ()> {
    /// Objective value at the last evaluated point.
    pub value: f64,
    /// Gradient (length = `dim`).
    pub grad: Vec<f64>,
    /// Hessian (`dim × dim`).
    pub hess: Mat,
    /// Objective-specific scratch, reused across evaluations.
    pub scratch: S,
    // Solver-side buffers (negated model, trial point, trust-region
    // solve storage incl. the Jacobi eigen workspace), reused by
    // `maximize_with` across iterations and trust-region trials.
    neg_grad: Vec<f64>,
    neg_hess: Mat,
    x_trial: Vec<f64>,
    tr: TrWorkspace,
}

impl<S: Default> EvalWorkspace<S> {
    /// Allocate all buffers for a `dim`-dimensional objective.
    pub fn new(dim: usize) -> Self {
        WORKSPACE_BUILDS.with(|c| c.set(c.get() + 1));
        EvalWorkspace {
            value: 0.0,
            grad: vec![0.0; dim],
            hess: Mat::zeros(dim, dim),
            scratch: S::default(),
            neg_grad: vec![0.0; dim],
            neg_hess: Mat::zeros(dim, dim),
            x_trial: vec![0.0; dim],
            tr: TrWorkspace::new(dim),
        }
    }
}

impl<S> EvalWorkspace<S> {
    /// Dimension of the gradient/Hessian buffers.
    pub fn dim(&self) -> usize {
        self.grad.len()
    }

    /// Zero the value/gradient/Hessian accumulators (objectives call
    /// this at the top of `eval_into` before accumulating terms).
    pub fn reset_accumulators(&mut self) {
        self.value = 0.0;
        self.grad.fill(0.0);
        self.hess.fill_zero();
    }

    /// Disjoint mutable borrows of (gradient, Hessian, scratch), for
    /// objectives that accumulate into the first two while reading
    /// and updating the third.
    pub fn split_mut(&mut self) -> (&mut Vec<f64>, &mut Mat, &mut S) {
        (&mut self.grad, &mut self.hess, &mut self.scratch)
    }
}

/// An objective to *maximize*: full evaluation (value + gradient +
/// Hessian) into a caller-owned workspace, and cheap value-only
/// evaluation for trial points.
pub trait Objective {
    /// Objective-specific scratch carried inside the workspace.
    type Scratch: Default;

    /// Dimension of the parameter vector.
    fn dim(&self) -> usize;

    /// Write value, gradient, Hessian at `x` into `ws`
    /// (`ws.value`, `ws.grad`, `ws.hess`). Must not allocate on
    /// repeat calls with the same workspace.
    fn eval_into(&self, x: &[f64], ws: &mut EvalWorkspace<Self::Scratch>);

    /// Value only (used for trust-region ratio tests).
    fn value(&self, x: &[f64]) -> f64;

    /// Value only, with caller-owned scratch: the allocation-free form
    /// the optimizer's trial evaluations use. The default forwards to
    /// [`Objective::value`]; objectives whose value path needs scratch
    /// (prepared mixtures etc.) override it so a whole
    /// [`maximize_with`] run touches no heap.
    fn value_into(&self, x: &[f64], _scratch: &mut Self::Scratch) -> f64 {
        self.value(x)
    }

    /// Compatibility shim over [`Objective::eval_into`]: allocates a
    /// fresh workspace per call. Prefer `eval_into` on hot paths.
    fn eval(&self, x: &[f64]) -> (f64, Vec<f64>, Mat) {
        let mut ws = EvalWorkspace::<Self::Scratch>::new(self.dim());
        self.eval_into(x, &mut ws);
        (ws.value, ws.grad, ws.hess)
    }
}

/// Trust-region Newton configuration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonConfig {
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Stop when the gradient max-norm falls below this.
    pub grad_tol: f64,
    /// Stop when an accepted step improves the objective by less.
    pub f_tol: f64,
    /// Initial trust radius.
    pub initial_radius: f64,
    /// Trust radius ceiling.
    pub max_radius: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        NewtonConfig {
            max_iters: 50,
            grad_tol: 1e-6,
            f_tol: 1e-9,
            initial_radius: 1.0,
            max_radius: 100.0,
        }
    }
}

/// Outcome statistics of one maximization.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewtonStats {
    /// Newton iterations performed.
    pub iterations: usize,
    /// Full (value+grad+Hessian) evaluations.
    pub full_evals: usize,
    /// Value-only evaluations.
    pub value_evals: usize,
    /// Final objective value.
    pub value: f64,
    /// Final gradient max-norm.
    pub grad_norm: f64,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// Maximize `obj` starting from `x` (updated in place), allocating one
/// workspace for the whole run. Long-lived callers (worker pools)
/// should hold their own workspace and use [`maximize_with`].
pub fn maximize<O: Objective>(obj: &O, x: &mut [f64], cfg: &NewtonConfig) -> NewtonStats {
    let mut ws = EvalWorkspace::<O::Scratch>::new(obj.dim());
    maximize_with(obj, x, cfg, &mut ws)
}

/// Maximize `obj` starting from `x` (updated in place), reusing the
/// caller's workspace. The whole run — every full evaluation, every
/// trust-region solve (including its Jacobi eigendecomposition), and
/// every trial-point value — goes through workspace-owned buffers, so
/// a warmed-up workspace makes the entire call heap-allocation-free
/// (enforced by the counting-allocator test in
/// `crates/core/tests/hotpath.rs`).
pub fn maximize_with<O: Objective>(
    obj: &O,
    x: &mut [f64],
    cfg: &NewtonConfig,
    ws: &mut EvalWorkspace<O::Scratch>,
) -> NewtonStats {
    let n = obj.dim();
    assert_eq!(x.len(), n);
    assert_eq!(ws.dim(), n, "workspace dimension mismatch");
    let mut stats = NewtonStats::default();
    let mut radius = cfg.initial_radius;

    obj.eval_into(x, ws);
    stats.full_evals += 1;
    for iter in 0..cfg.max_iters {
        stats.iterations = iter;
        stats.grad_norm = vecops::max_abs(&ws.grad);

        // Maximization: minimize the negated quadratic model. The
        // negated copies and the trust-region solver's scratch (eigen
        // workspace, eigenbasis buffers, step) all live in the
        // workspace.
        ws.neg_hess.copy_from(&ws.hess);
        ws.neg_hess.scale(-1.0);
        for (ng, &g) in ws.neg_grad.iter_mut().zip(ws.grad.iter()) {
            *ng = -g;
        }
        let sol = solve_tr_subproblem_with(&ws.neg_hess, &ws.neg_grad, radius, &mut ws.tr);
        // Converged only when both the gradient is flat AND the model
        // promises nothing — a zero gradient alone can be a saddle,
        // which the TR step escapes along negative curvature.
        if stats.grad_norm < cfg.grad_tol
            && sol.predicted_reduction <= cfg.f_tol * (1.0 + ws.value.abs())
        {
            stats.converged = true;
            break;
        }
        if sol.predicted_reduction <= 0.0 {
            // Numerically flat model: nothing left to gain.
            stats.converged = true;
            break;
        }

        let step_norm = vecops::norm2(ws.tr.step());
        for ((t, &xi), &si) in ws.x_trial.iter_mut().zip(x.iter()).zip(ws.tr.step()) {
            *t = xi + si;
        }
        let f_trial = obj.value_into(&ws.x_trial, &mut ws.scratch);
        stats.value_evals += 1;
        let f = ws.value;
        let rho = (f_trial - f) / sol.predicted_reduction;

        if rho > 1e-4 && f_trial.is_finite() {
            // Accept.
            let improvement = f_trial - f;
            x.copy_from_slice(&ws.x_trial);
            obj.eval_into(x, ws);
            stats.full_evals += 1;
            if rho > 0.75 && sol.on_boundary {
                radius = (2.0 * radius).min(cfg.max_radius);
            } else if rho < 0.25 {
                radius *= 0.5;
            }
            if improvement < cfg.f_tol * (1.0 + ws.value.abs()) {
                stats.converged = true;
                break;
            }
        } else {
            // Reject and shrink.
            radius = 0.25 * step_norm;
            if radius < 1e-12 {
                stats.converged = true;
                break;
            }
        }
    }
    stats.value = ws.value;
    stats.grad_norm = vecops::max_abs(&ws.grad);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Concave quadratic with known maximizer.
    struct Quadratic {
        center: Vec<f64>,
    }

    impl Objective for Quadratic {
        type Scratch = ();
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn eval_into(&self, x: &[f64], ws: &mut EvalWorkspace) {
            ws.reset_accumulators();
            let n = x.len();
            for i in 0..n {
                let scale = 1.0 + i as f64;
                let d = x[i] - self.center[i];
                ws.value -= 0.5 * scale * d * d;
                ws.grad[i] = -scale * d;
                ws.hess[(i, i)] = -scale;
            }
        }
        fn value(&self, x: &[f64]) -> f64 {
            let mut v = 0.0;
            for i in 0..x.len() {
                let d = x[i] - self.center[i];
                v -= 0.5 * (1.0 + i as f64) * d * d;
            }
            v
        }
    }

    /// Negated Rosenbrock: nonconvex, curved valley, max at (1,1).
    struct NegRosenbrock;

    impl Objective for NegRosenbrock {
        type Scratch = ();
        fn dim(&self) -> usize {
            2
        }
        fn eval_into(&self, x: &[f64], ws: &mut EvalWorkspace) {
            ws.reset_accumulators();
            let (a, b) = (x[0], x[1]);
            ws.value = -((1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2));
            ws.grad[0] = -(-2.0 * (1.0 - a) - 400.0 * a * (b - a * a));
            ws.grad[1] = -(200.0 * (b - a * a));
            ws.hess[(0, 0)] = -(2.0 - 400.0 * (b - 3.0 * a * a));
            ws.hess[(0, 1)] = 400.0 * a;
            ws.hess[(1, 0)] = 400.0 * a;
            ws.hess[(1, 1)] = -200.0;
        }
        fn value(&self, x: &[f64]) -> f64 {
            let (a, b) = (x[0], x[1]);
            -((1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2))
        }
    }

    #[test]
    fn quadratic_converges_in_one_accepted_step() {
        let obj = Quadratic {
            center: vec![3.0, -1.0, 0.5],
        };
        let mut x = vec![0.0; 3];
        let stats = maximize(
            &obj,
            &mut x,
            &NewtonConfig {
                initial_radius: 50.0,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        assert!(stats.iterations <= 2, "iterations {}", stats.iterations);
        for (xi, ci) in x.iter().zip(&obj.center) {
            assert!((xi - ci).abs() < 1e-8);
        }
    }

    #[test]
    fn rosenbrock_reaches_global_max() {
        let mut x = vec![-1.2, 1.0];
        let stats = maximize(
            &NegRosenbrock,
            &mut x,
            &NewtonConfig {
                max_iters: 200,
                ..Default::default()
            },
        );
        assert!(stats.converged, "stats {stats:?}");
        assert!((x[0] - 1.0).abs() < 1e-6, "x {x:?}");
        assert!((x[1] - 1.0).abs() < 1e-6);
        // Newton on Rosenbrock: tens of iterations, not thousands
        // (the paper's pitch for exact Hessians, §IV-D).
        assert!(stats.iterations < 100);
    }

    #[test]
    fn respects_gradient_tolerance_immediately_at_optimum() {
        let obj = Quadratic { center: vec![2.0] };
        let mut x = vec![2.0];
        let stats = maximize(&obj, &mut x, &NewtonConfig::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn eval_shim_matches_eval_into() {
        let obj = Quadratic {
            center: vec![1.0, 2.0],
        };
        let x = [0.5, -0.5];
        let (v, g, h) = obj.eval(&x);
        let mut ws = EvalWorkspace::new(2);
        obj.eval_into(&x, &mut ws);
        assert_eq!(v, ws.value);
        assert_eq!(g, ws.grad);
        assert_eq!(h.as_slice(), ws.hess.as_slice());
    }

    #[test]
    fn maximize_with_reuses_workspace_across_calls() {
        let obj = NegRosenbrock;
        let mut ws = EvalWorkspace::new(2);
        let before = workspace_builds();
        for seed in 0..4 {
            let mut x = vec![-1.2 + 0.1 * seed as f64, 1.0];
            maximize_with(
                &obj,
                &mut x,
                &NewtonConfig {
                    max_iters: 200,
                    ..Default::default()
                },
                &mut ws,
            );
            assert!((x[0] - 1.0).abs() < 1e-6);
        }
        assert_eq!(
            workspace_builds(),
            before,
            "maximize_with must not build workspaces"
        );
    }

    #[test]
    fn saddle_point_escapes_via_negative_curvature() {
        // f = x² − y² has a saddle at 0; maximization should push |y| up
        // — but the TR solver must at least move off the saddle.
        struct Saddle;
        impl Objective for Saddle {
            type Scratch = ();
            fn dim(&self) -> usize {
                2
            }
            fn eval_into(&self, x: &[f64], ws: &mut EvalWorkspace) {
                ws.reset_accumulators();
                ws.value = -(x[0] * x[0]) + x[1] * x[1] - 0.01 * x[1].powi(4);
                ws.grad[0] = -2.0 * x[0];
                ws.grad[1] = 2.0 * x[1] - 0.04 * x[1].powi(3);
                ws.hess[(0, 0)] = -2.0;
                ws.hess[(1, 1)] = 2.0 - 0.12 * x[1] * x[1];
            }
            fn value(&self, x: &[f64]) -> f64 {
                self.eval(x).0
            }
        }
        let mut x = vec![0.0, 0.0]; // exact saddle, zero gradient
        let stats = maximize(&Saddle, &mut x, &NewtonConfig::default());
        assert!(x[1].abs() > 1.0, "failed to escape saddle: {x:?}");
        assert!(stats.value > 0.0);
    }
}
