//! The pre-refactor dense likelihood accumulation: the parity
//! reference and benchmark baseline for the packed-triangle kernel in
//! [`crate::likelihood`]. It allocates its NL×NL scratch per call and
//! fills every slot per pixel — deliberately kept out of
//! `likelihood.rs` so the kernel file stays allocation-free (enforced
//! by `celeste_lint`); never call this on a hot path.

use crate::bvn::{PreparedGalaxy, PreparedStar, GEO};
use crate::fluxdist::{flux_moments, type_weight, NF};
use crate::likelihood::{cf, galaxy_geo, lik_param_ids, ImageBlock, CA, CG, NL, RATE_FLOOR};
use crate::params::{ids, NUM_PARAMS};
use celeste_linalg::Mat;

/// The pre-refactor dense accumulation: fills all NL×NL slots of the
/// compact Hessian per pixel. Kept as the parity reference for the
/// packed-triangle kernel and as the benchmark baseline — do not use
/// on hot paths.
pub fn add_likelihood_dense(
    params: &[f64; NUM_PARAMS],
    blocks: &[ImageBlock],
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    let map = lik_param_ids();
    let mut value = 0.0;
    let mut g28 = [0.0; NL];
    let mut h28 = vec![[0.0; NL]; NL];

    let u = [params[ids::U[0]], params[ids::U[1]]];
    let w = [type_weight(params, 0), type_weight(params, 1)];

    for block in blocks {
        let star = PreparedStar::new(&block.psf, block.center0, u, &block.jac);
        let gal = PreparedGalaxy::new(
            &block.psf,
            &galaxy_geo(params),
            block.center0,
            u,
            &block.jac,
        );
        let moments = [
            flux_moments(params, 0, block.band),
            flux_moments(params, 1, block.band),
        ];
        crate::flops::record_visits(block.pixels.len() as u64);

        for pix in &block.pixels {
            let geo = [
                star.eval_reference(pix.px, pix.py),
                gal.eval_reference(pix.px, pix.py),
            ];

            // Values.
            let iota = block.iota;
            let iota2 = iota * iota;
            let mut s = 0.0;
            let mut q = 0.0;
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                s += iota * w[t].val * l.val * geo[t].val;
                q += iota2 * w[t].val * s2.val * geo[t].val * geo[t].val;
            }
            let e = (pix.eps + s).max(RATE_FLOOR);
            let v = (q - s * s).max(0.0);
            let e2 = e * e;
            value += pix.x * (e.ln() - v / (2.0 * e2)) - e;

            // φ partials.
            let phi_e = pix.x / e + pix.x * v / (e2 * e) - 1.0;
            let phi_v = -pix.x / (2.0 * e2);
            let phi_ee = -pix.x / e2 - 3.0 * pix.x * v / (e2 * e2);
            let phi_ev = pix.x / (e2 * e);

            // Dense ∇S and ∇Q over the 28 compact slots.
            let mut ds = [0.0; NL];
            let mut dq = [0.0; NL];
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                let gt = &geo[t];
                let g2 = gt.val * gt.val;
                // A slots.
                for k in 0..2 {
                    ds[CA[k]] += iota * l.val * gt.val * w[t].grad[k];
                    dq[CA[k]] += iota2 * s2.val * g2 * w[t].grad[k];
                }
                // Flux slots.
                let cfi = cf(t);
                for c in 0..NF {
                    ds[cfi[c]] += iota * w[t].val * gt.val * l.grad[c];
                    dq[cfi[c]] += iota2 * w[t].val * g2 * s2.grad[c];
                }
                // Geometry slots (star: only u).
                let gdim = if t == 0 { 2 } else { GEO };
                for gslot in 0..gdim {
                    ds[CG[gslot]] += iota * w[t].val * l.val * gt.grad[gslot];
                    dq[CG[gslot]] += iota2 * w[t].val * s2.val * 2.0 * gt.val * gt.grad[gslot];
                }
            }
            let mut dv = [0.0; NL];
            for i in 0..NL {
                dv[i] = dq[i] - 2.0 * s * ds[i];
            }

            // Gradient.
            for i in 0..NL {
                g28[i] += phi_e * ds[i] + phi_v * dv[i];
            }

            // Hessian: block-structured ∇²S (scaled cs) and ∇²Q
            // (scaled phi_v), plus the rank-2 φ chain terms.
            let cs = phi_e - 2.0 * s * phi_v;
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                let gt = &geo[t];
                let g2 = gt.val * gt.val;
                let gdim = if t == 0 { 2 } else { GEO };
                let cfi = cf(t);
                let iw = iota * w[t].val;
                let iw2 = iota2 * w[t].val;

                // A×A.
                for k in 0..2 {
                    for k2 in 0..2 {
                        h28[CA[k]][CA[k2]] += cs * iota * l.val * gt.val * w[t].hess[k][k2]
                            + phi_v * iota2 * s2.val * g2 * w[t].hess[k][k2];
                    }
                }
                // F×F.
                for c in 0..NF {
                    for c2 in 0..NF {
                        h28[cfi[c]][cfi[c2]] +=
                            cs * iw * gt.val * l.hess[c][c2] + phi_v * iw2 * g2 * s2.hess[c][c2];
                    }
                }
                // G×G (G² Hessian: 2(∇G∇Gᵀ + G∇²G)).
                for a in 0..gdim {
                    for b in 0..gdim {
                        let hg2 = 2.0 * (gt.grad[a] * gt.grad[b] + gt.val * gt.hess[a][b]);
                        h28[CG[a]][CG[b]] +=
                            cs * iw * l.val * gt.hess[a][b] + phi_v * iw2 * s2.val * hg2;
                    }
                }
                // A×F (symmetric pair).
                for k in 0..2 {
                    for c in 0..NF {
                        let vs = cs * iota * gt.val * w[t].grad[k] * l.grad[c]
                            + phi_v * iota2 * g2 * w[t].grad[k] * s2.grad[c];
                        h28[CA[k]][cfi[c]] += vs;
                        h28[cfi[c]][CA[k]] += vs;
                    }
                }
                // A×G.
                for k in 0..2 {
                    for a in 0..gdim {
                        let vs = cs * iota * l.val * w[t].grad[k] * gt.grad[a]
                            + phi_v * iota2 * s2.val * w[t].grad[k] * 2.0 * gt.val * gt.grad[a];
                        h28[CA[k]][CG[a]] += vs;
                        h28[CG[a]][CA[k]] += vs;
                    }
                }
                // F×G.
                for c in 0..NF {
                    for a in 0..gdim {
                        let vs = cs * iw * l.grad[c] * gt.grad[a]
                            + phi_v * iw2 * s2.grad[c] * 2.0 * gt.val * gt.grad[a];
                        h28[cfi[c]][CG[a]] += vs;
                        h28[CG[a]][cfi[c]] += vs;
                    }
                }
            }
            // Rank-2 chain terms.
            let a2 = phi_ee - 2.0 * phi_v;
            for i in 0..NL {
                let dsi = ds[i];
                let dvi = dv[i];
                if dsi == 0.0 && dvi == 0.0 {
                    continue;
                }
                let row = &mut h28[i];
                for j in 0..NL {
                    row[j] += a2 * dsi * ds[j] + phi_ev * (dsi * dv[j] + dvi * ds[j]);
                }
            }
        }
    }

    // Scatter compact → 44.
    for i in 0..NL {
        grad[map[i]] += g28[i];
        for j in 0..NL {
            hess[(map[i], map[j])] += h28[i][j];
        }
    }
    value
}
