//! Flux-distribution moments with derivatives.
//!
//! Under the variational family, a source's log band-flux is Gaussian:
//! `ln ℓ_b ~ N(m, v)` with `m = r_mu + Σᵢ coefᵢ(b)·c_meanᵢ` and
//! `v = exp(2·r_lsd) + Σᵢ coefᵢ(b)²·exp(c_lvarᵢ)`. The likelihood needs
//! the first two moments `L = E[ℓ] = exp(m + v/2)` and
//! `S2 = E[ℓ²] = exp(2m + 2v)` together with exact first and second
//! derivatives over the 10-parameter per-type flux block
//! `[r_mu, r_lsd, c_mean×4, c_lvar×4]`.
//!
//! Both moments are `exp(g(θ))` with `g` linear in the means and a sum
//! of exponentials in the log-scales, so `∇L = L·∇g` and
//! `∇²L = L·(∇g∇gᵀ + diag(∂²g))` in closed form.

use crate::params::{ids, BAND_COLOR_COEF};
use celeste_survey::bands::NUM_COLORS;

/// Size of one per-type flux block.
pub const NF: usize = 2 + 2 * NUM_COLORS;

/// Value plus derivatives over the 10 flux parameters of one type.
#[derive(Debug, Clone)]
pub struct FluxMoment {
    pub val: f64,
    pub grad: [f64; NF],
    pub hess: [[f64; NF]; NF],
}

/// Compact flux-block order: [r_mu, r_lsd, c_mean 0..4, c_lvar 0..4].
/// Maps compact flux index → parameter index (44-space) for type `t`.
pub fn flux_param_ids(t: usize) -> [usize; NF] {
    let mut out = [0usize; NF];
    out[0] = ids::r_mu(t);
    out[1] = ids::r_lsd(t);
    for i in 0..NUM_COLORS {
        out[2 + i] = ids::c_mean(t, i);
        out[2 + NUM_COLORS + i] = ids::c_lvar(t, i);
    }
    out
}

fn exp_family(glin: [f64; NF], gdiag: [f64; NF], gval: f64) -> FluxMoment {
    let val = gval.exp();
    let mut grad = [0.0; NF];
    let mut hess = [[0.0; NF]; NF];
    for i in 0..NF {
        grad[i] = val * glin[i];
    }
    for i in 0..NF {
        for j in 0..NF {
            hess[i][j] = val * glin[i] * glin[j];
        }
        hess[i][i] += val * gdiag[i];
    }
    FluxMoment { val, grad, hess }
}

/// Compute `(L, S2)` for type `t` in `band` from the 44-vector.
pub fn flux_moments(params: &[f64; 44], t: usize, band: usize) -> (FluxMoment, FluxMoment) {
    let coef = &BAND_COLOR_COEF[band];
    let r_mu = params[ids::r_mu(t)];
    let r_var = (2.0 * params[ids::r_lsd(t)]).exp();
    let mut m = r_mu;
    let mut v = r_var;
    for i in 0..NUM_COLORS {
        m += coef[i] * params[ids::c_mean(t, i)];
        v += coef[i] * coef[i] * params[ids::c_lvar(t, i)].exp();
    }

    // L = exp(m + v/2)
    let mut gl = [0.0; NF];
    let mut dl = [0.0; NF];
    gl[0] = 1.0;
    gl[1] = r_var; // d(v/2)/d r_lsd = exp(2·r_lsd)
    dl[1] = 2.0 * r_var;
    for i in 0..NUM_COLORS {
        gl[2 + i] = coef[i];
        let ci2v = coef[i] * coef[i] * params[ids::c_lvar(t, i)].exp();
        gl[2 + NUM_COLORS + i] = 0.5 * ci2v;
        dl[2 + NUM_COLORS + i] = 0.5 * ci2v;
    }
    let l = exp_family(gl, dl, m + 0.5 * v);

    // S2 = exp(2m + 2v)
    let mut gs = [0.0; NF];
    let mut ds = [0.0; NF];
    gs[0] = 2.0;
    gs[1] = 4.0 * r_var;
    ds[1] = 8.0 * r_var;
    for i in 0..NUM_COLORS {
        gs[2 + i] = 2.0 * coef[i];
        let ci2v = coef[i] * coef[i] * params[ids::c_lvar(t, i)].exp();
        gs[2 + NUM_COLORS + i] = 2.0 * ci2v;
        ds[2 + NUM_COLORS + i] = 2.0 * ci2v;
    }
    let s2 = exp_family(gs, ds, 2.0 * m + 2.0 * v);
    (l, s2)
}

/// Star/galaxy weights `w = softmax(a)` with derivatives over the two
/// logits `[a0, a1]`. Returns (w, ∇w, ∇²w) for the requested type.
#[derive(Debug, Clone, Copy)]
pub struct TypeWeight {
    pub val: f64,
    pub grad: [f64; 2],
    pub hess: [[f64; 2]; 2],
}

/// Weight derivatives for type `t` (0 = star, 1 = galaxy).
pub fn type_weight(params: &[f64; 44], t: usize) -> TypeWeight {
    let d = params[ids::A[0]] - params[ids::A[1]];
    let w0 = crate::params::sigmoid(d);
    let w1 = 1.0 - w0;
    let dw = w0 * w1; // dσ/dd
    let d2w = dw * (w1 - w0); // d²σ/dd²
                              // w_star = σ(d), w_gal = 1 − σ(d); chain through d = a0 − a1.
    let sign = if t == 0 { 1.0 } else { -1.0 };
    TypeWeight {
        val: if t == 0 { w0 } else { w1 },
        grad: [sign * dw, -sign * dw],
        hess: [[sign * d2w, -sign * d2w], [-sign * d2w, sign * d2w]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SourceParams, NUM_PARAMS};
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn test_params() -> [f64; NUM_PARAMS] {
        let entry = CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.0, 0.0),
            source_type: SourceType::Star,
            flux_r_nmgy: 3.0,
            colors: [0.4, -0.2, 0.3, 0.1],
            shape: GalaxyShape::round_disk(1.0),
        };
        let mut sp = SourceParams::init_from_entry(&entry);
        // Perturb so derivatives are generic.
        for (i, p) in sp.params.iter_mut().enumerate() {
            *p += 0.01 * ((i * 7 % 13) as f64 - 6.0) / 6.0;
        }
        sp.params
    }

    fn fd_check(
        f: impl Fn(&[f64; NUM_PARAMS]) -> f64,
        params: &[f64; NUM_PARAMS],
        idx: usize,
        analytic: f64,
        tol: f64,
    ) {
        let h = 1e-6;
        let mut up = *params;
        let mut dn = *params;
        up[idx] += h;
        dn[idx] -= h;
        let fd = (f(&up) - f(&dn)) / (2.0 * h);
        assert!(
            (fd - analytic).abs() < tol * (1.0 + fd.abs()),
            "idx {idx}: analytic {analytic} vs fd {fd}"
        );
    }

    #[test]
    fn l_gradient_matches_fd() {
        let p = test_params();
        for t in 0..2 {
            for band in 0..5 {
                let (l, _) = flux_moments(&p, t, band);
                let fids = flux_param_ids(t);
                for (c, &pid) in fids.iter().enumerate() {
                    fd_check(|q| flux_moments(q, t, band).0.val, &p, pid, l.grad[c], 1e-5);
                }
            }
        }
    }

    #[test]
    fn s2_gradient_matches_fd() {
        let p = test_params();
        for t in 0..2 {
            let (_, s2) = flux_moments(&p, t, 0);
            let fids = flux_param_ids(t);
            for (c, &pid) in fids.iter().enumerate() {
                fd_check(|q| flux_moments(q, t, 0).1.val, &p, pid, s2.grad[c], 1e-5);
            }
        }
    }

    #[test]
    fn l_hessian_matches_fd_of_gradient() {
        let p = test_params();
        let t = 1;
        let band = 4;
        let (l, _) = flux_moments(&p, t, band);
        let fids = flux_param_ids(t);
        for (cj, &pj) in fids.iter().enumerate() {
            for ci in 0..NF {
                fd_check(
                    |q| flux_moments(q, t, band).0.grad[ci],
                    &p,
                    pj,
                    l.hess[ci][cj],
                    1e-4,
                );
            }
        }
    }

    #[test]
    fn reference_band_moments_are_lognormal() {
        let p = test_params();
        let (l, s2) = flux_moments(&p, 0, 2); // r band: no color terms
        let mu = p[ids::r_mu(0)];
        let var = (2.0 * p[ids::r_lsd(0)]).exp();
        assert!((l.val - (mu + 0.5 * var).exp()).abs() < 1e-12);
        assert!((s2.val - (2.0 * mu + 2.0 * var).exp()).abs() < 1e-12);
        // Jensen: E[ℓ²] ≥ E[ℓ]².
        assert!(s2.val >= l.val * l.val);
    }

    #[test]
    fn type_weights_sum_to_one_with_opposite_grads() {
        let p = test_params();
        let ws = type_weight(&p, 0);
        let wg = type_weight(&p, 1);
        assert!((ws.val + wg.val - 1.0).abs() < 1e-12);
        for k in 0..2 {
            assert!((ws.grad[k] + wg.grad[k]).abs() < 1e-12);
            for l in 0..2 {
                assert!((ws.hess[k][l] + wg.hess[k][l]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn type_weight_gradient_matches_fd() {
        let p = test_params();
        for t in 0..2 {
            let w = type_weight(&p, t);
            for (k, &pid) in ids::A.iter().enumerate() {
                fd_check(|q| type_weight(q, t).val, &p, pid, w.grad[k], 1e-6);
            }
        }
    }
}
