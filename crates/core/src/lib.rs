#![allow(clippy::needless_range_loop)] // lockstep-indexed numeric kernels
//! Celeste's core: the statistical model and variational inference
//! engine (the paper's primary contribution; DESIGN.md S1, S2, S12).
//!
//! The model is a joint distribution over pixel intensities (Poisson)
//! and per-source latent variables: type (star/galaxy), reference-band
//! flux, colors, position, and galaxy shape (paper §III, Fig. 2).
//! Variational inference turns posterior computation into maximizing
//! the ELBO over 44 parameters per source ([`params`]); this crate
//! provides:
//!
//! * [`params`] — the 44-parameter block, transforms, and posterior
//!   summaries (point estimates + uncertainties);
//! * [`bvn`] / [`fluxdist`] — hand-coded derivative kernels for the
//!   geometry and flux factors of the likelihood;
//! * [`likelihood`] — the per-pixel expected Poisson log-likelihood
//!   with exact gradient and sparse-structured 44×44 Hessian;
//! * [`kl`] — the analytic KL terms against the priors;
//! * [`generic`] — the same ELBO written once over
//!   [`celeste_ad::Real`], used to verify the hand-coded derivatives
//!   (dual numbers) and audit FLOPs (counting floats);
//! * [`newton`] — the Newton trust-region maximizer (paper §IV-D);
//! * [`infer`] — building per-source subproblems from images and
//!   running single-source fits and block coordinate ascent;
//! * [`flops`] — active-pixel-visit accounting (paper §VI-B).

pub mod bvn;
pub mod dense;
pub mod flops;
pub mod fluxdist;
pub mod generic;
pub mod infer;
pub mod kl;
pub mod likelihood;
pub mod mcmc;
pub mod newton;
pub mod params;

pub use infer::{
    fit_source, fit_source_with, optimize_sources, source_workspace, try_fit_source,
    try_fit_source_with, validate_fit_inputs, validate_images, validate_params, BuildScratch,
    FitConfig, FitError, FitStats, SourceProblem, SourceScratch, SourceWorkspace,
};
pub use kl::ModelPriors;
pub use newton::{maximize, maximize_with, EvalWorkspace, NewtonConfig, NewtonStats, Objective};
pub use params::{SourceParams, Uncertainty, NUM_PARAMS};
