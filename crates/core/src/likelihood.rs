//! The expected Poisson log-likelihood and its exact derivatives.
//!
//! For each active pixel the objective contribution is (paper §III,
//! with the delta-method surrogate for `E[log F]`):
//!
//! ```text
//! φ = x · ( ln E[F] − Var[F] / (2 E[F]²) ) − E[F]
//! E[F]   = ε + Σ_t ι·w_t·L_t·G_t        (ε = sky + fixed neighbors)
//! E[f²]  = Σ_t ι²·w_t·S2_t·G_t²
//! Var[F] = E[f²] − (E[F] − ε)²
//! ```
//!
//! where `w_t` is the star/galaxy weight ([`crate::fluxdist::type_weight`]),
//! `L_t`, `S2_t` the band-flux moments ([`crate::fluxdist::flux_moments`]),
//! and `G_t` the geometry kernel ([`crate::bvn`]). The three factors
//! depend on *disjoint* parameter subsets, so the gradient and the
//! 44×44 Hessian assemble from small blocks — the "custom index types
//! to exploit Hessian sparsity structure" of paper §V. Everything is
//! accumulated in a compact 28-dim space of likelihood-active
//! parameters and scattered to the full vector once per evaluation.

use crate::bvn::{GalaxyGeo, PreparedGalaxy, PreparedStar, GEO};
use crate::fluxdist::{flux_moments, flux_param_ids, type_weight, NF};
use crate::params::{ids, NUM_PARAMS};
use celeste_linalg::Mat;
use celeste_survey::psf::Psf;

/// Number of likelihood-active parameters (of the 44): position (2),
/// type logits (2), two 10-dim flux blocks, shape (4).
pub const NL: usize = 28;

/// Compact → 44-space index map.
pub fn lik_param_ids() -> [usize; NL] {
    let mut out = [0usize; NL];
    out[0] = ids::U[0];
    out[1] = ids::U[1];
    out[2] = ids::A[0];
    out[3] = ids::A[1];
    let f0 = flux_param_ids(0);
    let f1 = flux_param_ids(1);
    out[4..14].copy_from_slice(&f0);
    out[14..24].copy_from_slice(&f1);
    out[24] = ids::FRAC_DEV;
    out[25] = ids::AXIS;
    out[26] = ids::ANGLE;
    out[27] = ids::LN_RADIUS;
    out
}

/// Compact slots of the A block.
const CA: [usize; 2] = [2, 3];
/// Compact slots of the flux block for type t.
fn cf(t: usize) -> [usize; NF] {
    let base = 4 + 10 * t;
    let mut out = [0usize; NF];
    for (i, o) in out.iter_mut().enumerate() {
        *o = base + i;
    }
    out
}
/// Compact slots of the geometry block (order matches [`crate::bvn`]):
/// [u0, u1, fd, axis, angle, ln_radius].
const CG: [usize; GEO] = [0, 1, 24, 25, 26, 27];

/// One active pixel: position (pixel centers), observed counts, and
/// the fixed background rate ε (sky + other sources' expected flux).
#[derive(Debug, Clone, Copy)]
pub struct ActivePixel {
    pub px: f64,
    pub py: f64,
    /// Observed counts.
    pub x: f64,
    /// Fixed part of the rate: sky + neighbors.
    pub eps: f64,
}

/// Everything the likelihood needs from one image for one source.
#[derive(Debug, Clone)]
pub struct ImageBlock {
    /// Band index (0..5).
    pub band: usize,
    /// Calibration: counts per nanomaggy.
    pub iota: f64,
    /// d(pixel)/d(arcsec offset) Jacobian.
    pub jac: [[f64; 2]; 2],
    /// Anchor position in pixel coordinates.
    pub center0: [f64; 2],
    /// Field PSF.
    pub psf: Psf,
    /// The source's active pixels in this image.
    pub pixels: Vec<ActivePixel>,
}

/// Extract the current galaxy geometry block from the parameters.
pub fn galaxy_geo(params: &[f64; NUM_PARAMS]) -> GalaxyGeo {
    GalaxyGeo {
        fd_logit: params[ids::FRAC_DEV],
        axis_logit: params[ids::AXIS],
        angle: params[ids::ANGLE],
        ln_radius: params[ids::LN_RADIUS],
    }
}

/// Evaluate the likelihood part of the ELBO with gradient and Hessian
/// (both *added* into the outputs, indexed in 44-space). Returns the
/// value. Also bumps the active-pixel-visit counter.
pub fn add_likelihood(
    params: &[f64; NUM_PARAMS],
    blocks: &[ImageBlock],
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    let map = lik_param_ids();
    let mut value = 0.0;
    let mut g28 = [0.0; NL];
    let mut h28 = vec![[0.0; NL]; NL];

    let u = [params[ids::U[0]], params[ids::U[1]]];
    let w = [type_weight(params, 0), type_weight(params, 1)];

    for block in blocks {
        let star = PreparedStar::new(&block.psf, block.center0, u, &block.jac);
        let gal = PreparedGalaxy::new(&block.psf, &galaxy_geo(params), block.center0, u, &block.jac);
        let moments =
            [flux_moments(params, 0, block.band), flux_moments(params, 1, block.band)];
        crate::flops::record_visits(block.pixels.len() as u64);

        for pix in &block.pixels {
            let geo = [star.eval(pix.px, pix.py), gal.eval(pix.px, pix.py)];

            // Values.
            let iota = block.iota;
            let iota2 = iota * iota;
            let mut s = 0.0;
            let mut q = 0.0;
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                s += iota * w[t].val * l.val * geo[t].val;
                q += iota2 * w[t].val * s2.val * geo[t].val * geo[t].val;
            }
            let e = pix.eps + s;
            debug_assert!(e > 0.0, "nonpositive rate {e}");
            let v = (q - s * s).max(0.0);
            let e2 = e * e;
            value += pix.x * (e.ln() - v / (2.0 * e2)) - e;

            // φ partials.
            let phi_e = pix.x / e + pix.x * v / (e2 * e) - 1.0;
            let phi_v = -pix.x / (2.0 * e2);
            let phi_ee = -pix.x / e2 - 3.0 * pix.x * v / (e2 * e2);
            let phi_ev = pix.x / (e2 * e);

            // Dense ∇S and ∇Q over the 28 compact slots.
            let mut ds = [0.0; NL];
            let mut dq = [0.0; NL];
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                let gt = &geo[t];
                let g2 = gt.val * gt.val;
                // A slots.
                for k in 0..2 {
                    ds[CA[k]] += iota * l.val * gt.val * w[t].grad[k];
                    dq[CA[k]] += iota2 * s2.val * g2 * w[t].grad[k];
                }
                // Flux slots.
                let cfi = cf(t);
                for c in 0..NF {
                    ds[cfi[c]] += iota * w[t].val * gt.val * l.grad[c];
                    dq[cfi[c]] += iota2 * w[t].val * g2 * s2.grad[c];
                }
                // Geometry slots (star: only u).
                let gdim = if t == 0 { 2 } else { GEO };
                for gslot in 0..gdim {
                    ds[CG[gslot]] += iota * w[t].val * l.val * gt.grad[gslot];
                    dq[CG[gslot]] +=
                        iota2 * w[t].val * s2.val * 2.0 * gt.val * gt.grad[gslot];
                }
            }
            let mut dv = [0.0; NL];
            for i in 0..NL {
                dv[i] = dq[i] - 2.0 * s * ds[i];
            }

            // Gradient.
            for i in 0..NL {
                g28[i] += phi_e * ds[i] + phi_v * dv[i];
            }

            // Hessian: block-structured ∇²S (scaled cs) and ∇²Q
            // (scaled phi_v), plus the rank-2 φ chain terms.
            let cs = phi_e - 2.0 * s * phi_v;
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                let gt = &geo[t];
                let g2 = gt.val * gt.val;
                let gdim = if t == 0 { 2 } else { GEO };
                let cfi = cf(t);
                let iw = iota * w[t].val;
                let iw2 = iota2 * w[t].val;

                // A×A.
                for k in 0..2 {
                    for k2 in 0..2 {
                        h28[CA[k]][CA[k2]] += cs * iota * l.val * gt.val * w[t].hess[k][k2]
                            + phi_v * iota2 * s2.val * g2 * w[t].hess[k][k2];
                    }
                }
                // F×F.
                for c in 0..NF {
                    for c2 in 0..NF {
                        h28[cfi[c]][cfi[c2]] += cs * iw * gt.val * l.hess[c][c2]
                            + phi_v * iw2 * g2 * s2.hess[c][c2];
                    }
                }
                // G×G (G² Hessian: 2(∇G∇Gᵀ + G∇²G)).
                for a in 0..gdim {
                    for b in 0..gdim {
                        let hg2 = 2.0 * (gt.grad[a] * gt.grad[b] + gt.val * gt.hess[a][b]);
                        h28[CG[a]][CG[b]] += cs * iw * l.val * gt.hess[a][b]
                            + phi_v * iw2 * s2.val * hg2;
                    }
                }
                // A×F (symmetric pair).
                for k in 0..2 {
                    for c in 0..NF {
                        let vs = cs * iota * gt.val * w[t].grad[k] * l.grad[c]
                            + phi_v * iota2 * g2 * w[t].grad[k] * s2.grad[c];
                        h28[CA[k]][cfi[c]] += vs;
                        h28[cfi[c]][CA[k]] += vs;
                    }
                }
                // A×G.
                for k in 0..2 {
                    for a in 0..gdim {
                        let vs = cs * iota * l.val * w[t].grad[k] * gt.grad[a]
                            + phi_v * iota2 * s2.val * w[t].grad[k] * 2.0 * gt.val * gt.grad[a];
                        h28[CA[k]][CG[a]] += vs;
                        h28[CG[a]][CA[k]] += vs;
                    }
                }
                // F×G.
                for c in 0..NF {
                    for a in 0..gdim {
                        let vs = cs * iw * l.grad[c] * gt.grad[a]
                            + phi_v * iw2 * s2.grad[c] * 2.0 * gt.val * gt.grad[a];
                        h28[cfi[c]][CG[a]] += vs;
                        h28[CG[a]][cfi[c]] += vs;
                    }
                }
            }
            // Rank-2 chain terms.
            let a2 = phi_ee - 2.0 * phi_v;
            for i in 0..NL {
                let dsi = ds[i];
                let dvi = dv[i];
                if dsi == 0.0 && dvi == 0.0 {
                    continue;
                }
                let row = &mut h28[i];
                for j in 0..NL {
                    row[j] += a2 * dsi * ds[j] + phi_ev * (dsi * dv[j] + dvi * ds[j]);
                }
            }
        }
    }

    // Scatter compact → 44.
    for i in 0..NL {
        grad[map[i]] += g28[i];
        for j in 0..NL {
            hess[(map[i], map[j])] += h28[i][j];
        }
    }
    value
}

/// Value-only likelihood (used for trust-region trial points).
/// Also bumps the active-pixel-visit counter.
pub fn likelihood_value(params: &[f64; NUM_PARAMS], blocks: &[ImageBlock]) -> f64 {
    let u = [params[ids::U[0]], params[ids::U[1]]];
    let w = [type_weight(params, 0).val, type_weight(params, 1).val];
    let mut value = 0.0;
    for block in blocks {
        let star = PreparedStar::new(&block.psf, block.center0, u, &block.jac);
        let gal = PreparedGalaxy::new(&block.psf, &galaxy_geo(params), block.center0, u, &block.jac);
        let moments =
            [flux_moments(params, 0, block.band), flux_moments(params, 1, block.band)];
        crate::flops::record_visits(block.pixels.len() as u64);
        for pix in &block.pixels {
            let geo = [star.eval_value(pix.px, pix.py), gal.eval_value(pix.px, pix.py)];
            let iota = block.iota;
            let mut s = 0.0;
            let mut q = 0.0;
            for t in 0..2 {
                let (l, s2) = (&moments[t].0, &moments[t].1);
                s += iota * w[t] * l.val * geo[t];
                q += iota * iota * w[t] * s2.val * geo[t] * geo[t];
            }
            let e = pix.eps + s;
            let v = (q - s * s).max(0.0);
            value += pix.x * (e.ln() - v / (2.0 * e * e)) - e;
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SourceParams;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn test_block() -> ImageBlock {
        // A small grid of active pixels around the source center with
        // plausible counts.
        let mut pixels = Vec::new();
        for y in 0..9 {
            for x in 0..9 {
                let dx = x as f64 - 4.0;
                let dy = y as f64 - 4.0;
                pixels.push(ActivePixel {
                    px: 10.0 + dx,
                    py: 12.0 + dy,
                    x: (150.0 + 400.0 * (-0.5 * (dx * dx + dy * dy) / 2.0).exp()).round(),
                    eps: 150.0,
                });
            }
        }
        ImageBlock {
            band: 2,
            iota: 300.0,
            jac: [[0.71, 0.02], [-0.01, 0.7]],
            center0: [10.0, 12.0],
            psf: Psf::core_halo(1.3),
            pixels,
        }
    }

    fn test_params() -> [f64; NUM_PARAMS] {
        let entry = CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.0, 0.0),
            source_type: SourceType::Galaxy,
            flux_r_nmgy: 4.0,
            colors: [0.4, -0.2, 0.3, 0.1],
            shape: GalaxyShape {
                frac_dev: 0.35,
                axis_ratio: 0.6,
                angle_rad: 0.8,
                radius_arcsec: 1.8,
            },
        };
        let mut sp = SourceParams::init_from_entry(&entry);
        for (i, p) in sp.params.iter_mut().enumerate() {
            *p += 0.02 * ((i * 11 % 17) as f64 - 8.0) / 8.0;
        }
        sp.params
    }

    #[test]
    fn lik_param_ids_are_disjoint_and_sorted_coverage() {
        let map = lik_param_ids();
        let mut seen = std::collections::HashSet::new();
        for &i in &map {
            assert!(i < NUM_PARAMS);
            assert!(seen.insert(i), "duplicate index {i}");
        }
        // KL-only params must not appear.
        for i in ids::U_LSD.iter().chain(ids::SHAPE_LSD.iter()) {
            assert!(!seen.contains(i));
        }
    }

    #[test]
    fn value_paths_agree() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        let v1 = add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let v2 = likelihood_value(&p, &blocks);
        assert!((v1 - v2).abs() < 1e-9 * (1.0 + v1.abs()), "{v1} vs {v2}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let h = 1e-6;
        for &idx in lik_param_ids().iter() {
            let mut up = p;
            let mut dn = p;
            up[idx] += h;
            dn[idx] -= h;
            let fd =
                (likelihood_value(&up, &blocks) - likelihood_value(&dn, &blocks)) / (2.0 * h);
            assert!(
                (grad[idx] - fd).abs() < 2e-4 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn kl_only_params_have_zero_likelihood_gradient() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        for i in ids::U_LSD.iter().chain(ids::SHAPE_LSD.iter()) {
            assert_eq!(grad[*i], 0.0);
        }
        for t in 0..2 {
            for k in 0..crate::params::K_COLOR {
                assert_eq!(grad[ids::kappa(t, k)], 0.0);
            }
        }
    }

    #[test]
    fn hessian_matches_fd_of_gradient_on_sample() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let h = 1e-5;
        // Sample a representative set of parameter pairs.
        let sample = [
            ids::U[0],
            ids::A[0],
            ids::r_mu(0),
            ids::r_mu(1),
            ids::c_mean(1, 2),
            ids::c_lvar(0, 1),
            ids::FRAC_DEV,
            ids::AXIS,
            ids::ANGLE,
            ids::LN_RADIUS,
        ];
        for &j in &sample {
            let mut up = p;
            let mut dn = p;
            up[j] += h;
            dn[j] -= h;
            let mut gu = [0.0; NUM_PARAMS];
            let mut gd = [0.0; NUM_PARAMS];
            let mut hu = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            let mut hd = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            add_likelihood(&up, &blocks, &mut gu, &mut hu);
            add_likelihood(&dn, &blocks, &mut gd, &mut hd);
            for &i in &sample {
                let fd = (gu[i] - gd[i]) / (2.0 * h);
                let an = hess[(i, j)];
                let scale = 1.0 + fd.abs().max(an.abs());
                assert!(
                    (an - fd).abs() < 5e-3 * scale,
                    "H[{i}][{j}]: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        assert!(hess.is_symmetric(1e-9));
    }

    #[test]
    fn brighter_fit_increases_likelihood_toward_truth() {
        // With counts generated from flux ≈ 4 nmgy, the likelihood at
        // the matching flux must beat a far-off flux.
        let p = test_params();
        let blocks = vec![test_block()];
        let good = likelihood_value(&p, &blocks);
        let mut bad = p;
        bad[ids::r_mu(0)] += 3.0; // e³ ≈ 20× too bright (star branch)
        bad[ids::r_mu(1)] += 3.0;
        let worse = likelihood_value(&bad, &blocks);
        assert!(good > worse, "good {good} vs worse {worse}");
    }

    #[test]
    fn visits_counter_increments() {
        let p = test_params();
        let blocks = vec![test_block()];
        crate::flops::reset_visits();
        likelihood_value(&p, &blocks);
        assert_eq!(crate::flops::visits(), 81);
    }
}
