//! The expected Poisson log-likelihood and its exact derivatives.
//!
//! For each active pixel the objective contribution is (paper §III,
//! with the delta-method surrogate for `E[log F]`):
//!
//! ```text
//! φ = x · ( ln E[F] − Var[F] / (2 E[F]²) ) − E[F]
//! E[F]   = ε + Σ_t ι·w_t·L_t·G_t        (ε = sky + fixed neighbors)
//! E[f²]  = Σ_t ι²·w_t·S2_t·G_t²
//! Var[F] = E[f²] − (E[F] − ε)²
//! ```
//!
//! where `w_t` is the star/galaxy weight ([`crate::fluxdist::type_weight`]),
//! `L_t`, `S2_t` the band-flux moments ([`crate::fluxdist::flux_moments`]),
//! and `G_t` the geometry kernel ([`crate::bvn`]). The three factors
//! depend on *disjoint* parameter subsets, so the gradient and the
//! 44×44 Hessian assemble from small blocks — the "custom index types
//! to exploit Hessian sparsity structure" of paper §V.
//!
//! The production path ([`add_likelihood_into`]) accumulates only the
//! *lower triangle* of the compact 28×28 Hessian into a packed
//! stack buffer (the matrix is symmetric, so the upper triangle is
//! redundant work), hoists every per-pixel-invariant product out of
//! the pixel loops, and reuses caller-owned scratch for the prepared
//! appearance mixtures — zero heap allocation per evaluation. The
//! pre-refactor dense accumulation survives as
//! [`add_likelihood_dense`] (re-exported from [`crate::dense`], which
//! owns the per-call scratch allocation), the parity reference and
//! benchmark baseline.

pub use crate::dense::add_likelihood_dense;

use crate::bvn::{GalaxyGeo, GeoEval, PreparedGalaxy, PreparedStar, GEO};
use crate::fluxdist::{flux_moments, flux_param_ids, type_weight, FluxMoment, TypeWeight, NF};
use crate::params::{ids, NUM_PARAMS};
use celeste_linalg::fused::{self, axpy2, axpy2_tile, Madd, ScalarMadd};
use celeste_linalg::Mat;
use celeste_survey::psf::Psf;
use std::sync::Arc;

#[cfg(target_arch = "x86_64")]
use celeste_linalg::fused::HwFma;

/// Number of likelihood-active parameters (of the 44): position (2),
/// type logits (2), two 10-dim flux blocks, shape (4).
pub const NL: usize = 28;

/// Length of the packed lower triangle of the compact Hessian.
pub const NL_PACKED: usize = NL * (NL + 1) / 2;

/// Pixel-group width of the tiled rank-2 Hessian accumulation: the
/// rank-2 chain terms (`ds⊗ds`-shaped updates over the packed
/// triangle, the densest per-pixel loop of the kernel) are buffered
/// for this many pixels and folded into the triangle once per group
/// via [`axpy2_tile`], so each packed row streams through memory once
/// per `RANK2_TILE` pixels instead of once per pixel. Width 4 keeps
/// the whole tile (two `[[f64; NL]; 4]` panels + coefficients, ~1.9
/// KiB) comfortably in L1 next to the 406-slot triangle while giving
/// the folded row update four independent FMA chains per slot;
/// widening to 8 doubles the buffer for no additional measured win on
/// the benchmark container. The tile carries across image blocks
/// (the chain terms are pure per-pixel adds into the shared packed
/// triangle), so at most one partial group per evaluation remains;
/// it replays the exact per-pixel update.
pub const RANK2_TILE: usize = 4;

/// Floor on the per-pixel Poisson rate: `ln` and the variance
/// correction stay finite even if a trust-region trial point drives
/// the expected flux (plus background) to ≤ 0. Applied consistently
/// in the value-only and derivative paths so their values agree.
pub const RATE_FLOOR: f64 = 1e-12;

/// Compact → 44-space index map.
pub fn lik_param_ids() -> [usize; NL] {
    let mut out = [0usize; NL];
    out[0] = ids::U[0];
    out[1] = ids::U[1];
    out[2] = ids::A[0];
    out[3] = ids::A[1];
    let f0 = flux_param_ids(0);
    let f1 = flux_param_ids(1);
    out[4..14].copy_from_slice(&f0);
    out[14..24].copy_from_slice(&f1);
    out[24] = ids::FRAC_DEV;
    out[25] = ids::AXIS;
    out[26] = ids::ANGLE;
    out[27] = ids::LN_RADIUS;
    out
}

/// Compact slots of the A block.
pub(crate) const CA: [usize; 2] = [2, 3];
/// Compact slots of the flux block for type t.
pub(crate) fn cf(t: usize) -> [usize; NF] {
    let base = 4 + 10 * t;
    let mut out = [0usize; NF];
    for (i, o) in out.iter_mut().enumerate() {
        *o = base + i;
    }
    out
}
/// Compact slots of the geometry block (order matches [`crate::bvn`]):
/// [u0, u1, fd, axis, angle, ln_radius].
pub(crate) const CG: [usize; GEO] = [0, 1, 24, 25, 26, 27];

/// One active pixel: position (pixel centers), observed counts, and
/// the fixed background rate ε (sky + other sources' expected flux).
#[derive(Debug, Clone, Copy)]
pub struct ActivePixel {
    pub px: f64,
    pub py: f64,
    /// Observed counts.
    pub x: f64,
    /// Fixed part of the rate: sky + neighbors.
    pub eps: f64,
}

/// Everything the likelihood needs from one image for one source.
///
/// The PSF is shared (`Arc`): problems are rebuilt for every
/// block-coordinate-ascent step, and cloning the field PSF's mixture
/// into each of them was measurable assembly overhead.
#[derive(Debug, Clone)]
pub struct ImageBlock {
    /// Band index (0..5).
    pub band: usize,
    /// Calibration: counts per nanomaggy.
    pub iota: f64,
    /// d(pixel)/d(arcsec offset) Jacobian.
    pub jac: [[f64; 2]; 2],
    /// Anchor position in pixel coordinates.
    pub center0: [f64; 2],
    /// Field PSF (shared with the image it came from).
    pub psf: Arc<Psf>,
    /// The source's active pixels in this image.
    pub pixels: Vec<ActivePixel>,
}

/// Extract the current galaxy geometry block from the parameters.
pub fn galaxy_geo(params: &[f64; NUM_PARAMS]) -> GalaxyGeo {
    GalaxyGeo {
        fd_logit: params[ids::FRAC_DEV],
        axis_logit: params[ids::AXIS],
        angle: params[ids::ANGLE],
        ln_radius: params[ids::LN_RADIUS],
    }
}

/// Reusable scratch for likelihood evaluation: the prepared star and
/// galaxy appearance mixtures (heap-backed, reused across blocks and
/// evaluations). Owned by the evaluation workspace.
#[derive(Default)]
pub struct LikScratch {
    star: PreparedStar,
    gal: PreparedGalaxy,
}

/// Evaluate the likelihood part of the ELBO with gradient and Hessian
/// (both *added* into the outputs, indexed in 44-space). Returns the
/// value. Also bumps the active-pixel-visit counter.
///
/// This is the production kernel: packed lower-triangle Hessian
/// accumulation, hoisted per-block invariants, component culling in
/// the geometry kernel at `cull_tol` (0 = exact; see
/// [`crate::bvn`]'s culling notes for the advertised error bound),
/// and no heap allocation (given a warmed-up `scratch`).
pub fn add_likelihood_into(
    params: &[f64; NUM_PARAMS],
    blocks: &[ImageBlock],
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
    scratch: &mut LikScratch,
    cull_tol: f64,
) -> f64 {
    let map = lik_param_ids();
    let mut value = 0.0;
    let mut g28 = [0.0; NL];
    let mut h28 = [0.0; NL_PACKED];
    let mut tile = Rank2Tile::new();

    let u = [params[ids::U[0]], params[ids::U[1]]];
    let w = [type_weight(params, 0), type_weight(params, 1)];
    let geo_params = galaxy_geo(params);
    // One dispatch decision for the whole evaluation (process-global
    // and cached, so it can never disagree with the geometry kernel's
    // own dispatch).
    let use_fma = fused::fma_enabled();

    for block in blocks {
        scratch
            .star
            .prepare(&block.psf, block.center0, u, &block.jac, cull_tol);
        scratch.gal.prepare(
            &block.psf,
            &geo_params,
            block.center0,
            u,
            &block.jac,
            cull_tol,
        );
        let moments = [
            flux_moments(params, 0, block.band),
            flux_moments(params, 1, block.band),
        ];
        crate::flops::record_visits(block.pixels.len() as u64);

        let coefs = BlockCoefs::new(block.iota, &w, &moments);
        let mut sums = BlockSums::default();

        for pix in &block.pixels {
            let geo = [
                scratch.star.eval(pix.px, pix.py),
                scratch.gal.eval(pix.px, pix.py),
            ];

            // Values.
            let mut s = 0.0;
            let mut q = 0.0;
            for t in 0..2 {
                s += coefs.iwl[t] * geo[t].val;
                q += coefs.iw2s2[t] * geo[t].val * geo[t].val;
            }
            let e = (pix.eps + s).max(RATE_FLOOR);
            let v = (q - s * s).max(0.0);
            let e2 = e * e;
            value += pix.x * (e.ln() - v / (2.0 * e2)) - e;

            // φ partials.
            let phi = Phi {
                e: pix.x / e + pix.x * v / (e2 * e) - 1.0,
                v: -pix.x / (2.0 * e2),
                ee: -pix.x / e2 - 3.0 * pix.x * v / (e2 * e2),
                ev: pix.x / (e2 * e),
            };
            // Fully-culled pixel (both appearances screened to
            // exactly zero, far wings): every ∇S/∇Q entry is zero,
            // so the whole 28-slot accumulation is a no-op — only
            // the value term above carries information. The check is
            // exact: a culled evaluation never touches its outputs.
            if geo[0].val != 0.0 || geo[1].val != 0.0 {
                pixel_derivs_dispatch(
                    use_fma, &coefs, &geo, s, &phi, &mut g28, &mut h28, &mut sums, &mut tile,
                );
            }
        }
        fold_block_sums(&coefs, &sums, &mut h28);
    }
    flush_rank2_dispatch(use_fma, &mut tile, &mut h28);

    // Scatter compact → 44 (mirroring the packed triangle).
    for i in 0..NL {
        grad[map[i]] += g28[i];
    }
    hess.scatter_sym_packed(&h28, &map);
    value
}

/// Per-(block, type) invariants, hoisted out of the pixel loop.
/// Naming: i = ι, i2 = ι², w = w_t, l = L_t, s2 = S2_t.
struct BlockCoefs<'a> {
    /// Type weights (softmax over the two logits) with derivatives.
    w: &'a [TypeWeight; 2],
    /// Band-flux moments (L, S2) per type.
    moments: &'a [(FluxMoment, FluxMoment); 2],
    iw: [f64; 2],         // ι·w
    iw2: [f64; 2],        // ι²·w
    il: [f64; 2],         // ι·L
    i2s2: [f64; 2],       // ι²·S2
    iwl: [f64; 2],        // ι·w·L
    iw2s2: [f64; 2],      // ι²·w·S2
    dsa: [[f64; 2]; 2],   // ι·L·∇w    (A-slot ∇S coeff)
    dqa: [[f64; 2]; 2],   // ι²·S2·∇w  (A-slot ∇Q coeff)
    dsf: [[f64; NF]; 2],  // ι·w·∇L    (flux ∇S coeff)
    dqf: [[f64; NF]; 2],  // ι²·w·∇S2  (flux ∇Q coeff)
    ilg: [[f64; NF]; 2],  // ι·∇L      (A×F cross coeff)
    i2sg: [[f64; NF]; 2], // ι²·∇S2    (A×F cross coeff)
}

impl<'a> BlockCoefs<'a> {
    fn new(
        iota: f64,
        w: &'a [TypeWeight; 2],
        moments: &'a [(FluxMoment, FluxMoment); 2],
    ) -> BlockCoefs<'a> {
        let iota2 = iota * iota;
        let mut out = BlockCoefs {
            w,
            moments,
            iw: [0.0; 2],
            iw2: [0.0; 2],
            il: [0.0; 2],
            i2s2: [0.0; 2],
            iwl: [0.0; 2],
            iw2s2: [0.0; 2],
            dsa: [[0.0; 2]; 2],
            dqa: [[0.0; 2]; 2],
            dsf: [[0.0; NF]; 2],
            dqf: [[0.0; NF]; 2],
            ilg: [[0.0; NF]; 2],
            i2sg: [[0.0; NF]; 2],
        };
        for t in 0..2 {
            let (l, s2) = (&moments[t].0, &moments[t].1);
            out.iw[t] = iota * w[t].val;
            out.iw2[t] = iota2 * w[t].val;
            out.il[t] = iota * l.val;
            out.i2s2[t] = iota2 * s2.val;
            out.iwl[t] = out.iw[t] * l.val;
            out.iw2s2[t] = out.iw2[t] * s2.val;
            for k in 0..2 {
                out.dsa[t][k] = out.il[t] * w[t].grad[k];
                out.dqa[t][k] = out.i2s2[t] * w[t].grad[k];
            }
            for c in 0..NF {
                out.dsf[t][c] = out.iw[t] * l.grad[c];
                out.dqf[t][c] = out.iw2[t] * s2.grad[c];
                out.ilg[t][c] = iota * l.grad[c];
                out.i2sg[t][c] = iota2 * s2.grad[c];
            }
        }
        out
    }
}

/// Partials of the per-pixel objective `φ(E, Var)`.
struct Phi {
    e: f64,
    v: f64,
    ee: f64,
    ev: f64,
}

/// Buffered rank-2 inputs for up to [`RANK2_TILE`] pixels: the dense
/// ∇S/∇V rows and the two φ second-order coefficients each pixel's
/// chain terms multiply by. Stack-allocated in
/// [`add_likelihood_into`] (~1.9 KiB) and reused for the whole
/// evaluation — no heap.
struct Rank2Tile {
    ds: [[f64; NL]; RANK2_TILE],
    dv: [[f64; NL]; RANK2_TILE],
    /// φ_ee − 2φ_v per buffered pixel.
    a2: [f64; RANK2_TILE],
    /// φ_ev per buffered pixel.
    ev: [f64; RANK2_TILE],
    len: usize,
}

impl Rank2Tile {
    fn new() -> Rank2Tile {
        Rank2Tile {
            ds: [[0.0; NL]; RANK2_TILE],
            dv: [[0.0; NL]; RANK2_TILE],
            a2: [0.0; RANK2_TILE],
            ev: [0.0; RANK2_TILE],
            len: 0,
        }
    }
}

/// Fold a *full* tile's rank-2 chain terms into the packed triangle:
/// for each row i, the per-pixel coefficients
/// `c1[p] = a2_p·ds_p[i] + φ_ev·dv_p[i]`, `c2[p] = φ_ev·ds_p[i]`
/// contract the buffered ∇S/∇V panels in one [`axpy2_tile`] pass, so
/// the row is read and written once for all [`RANK2_TILE`] pixels.
/// Rows where every buffered pixel has `ds[i] == dv[i] == 0` (e.g.
/// star-only blocks never touch the shape slots) are skipped, same as
/// the per-pixel form.
#[inline(always)]
fn fold_rank2_full<F: Madd>(tile: &Rank2Tile, h28: &mut [f64; NL_PACKED]) {
    for i in 0..NL {
        let mut c1 = [0.0; RANK2_TILE];
        let mut c2 = [0.0; RANK2_TILE];
        let mut live = false;
        for p in 0..RANK2_TILE {
            let dsi = tile.ds[p][i];
            let dvi = tile.dv[p][i];
            live |= dsi != 0.0 || dvi != 0.0;
            c1[p] = F::madd(tile.a2[p], dsi, tile.ev[p] * dvi);
            c2[p] = tile.ev[p] * dsi;
        }
        if !live {
            continue;
        }
        let row = &mut h28[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
        axpy2_tile::<F, RANK2_TILE, NL>(row, &c1, &tile.ds, &c2, &tile.dv);
    }
}

/// Fold a *partial* tile (the evaluation's final `len <
/// RANK2_TILE` pixels) by replaying the exact per-pixel [`axpy2`]
/// update, then reset the tile.
#[inline(always)]
fn fold_rank2_tail<F: Madd>(tile: &mut Rank2Tile, h28: &mut [f64; NL_PACKED]) {
    for p in 0..tile.len {
        let ds = &tile.ds[p];
        let dv = &tile.dv[p];
        for i in 0..NL {
            let dsi = ds[i];
            let dvi = dv[i];
            if dsi == 0.0 && dvi == 0.0 {
                continue;
            }
            let row = &mut h28[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
            let cds = F::madd(tile.a2[p], dsi, tile.ev[p] * dvi);
            let cdv = tile.ev[p] * dsi;
            axpy2::<F>(row, cds, &ds[..i + 1], cdv, &dv[..i + 1]);
        }
    }
    tile.len = 0;
}

/// Flush whatever the tile still buffers, routed through the same
/// dispatch decision as the pixel loop.
#[inline(always)]
fn flush_rank2_dispatch(use_fma: bool, tile: &mut Rank2Tile, h28: &mut [f64; NL_PACKED]) {
    #[cfg(target_arch = "x86_64")]
    if use_fma {
        // SAFETY: use_fma comes from fused::fma_enabled(), which
        // verified avx2+fma at runtime.
        unsafe { fold_rank2_tail_fma(tile, h28) };
        return;
    }
    let _ = use_fma;
    fold_rank2_tail::<ScalarMadd>(tile, h28)
}

/// The `avx2,fma` instantiation of [`fold_rank2_tail`].
///
/// # Safety
/// Caller must have verified `avx2`+`fma` support at runtime (every
/// call site gates on `fused::fma_enabled()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fold_rank2_tail_fma(tile: &mut Rank2Tile, h28: &mut [f64; NL_PACKED]) {
    fold_rank2_tail::<HwFma>(tile, h28)
}

/// Pixel-sum accumulators for the Hessian blocks that factor as
/// (pixel scalar) × (block-constant table): the A×A, F×F, A×F, A×G
/// and F×G blocks all multiply per-block tables (`w` derivatives,
/// flux-moment derivatives, the `BlockCoefs` products) by one of
/// four per-type pixel scalars — `cs·G`, `φ_v·G²`, `cs·∇G_b`, and
/// `2φ_v·G·∇G_b`. Accumulating those scalars per pixel and folding
/// the block products once per block ([`fold_block_sums`]) deletes
/// several hundred madds from every pixel (over half the
/// block-structured accumulation).
#[derive(Default)]
struct BlockSums {
    /// Σ cs·G_t.
    csg: [f64; 2],
    /// Σ φ_v·G_t².
    pvg2: [f64; 2],
    /// Σ cs·∇G_b per type and geometry slot.
    cs_g: [[f64; GEO]; 2],
    /// Σ 2φ_v·G·∇G_b per type and geometry slot.
    pv_g: [[f64; GEO]; 2],
}

/// Fold the factored Hessian blocks once per image block: every
/// entry here is (pixel-summed scalar) × (block-constant table),
/// exactly the terms [`pixel_derivs`] no longer writes per pixel.
/// Runs once per block — cost is amortized over the pixel loop.
fn fold_block_sums(c: &BlockCoefs, sums: &BlockSums, h28: &mut [f64; NL_PACKED]) {
    let w = c.w;
    for t in 0..2 {
        let (l, s2m) = (&c.moments[t].0, &c.moments[t].1);
        let base = 4 + 10 * t;
        let gdim = if t == 0 { 2 } else { GEO };

        // A×A: haa = il·(Σ cs·G) + i2s2·(Σ φ_v·G²)  (× ∇²w).
        let haa = c.il[t] * sums.csg[t] + c.i2s2[t] * sums.pvg2[t];
        h28[5] += haa * w[t].hess[0][0]; // (2,2)
        h28[8] += haa * w[t].hess[1][0]; // (3,2)
        h28[9] += haa * w[t].hess[1][1]; // (3,3)

        // A×G: rows 2–3, u columns (and shape columns below).
        let gag = |b: usize| c.il[t] * sums.cs_g[t][b] + c.i2s2[t] * sums.pv_g[t][b];
        h28[3] += w[t].grad[0] * gag(0); // (2,0)
        h28[4] += w[t].grad[0] * gag(1); // (2,1)
        h28[6] += w[t].grad[1] * gag(0); // (3,0)
        h28[7] += w[t].grad[1] * gag(1); // (3,1)

        // Flux rows: u-columns (F×G), A-columns (A×F), and the F×F
        // triangle (hffc × ∇²L + hffq × ∇²S2).
        let hffc = c.iw[t] * sums.csg[t];
        let hffq = c.iw2[t] * sums.pvg2[t];
        for fc in 0..NF {
            let r = base + fc;
            let off = r * (r + 1) / 2;
            let row = &mut h28[off..off + r + 1];
            row[0] += c.dsf[t][fc] * sums.cs_g[t][0] + c.dqf[t][fc] * sums.pv_g[t][0];
            row[1] += c.dsf[t][fc] * sums.cs_g[t][1] + c.dqf[t][fc] * sums.pv_g[t][1];
            let cross = sums.csg[t] * c.ilg[t][fc] + sums.pvg2[t] * c.i2sg[t][fc];
            row[2] += w[t].grad[0] * cross;
            row[3] += w[t].grad[1] * cross;
            for c2 in 0..=fc {
                row[base + c2] += hffc * l.hess[fc][c2] + hffq * s2m.hess[fc][c2];
            }
        }

        // Shape rows (galaxy only): A-columns and F-columns.
        if t == 1 {
            for a in 2..gdim {
                let r = 22 + a;
                let off = r * (r + 1) / 2;
                let row = &mut h28[off..off + r + 1];
                let g = gag(a);
                row[2] += w[t].grad[0] * g;
                row[3] += w[t].grad[1] * g;
                for fc in 0..NF {
                    row[base + fc] +=
                        c.dsf[t][fc] * sums.cs_g[t][a] + c.dqf[t][fc] * sums.pv_g[t][a];
                }
            }
        }
    }
}

/// Route one pixel's derivative accumulation to the instantiation the
/// process-global [`fused::fma_enabled`] decision selected (hoisted
/// to `use_fma` by the caller so the flag is checked once per pixel,
/// not once per row).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal hot-path plumbing
fn pixel_derivs_dispatch(
    use_fma: bool,
    c: &BlockCoefs,
    geo: &[GeoEval; 2],
    s: f64,
    phi: &Phi,
    g28: &mut [f64; NL],
    h28: &mut [f64; NL_PACKED],
    sums: &mut BlockSums,
    tile: &mut Rank2Tile,
) {
    #[cfg(target_arch = "x86_64")]
    if use_fma {
        // SAFETY: use_fma comes from fused::fma_enabled(), which
        // verified avx2+fma at runtime.
        unsafe { pixel_derivs_fma(c, geo, s, phi, g28, h28, sums, tile) };
        return;
    }
    let _ = use_fma;
    pixel_derivs::<ScalarMadd>(c, geo, s, phi, g28, h28, sums, tile)
}

/// The `avx2,fma` instantiation of [`pixel_derivs`]: the packed
/// lower-triangle rows (rank-2 chain terms, flux-block triangles —
/// ~⅓ of the whole derivative path) contract to hardware FMA and the
/// contiguous row updates vectorize 4-wide.
///
/// # Safety
/// Caller must have verified `avx2`+`fma` support at runtime (every
/// call site gates on `fused::fma_enabled()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)] // internal hot-path plumbing
unsafe fn pixel_derivs_fma(
    c: &BlockCoefs,
    geo: &[GeoEval; 2],
    s: f64,
    phi: &Phi,
    g28: &mut [f64; NL],
    h28: &mut [f64; NL_PACKED],
    sums: &mut BlockSums,
    tile: &mut Rank2Tile,
) {
    pixel_derivs::<HwFma>(c, geo, s, phi, g28, h28, sums, tile)
}

/// Accumulate one pixel's gradient and packed lower-triangle Hessian
/// contribution over the 28 compact slots, generic over the madd
/// strategy ([`celeste_linalg::fused`]).
///
/// Hessian layout: block-structured ∇²S (scaled cs) and ∇²Q (scaled
/// φ_v), plus the rank-2 φ chain terms. Only the lower triangle is
/// touched, written row-wise into the packed buffer (compact row r
/// starts at r(r+1)/2 and is contiguous) so the inner loops stay
/// branch-free; the caller's scatter mirrors once per evaluation.
/// The blocks that factor through block-constant tables (A×A, F×F,
/// A×F, A×G, F×G) are *not* written here — only their pixel scalars
/// are accumulated into `sums`, and [`fold_block_sums`] writes them
/// once per block. The rank-2 chain terms are likewise deferred:
/// this pixel's ∇S/∇V rows go into `tile`, and the triangle fold
/// happens once per [`RANK2_TILE`] pixels (the caller flushes the
/// final partial tile).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal hot-path plumbing
fn pixel_derivs<F: Madd>(
    c: &BlockCoefs,
    geo: &[GeoEval; 2],
    s: f64,
    phi: &Phi,
    g28: &mut [f64; NL],
    h28: &mut [f64; NL_PACKED],
    sums: &mut BlockSums,
    tile: &mut Rank2Tile,
) {
    // Dense ∇S and ∇Q over the 28 compact slots.
    let mut ds = [0.0; NL];
    let mut dq = [0.0; NL];
    for t in 0..2 {
        let gt = &geo[t];
        let g2 = gt.val * gt.val;
        // A slots.
        for k in 0..2 {
            ds[CA[k]] = F::madd(c.dsa[t][k], gt.val, ds[CA[k]]);
            dq[CA[k]] = F::madd(c.dqa[t][k], g2, dq[CA[k]]);
        }
        // Flux slots.
        let cfi = cf(t);
        for fc in 0..NF {
            ds[cfi[fc]] = F::madd(c.dsf[t][fc], gt.val, ds[cfi[fc]]);
            dq[cfi[fc]] = F::madd(c.dqf[t][fc], g2, dq[cfi[fc]]);
        }
        // Geometry slots (star: only u).
        let gdim = if t == 0 { 2 } else { GEO };
        let two_gv = 2.0 * gt.val;
        for gslot in 0..gdim {
            ds[CG[gslot]] = F::madd(c.iwl[t], gt.grad[gslot], ds[CG[gslot]]);
            dq[CG[gslot]] = F::madd(c.iw2s2[t] * two_gv, gt.grad[gslot], dq[CG[gslot]]);
        }
    }
    let mut dv = [0.0; NL];
    for i in 0..NL {
        dv[i] = F::madd(-2.0 * s, ds[i], dq[i]);
    }

    // Gradient.
    axpy2::<F>(g28, phi.e, &ds, phi.v, &dv);

    let cs = phi.e - 2.0 * s * phi.v;
    for t in 0..2 {
        let gt = &geo[t];
        let g2 = gt.val * gt.val;

        // Per-pixel block coefficients.
        let hgc = cs * c.iwl[t]; // × ∇²G
        let hgq = phi.v * c.iw2s2[t]; // × ∇²(G²)
        let two_pv_gv = 2.0 * phi.v * gt.val;

        // Factored-block pixel sums (everything the fold needs).
        sums.csg[t] += cs * gt.val;
        sums.pvg2[t] = F::madd(phi.v, g2, sums.pvg2[t]);
        let gdim = if t == 0 { 2 } else { GEO };
        for b in 0..gdim {
            sums.cs_g[t][b] = F::madd(cs, gt.grad[b], sums.cs_g[t][b]);
            sums.pv_g[t][b] = F::madd(two_pv_gv, gt.grad[b], sums.pv_g[t][b]);
        }

        // u-block rows 0–1: G×G over the position slots.
        let hg00 = 2.0 * F::madd(gt.grad[0], gt.grad[0], gt.val * gt.hess[0][0]);
        let hg10 = 2.0 * F::madd(gt.grad[1], gt.grad[0], gt.val * gt.hess[1][0]);
        let hg11 = 2.0 * F::madd(gt.grad[1], gt.grad[1], gt.val * gt.hess[1][1]);
        h28[0] += F::madd(hgc, gt.hess[0][0], hgq * hg00);
        h28[1] += F::madd(hgc, gt.hess[1][0], hgq * hg10);
        h28[2] += F::madd(hgc, gt.hess[1][1], hgq * hg11);

        // Shape rows 24–27 (galaxy only; the star's geometry stops at
        // the u slots): the G×G columns — u-block columns and the
        // shape-shape triangle — are the only parts that need the
        // per-pixel geometry Hessian.
        if t == 1 {
            for a in 2..GEO {
                let r = 22 + a; // CG[a] = 24 + (a − 2)
                let off = r * (r + 1) / 2;
                let row = &mut h28[off..off + r + 1];
                let ga = gt.grad[a];
                // G×G u-columns.
                for b in 0..2 {
                    let hg2 = 2.0 * F::madd(ga, gt.grad[b], gt.val * gt.hess[a][b]);
                    row[b] += F::madd(hgc, gt.hess[a][b], hgq * hg2);
                }
                // G×G shape-shape triangle.
                for b in 2..=a {
                    let hg2 = 2.0 * F::madd(ga, gt.grad[b], gt.val * gt.hess[a][b]);
                    row[22 + b] += F::madd(hgc, gt.hess[a][b], hgq * hg2);
                }
            }
        }
    }
    // Rank-2 chain terms (symmetric in (i, j): only the lower
    // triangle is accumulated — row[j] += a2·dsi·ds[j] +
    // φ_ev·(dsi·dv[j] + dvi·ds[j])). This is the densest loop of the
    // kernel, so it is tiled: buffer this pixel's rows and φ
    // coefficients, and fold a full tile's worth into the triangle
    // in one pass per row ([`fold_rank2_full`]).
    tile.ds[tile.len] = ds;
    tile.dv[tile.len] = dv;
    tile.a2[tile.len] = phi.ee - 2.0 * phi.v;
    tile.ev[tile.len] = phi.ev;
    tile.len += 1;
    if tile.len == RANK2_TILE {
        fold_rank2_full::<F>(tile, h28);
        tile.len = 0;
    }
}

/// Compatibility wrapper over [`add_likelihood_into`] that allocates
/// fresh scratch per call and evaluates exactly (culling tolerance
/// zero). Prefer the `_into` form on hot paths.
pub fn add_likelihood(
    params: &[f64; NUM_PARAMS],
    blocks: &[ImageBlock],
    grad: &mut [f64; NUM_PARAMS],
    hess: &mut Mat,
) -> f64 {
    let mut scratch = LikScratch::default();
    add_likelihood_into(params, blocks, grad, hess, &mut scratch, 0.0)
}

/// Value-only likelihood (used for trust-region trial points).
/// Allocates fresh scratch per call and evaluates exactly; hot paths
/// use [`likelihood_value_into`]. Also bumps the active-pixel-visit
/// counter.
pub fn likelihood_value(params: &[f64; NUM_PARAMS], blocks: &[ImageBlock]) -> f64 {
    let mut scratch = LikScratch::default();
    likelihood_value_into(params, blocks, &mut scratch, 0.0)
}

/// Value-only likelihood with caller-owned scratch (no allocation)
/// and component culling at `cull_tol` (must match the derivative
/// path's tolerance so trust-region ratios compare like with like).
pub fn likelihood_value_into(
    params: &[f64; NUM_PARAMS],
    blocks: &[ImageBlock],
    scratch: &mut LikScratch,
    cull_tol: f64,
) -> f64 {
    let u = [params[ids::U[0]], params[ids::U[1]]];
    let w = [type_weight(params, 0).val, type_weight(params, 1).val];
    let geo_params = galaxy_geo(params);
    let mut value = 0.0;
    for block in blocks {
        scratch
            .star
            .prepare(&block.psf, block.center0, u, &block.jac, cull_tol);
        scratch.gal.prepare(
            &block.psf,
            &geo_params,
            block.center0,
            u,
            &block.jac,
            cull_tol,
        );
        let moments = [
            flux_moments(params, 0, block.band),
            flux_moments(params, 1, block.band),
        ];
        crate::flops::record_visits(block.pixels.len() as u64);
        let iota = block.iota;
        let iwl = [
            iota * w[0] * moments[0].0.val,
            iota * w[1] * moments[1].0.val,
        ];
        let iw2s2 = [
            iota * iota * w[0] * moments[0].1.val,
            iota * iota * w[1] * moments[1].1.val,
        ];
        for pix in &block.pixels {
            let geo = [
                scratch.star.eval_value(pix.px, pix.py),
                scratch.gal.eval_value(pix.px, pix.py),
            ];
            let mut s = 0.0;
            let mut q = 0.0;
            for t in 0..2 {
                s += iwl[t] * geo[t];
                q += iw2s2[t] * geo[t] * geo[t];
            }
            let e = (pix.eps + s).max(RATE_FLOOR);
            let v = (q - s * s).max(0.0);
            value += pix.x * (e.ln() - v / (2.0 * e * e)) - e;
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SourceParams;
    use celeste_survey::catalog::{CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::skygeom::SkyCoord;

    fn test_block() -> ImageBlock {
        // A small grid of active pixels around the source center with
        // plausible counts.
        let mut pixels = Vec::new();
        for y in 0..9 {
            for x in 0..9 {
                let dx = x as f64 - 4.0;
                let dy = y as f64 - 4.0;
                pixels.push(ActivePixel {
                    px: 10.0 + dx,
                    py: 12.0 + dy,
                    x: (150.0 + 400.0 * (-0.5 * (dx * dx + dy * dy) / 2.0).exp()).round(),
                    eps: 150.0,
                });
            }
        }
        ImageBlock {
            band: 2,
            iota: 300.0,
            jac: [[0.71, 0.02], [-0.01, 0.7]],
            center0: [10.0, 12.0],
            psf: Arc::new(Psf::core_halo(1.3)),
            pixels,
        }
    }

    fn test_params() -> [f64; NUM_PARAMS] {
        let entry = CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.0, 0.0),
            source_type: SourceType::Galaxy,
            flux_r_nmgy: 4.0,
            colors: [0.4, -0.2, 0.3, 0.1],
            shape: GalaxyShape {
                frac_dev: 0.35,
                axis_ratio: 0.6,
                angle_rad: 0.8,
                radius_arcsec: 1.8,
            },
        };
        let mut sp = SourceParams::init_from_entry(&entry);
        for (i, p) in sp.params.iter_mut().enumerate() {
            *p += 0.02 * ((i * 11 % 17) as f64 - 8.0) / 8.0;
        }
        sp.params
    }

    #[test]
    fn lik_param_ids_are_disjoint_and_sorted_coverage() {
        let map = lik_param_ids();
        let mut seen = std::collections::HashSet::new();
        for &i in &map {
            assert!(i < NUM_PARAMS);
            assert!(seen.insert(i), "duplicate index {i}");
        }
        // KL-only params must not appear.
        for i in ids::U_LSD.iter().chain(ids::SHAPE_LSD.iter()) {
            assert!(!seen.contains(i));
        }
    }

    #[test]
    fn value_paths_agree() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        let v1 = add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let v2 = likelihood_value(&p, &blocks);
        assert!((v1 - v2).abs() < 1e-9 * (1.0 + v1.abs()), "{v1} vs {v2}");
        let mut scratch = LikScratch::default();
        let v3 = likelihood_value_into(&p, &blocks, &mut scratch, 0.0);
        assert!((v1 - v3).abs() < 1e-9 * (1.0 + v1.abs()), "{v1} vs {v3}");
    }

    #[test]
    fn packed_matches_dense_to_parity_tolerance() {
        // The tentpole parity bar: packed lower-triangle accumulation
        // must match the dense reference to 1e-12 *relative* on every
        // gradient and Hessian entry.
        let p = test_params();
        let blocks = vec![test_block()];
        let mut gp = [0.0; NUM_PARAMS];
        let mut hp = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        let vp = add_likelihood(&p, &blocks, &mut gp, &mut hp);
        let mut gd = [0.0; NUM_PARAMS];
        let mut hd = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        let vd = add_likelihood_dense(&p, &blocks, &mut gd, &mut hd);
        assert!(
            (vp - vd).abs() <= 1e-12 * (1.0 + vd.abs()),
            "value {vp} vs {vd}"
        );
        // Tolerance is relative to the object's scale (max-abs), so
        // entries that nearly cancel don't demand impossible absolute
        // precision from a reassociated-but-equivalent summation.
        let gscale = gd.iter().fold(1.0_f64, |m, g| m.max(g.abs()));
        let hscale = hd.max_abs().max(1.0);
        for i in 0..NUM_PARAMS {
            assert!(
                (gp[i] - gd[i]).abs() <= 1e-12 * gscale,
                "grad[{i}]: packed {} vs dense {}",
                gp[i],
                gd[i]
            );
            for j in 0..NUM_PARAMS {
                let (a, b) = (hp[(i, j)], hd[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-12 * hscale,
                    "H[{i}][{j}]: packed {a} vs dense {b}"
                );
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let h = 1e-6;
        for &idx in lik_param_ids().iter() {
            let mut up = p;
            let mut dn = p;
            up[idx] += h;
            dn[idx] -= h;
            let fd = (likelihood_value(&up, &blocks) - likelihood_value(&dn, &blocks)) / (2.0 * h);
            assert!(
                (grad[idx] - fd).abs() < 2e-4 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn kl_only_params_have_zero_likelihood_gradient() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        for i in ids::U_LSD.iter().chain(ids::SHAPE_LSD.iter()) {
            assert_eq!(grad[*i], 0.0);
        }
        for t in 0..2 {
            for k in 0..crate::params::K_COLOR {
                assert_eq!(grad[ids::kappa(t, k)], 0.0);
            }
        }
    }

    #[test]
    fn hessian_matches_fd_of_gradient_on_sample() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        let h = 1e-5;
        // Sample a representative set of parameter pairs.
        let sample = [
            ids::U[0],
            ids::A[0],
            ids::r_mu(0),
            ids::r_mu(1),
            ids::c_mean(1, 2),
            ids::c_lvar(0, 1),
            ids::FRAC_DEV,
            ids::AXIS,
            ids::ANGLE,
            ids::LN_RADIUS,
        ];
        for &j in &sample {
            let mut up = p;
            let mut dn = p;
            up[j] += h;
            dn[j] -= h;
            let mut gu = [0.0; NUM_PARAMS];
            let mut gd = [0.0; NUM_PARAMS];
            let mut hu = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            let mut hd = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            add_likelihood(&up, &blocks, &mut gu, &mut hu);
            add_likelihood(&dn, &blocks, &mut gd, &mut hd);
            for &i in &sample {
                let fd = (gu[i] - gd[i]) / (2.0 * h);
                let an = hess[(i, j)];
                let scale = 1.0 + fd.abs().max(an.abs());
                assert!(
                    (an - fd).abs() < 5e-3 * scale,
                    "H[{i}][{j}]: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let p = test_params();
        let blocks = vec![test_block()];
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        add_likelihood(&p, &blocks, &mut grad, &mut hess);
        assert!(hess.is_symmetric(1e-9));
    }

    #[test]
    fn value_path_survives_nonpositive_rate() {
        // A pathological trial point: huge negative ε drives the rate
        // nonpositive. Both paths must stay finite (the RATE_FLOOR
        // guard) instead of producing NaN from ln(≤0).
        let p = test_params();
        let mut block = test_block();
        for pix in &mut block.pixels {
            pix.eps = -1e9;
        }
        let blocks = vec![block];
        let v = likelihood_value(&p, &blocks);
        assert!(v.is_finite(), "value path NaN on nonpositive rate: {v}");
        let mut grad = [0.0; NUM_PARAMS];
        let mut hess = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
        let vd = add_likelihood(&p, &blocks, &mut grad, &mut hess);
        assert!(
            vd.is_finite(),
            "derivative path NaN on nonpositive rate: {vd}"
        );
        assert!(
            (v - vd).abs() < 1e-9 * (1.0 + v.abs()),
            "paths disagree: {v} vs {vd}"
        );
    }

    #[test]
    fn brighter_fit_increases_likelihood_toward_truth() {
        // With counts generated from flux ≈ 4 nmgy, the likelihood at
        // the matching flux must beat a far-off flux.
        let p = test_params();
        let blocks = vec![test_block()];
        let good = likelihood_value(&p, &blocks);
        let mut bad = p;
        bad[ids::r_mu(0)] += 3.0; // e³ ≈ 20× too bright (star branch)
        bad[ids::r_mu(1)] += 3.0;
        let worse = likelihood_value(&bad, &blocks);
        assert!(good > worse, "good {good} vs worse {worse}");
    }

    #[test]
    fn visits_counter_increments() {
        let p = test_params();
        let blocks = vec![test_block()];
        crate::flops::reset_visits();
        likelihood_value(&p, &blocks);
        assert_eq!(crate::flops::visits(), 81);
    }

    /// A block with exactly `n` active pixels clustered around the
    /// source (all survive screening, so each one enters the rank-2
    /// tile): parameterizes the tile fill count directly.
    fn tiny_block(n: usize, center: [f64; 2], band: usize, jitter: f64) -> ImageBlock {
        let pixels = (0..n)
            .map(|i| {
                let dx = (i % 3) as f64 - 1.0 + jitter;
                let dy = (i / 3) as f64 - 1.0;
                ActivePixel {
                    px: center[0] + dx,
                    py: center[1] + dy,
                    x: 180.0 + 10.0 * i as f64,
                    eps: 140.0,
                }
            })
            .collect();
        ImageBlock {
            band,
            iota: 290.0,
            jac: [[0.7, 0.03], [-0.02, 0.71]],
            center0: center,
            psf: Arc::new(Psf::core_halo(1.2)),
            pixels,
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tiled rank-2 triangle fold against the dense reference
        /// at every tile fill: `n1 + n2` surviving pixels sweep full
        /// tiles, odd tails of 1..3, and the carry of a partially
        /// filled tile across the block boundary (the tile persists
        /// between image blocks). Parity bar: 1e-12 relative to the
        /// output's max-abs scale, same as the pinned unit test.
        #[test]
        fn tiled_rank2_fold_matches_dense_at_every_tail_size(
            n1 in 1usize..10,
            n2 in 0usize..7,
            jitter in -0.3..0.3f64,
            pscale in 0.2..1.0f64,
        ) {
            let mut p = test_params();
            for (i, v) in p.iter_mut().enumerate() {
                *v += 0.02 * pscale * ((i * 7 % 13) as f64 - 6.0) / 6.0;
            }
            let mut blocks = vec![tiny_block(n1, [10.0, 12.0], 2, jitter)];
            if n2 > 0 {
                blocks.push(tiny_block(n2, [10.5, 11.5], 3, -jitter));
            }
            let mut gp = [0.0; NUM_PARAMS];
            let mut hp = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            let vp = add_likelihood(&p, &blocks, &mut gp, &mut hp);
            let mut gd = [0.0; NUM_PARAMS];
            let mut hd = Mat::zeros(NUM_PARAMS, NUM_PARAMS);
            let vd = add_likelihood_dense(&p, &blocks, &mut gd, &mut hd);
            prop_assert!((vp - vd).abs() <= 1e-12 * (1.0 + vd.abs()));
            let gscale = gd.iter().fold(1.0_f64, |m, g| m.max(g.abs()));
            let hscale = hd.max_abs().max(1.0);
            for i in 0..NUM_PARAMS {
                prop_assert!(
                    (gp[i] - gd[i]).abs() <= 1e-12 * gscale,
                    "grad[{}]: packed {} vs dense {}", i, gp[i], gd[i]
                );
                for j in 0..NUM_PARAMS {
                    prop_assert!(
                        (hp[(i, j)] - hd[(i, j)]).abs() <= 1e-12 * hscale,
                        "H[{}][{}]: packed {} vs dense {}", i, j, hp[(i, j)], hd[(i, j)]
                    );
                }
            }
        }
    }
}
