//! Building per-source subproblems and running inference.
//!
//! A *task* (paper §IV-D) jointly optimizes the sources in a sky
//! region by block coordinate ascent: one source's 44 parameters are
//! maximized to tolerance with Newton's method while all other sources
//! are held fixed, then the next source, until a pass over the region
//! no longer improves the ELBO. This module provides the serial
//! engine; `celeste-sched` parallelizes passes with Cyclades.

use crate::fluxdist::type_weight;
use crate::kl::{kl_value, sub_kl, ModelPriors};
use crate::likelihood::{
    add_likelihood_into, likelihood_value_into, ActivePixel, ImageBlock, LikScratch,
};
use crate::newton::{maximize_with, EvalWorkspace, NewtonConfig, NewtonStats, Objective};
use crate::params::{ids, SourceParams, NUM_PARAMS};
use celeste_linalg::SymEigen;
use celeste_survey::gmm::Gmm;
use celeste_survey::render::source_gmm_pix;
use celeste_survey::Image;
use std::sync::Arc;

/// Inference configuration.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    pub newton: NewtonConfig,
    /// Active-pixel radius in units of the source's support sigma.
    pub active_nsigma: f64,
    /// Active-pixel radius clamp, pixels.
    pub min_radius_px: f64,
    pub max_radius_px: f64,
    /// Block-coordinate-ascent passes over a region.
    pub bca_passes: usize,
    /// Whether to refresh position/shape uncertainty scales from the
    /// curvature after each fit (Laplace-within-VI).
    pub laplace_scales: bool,
    /// Geometry-kernel culling tolerance: mixture components whose
    /// contribution to every output slot is provably below this are
    /// skipped before their `exp` is taken (see [`crate::bvn`]).
    /// 0 disables culling. The default (1e-9, in unit-flux appearance
    /// units) keeps the induced per-pixel rate error ~9 orders of
    /// magnitude below the Poisson noise of any realistic image while
    /// culling the far tails of the mixture.
    pub cull_tol: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            newton: NewtonConfig::default(),
            active_nsigma: 3.5,
            min_radius_px: 4.0,
            max_radius_px: 20.0,
            bca_passes: 2,
            laplace_scales: true,
            cull_tol: 1e-9,
        }
    }
}

/// Posterior-mean flux in `band`, mixing both types by `q(a)`.
pub fn expected_band_flux(params: &[f64; NUM_PARAMS], band: usize) -> f64 {
    let mut total = 0.0;
    for t in 0..2 {
        let w = type_weight(params, t).val;
        let (l, _) = crate::fluxdist::flux_moments(params, t, band);
        total += w * l.val;
    }
    total
}

/// The per-source maximization problem: active pixels across all
/// covering images, with neighbors folded into the background rate.
pub struct SourceProblem {
    pub blocks: Vec<ImageBlock>,
    pub priors: ModelPriors,
    /// Geometry-kernel culling tolerance (see [`FitConfig::cull_tol`]);
    /// applied identically to the derivative and value paths.
    pub cull_tol: f64,
}

/// Reusable buffers for [`SourceProblem::build`]: the per-image
/// neighbor list. A block-coordinate-ascent pass rebuilds the problem
/// for every (source, image) pair, so the assembly path reuses its
/// scratch instead of reallocating it each time.
#[derive(Default)]
pub struct BuildScratch {
    neighbors: Vec<(f64, Gmm)>,
}

impl SourceProblem {
    /// Assemble the problem for `source` against `images`, holding
    /// `others` fixed (their expected flux joins each pixel's ε).
    pub fn build(
        source: &SourceParams,
        images: &[&Image],
        others: &[&SourceParams],
        priors: &ModelPriors,
        cfg: &FitConfig,
    ) -> SourceProblem {
        let mut scratch = BuildScratch::default();
        SourceProblem::build_with(source, images, others, priors, cfg, &mut scratch)
    }

    /// [`SourceProblem::build`] with caller-owned assembly scratch
    /// (the form worker pools use between fits).
    pub fn build_with(
        source: &SourceParams,
        images: &[&Image],
        others: &[&SourceParams],
        priors: &ModelPriors,
        cfg: &FitConfig,
        scratch: &mut BuildScratch,
    ) -> SourceProblem {
        let mut blocks = Vec::new();
        let shape = source.shape();
        for img in images {
            let center0 = img.wcs.sky_to_pix(&source.base_pos);
            let margin = cfg.max_radius_px;
            if center0[0] < -margin
                || center0[1] < -margin
                || center0[0] > img.width as f64 + margin
                || center0[1] > img.height as f64 + margin
            {
                continue;
            }
            // Support radius: PSF plus (potential) galaxy extent.
            let psf_sigma = img
                .psf
                .components
                .iter()
                .map(|c| c.sigma_px)
                .fold(0.0_f64, f64::max);
            let px_per_arcsec = 1.0 / img.wcs.pixel_scale_arcsec();
            let gal_sigma = shape.radius_arcsec * px_per_arcsec;
            let radius = (cfg.active_nsigma
                * (psf_sigma * psf_sigma + gal_sigma * gal_sigma).sqrt())
            .clamp(cfg.min_radius_px, cfg.max_radius_px);

            let (xs, ys) = img.clip_box(
                center0[0] - radius,
                center0[0] + radius,
                center0[1] - radius,
                center0[1] + radius,
            );
            if xs.is_empty() || ys.is_empty() {
                continue;
            }
            // Neighbor contributions to the background rate
            // (accumulated into the reusable scratch list).
            let band = img.band.index();
            let neighbors = &mut scratch.neighbors;
            neighbors.clear();
            neighbors.extend(
                others
                    .iter()
                    .filter(|o| {
                        o.base_pos.sep_arcsec(&source.base_pos)
                            < (3.0 * radius) * img.wcs.pixel_scale_arcsec() + 30.0
                    })
                    .map(|o| {
                        let entry = o.to_entry();
                        let flux = expected_band_flux(&o.params, band) * img.nmgy_to_counts;
                        (flux, source_gmm_pix(&entry, img))
                    }),
            );

            let r2 = radius * radius;
            // The disk covers ~π/4 of the bounding box.
            let mut pixels = Vec::with_capacity(xs.len() * ys.len() * 4 / 5);
            for y in ys.clone() {
                for x in xs.clone() {
                    let px = x as f64 + 0.5;
                    let py = y as f64 + 0.5;
                    let dx = px - center0[0];
                    let dy = py - center0[1];
                    if dx * dx + dy * dy > r2 {
                        continue;
                    }
                    let mut eps = img.sky_level;
                    for (flux, gmm) in neighbors.iter() {
                        eps += flux * gmm.eval(px, py);
                    }
                    pixels.push(ActivePixel {
                        px,
                        py,
                        x: img.get(x, y) as f64,
                        eps,
                    });
                }
            }
            if pixels.is_empty() {
                continue;
            }
            blocks.push(ImageBlock {
                band,
                iota: img.nmgy_to_counts,
                jac: img.wcs.jac_per_arcsec(),
                center0,
                // Shared, not cloned: the PSF mixture belongs to the
                // image; every subproblem references it.
                psf: Arc::clone(&img.psf),
                pixels,
            });
        }
        SourceProblem {
            blocks,
            priors: priors.clone(),
            cull_tol: cfg.cull_tol,
        }
    }

    /// Total number of active pixels across images.
    pub fn active_pixels(&self) -> usize {
        self.blocks.iter().map(|b| b.pixels.len()).sum()
    }
}

/// Objective-specific scratch carried inside the evaluation
/// workspace: prepared appearance mixtures for the likelihood kernel.
#[derive(Default)]
pub struct SourceScratch {
    pub lik: LikScratch,
}

impl Objective for SourceProblem {
    type Scratch = SourceScratch;

    fn dim(&self) -> usize {
        NUM_PARAMS
    }

    fn eval_into(&self, x: &[f64], ws: &mut EvalWorkspace<SourceScratch>) {
        let params: [f64; NUM_PARAMS] = x.try_into().expect("dim");
        ws.reset_accumulators();
        let (grad, hess, scratch) = ws.split_mut();
        let g44: &mut [f64; NUM_PARAMS] = grad.as_mut_slice().try_into().expect("workspace dim");
        let lik = add_likelihood_into(
            &params,
            &self.blocks,
            g44,
            hess,
            &mut scratch.lik,
            self.cull_tol,
        );
        let kl = sub_kl(&params, &self.priors, g44, hess);
        // Both accumulations are symmetric by construction; enforce
        // exact symmetry for the eigensolver (cheap, allocation-free).
        hess.symmetrize();
        ws.value = lik - kl;
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut scratch = SourceScratch::default();
        self.value_into(x, &mut scratch)
    }

    fn value_into(&self, x: &[f64], scratch: &mut SourceScratch) -> f64 {
        let params: [f64; NUM_PARAMS] = x.try_into().expect("dim");
        likelihood_value_into(&params, &self.blocks, &mut scratch.lik, self.cull_tol)
            - kl_value(&params, &self.priors)
    }
}

/// Statistics of one source fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct FitStats {
    pub newton: NewtonStats,
    pub active_pixels: usize,
    pub elbo_before: f64,
    pub elbo_after: f64,
}

/// Invalid input to a source fit, reported by [`try_fit_source`] /
/// [`try_fit_source_with`] instead of corrupting the Newton loop (a
/// single NaN parameter or pixel poisons every downstream ELBO
/// evaluation and trust-region step).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FitError {
    /// A variational parameter is NaN or infinite.
    NonFiniteParam {
        /// Index into the 44-slot parameter block.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An active pixel carries a non-finite observed count or
    /// background rate.
    NonFinitePixel {
        /// Index of the image block holding the pixel.
        block: usize,
        /// Index of the pixel within the block.
        pixel: usize,
    },
    /// An image's calibration (sky level, nmgy→counts scale, or WCS
    /// geometry) is NaN or infinite — it would scale every likelihood
    /// term of its block.
    NonFiniteCalibration {
        /// Index of the offending image (or image block).
        block: usize,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NonFiniteParam { index, value } => {
                write!(f, "non-finite parameter {value} at index {index}")
            }
            FitError::NonFinitePixel { block, pixel } => {
                write!(f, "non-finite data in pixel {pixel} of image block {block}")
            }
            FitError::NonFiniteCalibration { block } => {
                write!(f, "non-finite calibration on image block {block}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Validate one source's variational parameter block: every slot must
/// be finite.
pub fn validate_params(source: &SourceParams) -> Result<(), FitError> {
    for (index, &value) in source.params.iter().enumerate() {
        if !value.is_finite() {
            return Err(FitError::NonFiniteParam { index, value });
        }
    }
    Ok(())
}

/// Validate raw images before problem assembly: calibration (sky
/// level, nmgy→counts scale) and every pixel must be finite. The
/// `block` index in a reported error is the image's position in
/// `images`.
pub fn validate_images(images: &[&Image]) -> Result<(), FitError> {
    for (block, img) in images.iter().enumerate() {
        if !(img.sky_level.is_finite() && img.nmgy_to_counts.is_finite()) {
            return Err(FitError::NonFiniteCalibration { block });
        }
        if let Some(pixel) = img.pixels.iter().position(|p| !p.is_finite()) {
            return Err(FitError::NonFinitePixel { block, pixel });
        }
    }
    Ok(())
}

/// Validate a fit's inputs: the source's parameters plus every
/// assembled block's calibration and active pixels must be finite.
pub fn validate_fit_inputs(source: &SourceParams, problem: &SourceProblem) -> Result<(), FitError> {
    validate_params(source)?;
    for (bi, block) in problem.blocks.iter().enumerate() {
        if !(block.iota.is_finite()
            && block.center0.iter().all(|c| c.is_finite())
            && block.jac.iter().flatten().all(|j| j.is_finite()))
        {
            return Err(FitError::NonFiniteCalibration { block: bi });
        }
        for (pi, p) in block.pixels.iter().enumerate() {
            if !(p.x.is_finite() && p.eps.is_finite() && p.px.is_finite() && p.py.is_finite()) {
                return Err(FitError::NonFinitePixel {
                    block: bi,
                    pixel: pi,
                });
            }
        }
    }
    Ok(())
}

/// The evaluation workspace type a source fit uses.
pub type SourceWorkspace = EvalWorkspace<SourceScratch>;

/// Allocate a workspace sized for source fits. Long-lived workers
/// build one and thread it through [`fit_source_with`].
pub fn source_workspace() -> SourceWorkspace {
    SourceWorkspace::new(NUM_PARAMS)
}

/// Fit one source to convergence (paper §IV-D's inner loop),
/// allocating a fresh workspace. One-shot callers only; worker loops
/// use [`fit_source_with`].
pub fn fit_source(source: &mut SourceParams, problem: &SourceProblem, cfg: &FitConfig) -> FitStats {
    let mut ws = source_workspace();
    fit_source_with(source, problem, cfg, &mut ws)
}

/// [`fit_source`] with invalid input reported as a [`FitError`]: the
/// form the `celeste` facade calls on user-supplied parameters.
pub fn try_fit_source(
    source: &mut SourceParams,
    problem: &SourceProblem,
    cfg: &FitConfig,
) -> Result<FitStats, FitError> {
    let mut ws = source_workspace();
    try_fit_source_with(source, problem, cfg, &mut ws)
}

/// [`fit_source_with`] behind the same input validation as
/// [`try_fit_source`].
pub fn try_fit_source_with(
    source: &mut SourceParams,
    problem: &SourceProblem,
    cfg: &FitConfig,
    ws: &mut SourceWorkspace,
) -> Result<FitStats, FitError> {
    validate_fit_inputs(source, problem)?;
    Ok(fit_source_with(source, problem, cfg, ws))
}

/// Fit one source to convergence reusing the caller's workspace: the
/// whole Newton loop (all iterations and trust-region trials) runs
/// against the same gradient/Hessian/scratch buffers.
pub fn fit_source_with(
    source: &mut SourceParams,
    problem: &SourceProblem,
    cfg: &FitConfig,
    ws: &mut SourceWorkspace,
) -> FitStats {
    let before = problem.value(&source.params);
    let mut x = source.params;
    let newton = maximize_with(problem, &mut x, &cfg.newton, ws);
    source.params = x;
    if cfg.laplace_scales {
        laplace_update_scales(source, problem, ws);
    }
    FitStats {
        newton,
        active_pixels: problem.active_pixels(),
        elbo_before: before,
        elbo_after: newton.value,
    }
}

/// Refresh the position/shape uncertainty scales from the curvature of
/// the maximized objective: the observed information `−∇²L` maps to
/// posterior variances via its inverse (Laplace-within-VI; documented
/// deviation in DESIGN.md — the paper's u and φ are point-optimized
/// too, with uncertainty only on a, r, c).
fn laplace_update_scales(
    source: &mut SourceParams,
    problem: &SourceProblem,
    ws: &mut SourceWorkspace,
) {
    problem.eval_into(&source.params, ws);
    let mut info = ws.hess.clone();
    info.scale(-1.0);
    let eig = SymEigen::new(&info);
    // Floor tiny/negative curvature so the inverse stays meaningful.
    let floor = 1e-6 * eig.values().last().copied().unwrap_or(1.0).abs().max(1e-6);
    let cov = eig.rebuild_with(|l| 1.0 / l.max(floor));
    for j in 0..2 {
        let var = cov[(ids::U[j], ids::U[j])].max(1e-12);
        source.params[ids::U_LSD[j]] = 0.5 * var.ln();
    }
    for j in 0..4 {
        let var = cov[(ids::SHAPE[j], ids::SHAPE[j])].max(1e-12);
        source.params[ids::SHAPE_LSD[j]] = 0.5 * var.ln();
    }
}

/// Region-level statistics for block coordinate ascent.
#[derive(Debug, Clone, Default)]
pub struct OptimizeStats {
    pub passes: usize,
    pub fits: usize,
    pub total_newton_iters: usize,
    /// Sum of per-source final ELBOs after the last pass.
    pub final_elbo: f64,
}

/// Serial block coordinate ascent over the sources of one region
/// (paper §IV-D, minus the Cyclades parallelism which lives in
/// `celeste-sched`). Other sources are folded into each subproblem's
/// background at their current parameters.
pub fn optimize_sources(
    sources: &mut [SourceParams],
    images: &[&Image],
    priors: &ModelPriors,
    cfg: &FitConfig,
) -> OptimizeStats {
    let mut stats = OptimizeStats::default();
    let mut ws = source_workspace();
    let mut build = BuildScratch::default();
    for _pass in 0..cfg.bca_passes {
        stats.passes += 1;
        for i in 0..sources.len() {
            let (head, rest) = sources.split_at_mut(i);
            let (curr, tail) = rest.split_first_mut().expect("index in range");
            let others: Vec<&SourceParams> = head.iter().chain(tail.iter()).collect();
            let problem = SourceProblem::build_with(curr, images, &others, priors, cfg, &mut build);
            if problem.blocks.is_empty() {
                continue;
            }
            let fs = fit_source_with(curr, &problem, cfg, &mut ws);
            stats.fits += 1;
            stats.total_newton_iters += fs.newton.iterations;
            if i == sources.len() - 1 {
                stats.final_elbo += fs.elbo_after;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use celeste_survey::bands::Band;
    use celeste_survey::catalog::{Catalog, CatalogEntry, GalaxyShape, SourceType};
    use celeste_survey::psf::Psf;
    use celeste_survey::render::render_observed;
    use celeste_survey::skygeom::{FieldId, SkyCoord, SkyRect};
    use celeste_survey::wcs::Wcs;
    use celeste_survey::Priors;

    fn scene_images(truth: &Catalog, bands: &[Band], seed: u64) -> Vec<Image> {
        let rect = SkyRect::new(0.0, 0.03, 0.0, 0.03);
        bands
            .iter()
            .map(|&band| {
                let mut img = Image::blank(
                    FieldId {
                        run: 1,
                        camcol: 1,
                        field: 0,
                    },
                    band,
                    Wcs::for_rect(&rect, 80, 80),
                    80,
                    80,
                    140.0,
                    300.0,
                    Psf::core_halo(1.3),
                );
                render_observed(truth, &mut img, seed + band.index() as u64);
                img
            })
            .collect()
    }

    fn star(flux: f64) -> CatalogEntry {
        CatalogEntry {
            id: 0,
            pos: SkyCoord::new(0.015, 0.015),
            source_type: SourceType::Star,
            flux_r_nmgy: flux,
            colors: [0.6, 0.3, 0.2, 0.1],
            shape: GalaxyShape::round_disk(1.0),
        }
    }

    fn priors() -> ModelPriors {
        ModelPriors::new(Priors::sdss_default())
    }

    #[test]
    fn bright_star_is_recovered() {
        let truth = Catalog::new(vec![star(25.0)]);
        let images = scene_images(&truth, &Band::ALL, 5);
        let refs: Vec<&Image> = images.iter().collect();
        // Initialize from a perturbed entry: wrong flux, slight offset.
        let mut init = star(10.0);
        init.pos.ra += 0.5 / 3600.0;
        let mut sp = SourceParams::init_from_entry(&init);
        let cfg = FitConfig::default();
        let problem = SourceProblem::build(&sp, &refs, &[], &priors(), &cfg);
        assert!(problem.blocks.len() == 5, "expected 5 band blocks");
        let fs = fit_source(&mut sp, &problem, &cfg);
        assert!(fs.elbo_after > fs.elbo_before, "{fs:?}");
        let fitted = sp.to_entry();
        assert_eq!(fitted.source_type, SourceType::Star);
        assert!(sp.star_prob() > 0.9, "star prob {}", sp.star_prob());
        assert!(
            (fitted.flux_r_nmgy - 25.0).abs() < 2.0,
            "flux {}",
            fitted.flux_r_nmgy
        );
        assert!(fitted.pos.sep_arcsec(&truth.entries[0].pos) < 0.2);
        // Colors recovered within posterior noise.
        for (got, want) in fitted.colors.iter().zip(&truth.entries[0].colors) {
            assert!((got - want).abs() < 0.2, "color {got} vs {want}");
        }
    }

    #[test]
    fn extended_galaxy_is_classified_galaxy() {
        let mut gal = star(40.0);
        gal.source_type = SourceType::Galaxy;
        gal.shape = GalaxyShape {
            frac_dev: 0.2,
            axis_ratio: 0.55,
            angle_rad: 0.9,
            radius_arcsec: 2.5,
        };
        let truth = Catalog::new(vec![gal.clone()]);
        let images = scene_images(&truth, &[Band::R, Band::I, Band::G], 9);
        let refs: Vec<&Image> = images.iter().collect();
        // Neutral init: round small galaxy guess.
        let mut init = gal.clone();
        init.shape = GalaxyShape::round_disk(1.5);
        init.flux_r_nmgy = 15.0;
        let mut sp = SourceParams::init_from_entry(&init);
        let cfg = FitConfig::default();
        let problem = SourceProblem::build(&sp, &refs, &[], &priors(), &cfg);
        fit_source(&mut sp, &problem, &cfg);
        assert!(sp.star_prob() < 0.1, "star prob {}", sp.star_prob());
        let s = sp.shape();
        assert!(
            (s.radius_arcsec - 2.5).abs() < 0.8,
            "radius {}",
            s.radius_arcsec
        );
        assert!((s.axis_ratio - 0.55).abs() < 0.2, "q {}", s.axis_ratio);
    }

    #[test]
    fn uncertainty_shrinks_with_more_data() {
        let truth = Catalog::new(vec![star(8.0)]);
        let one = scene_images(&truth, &[Band::R], 3);
        let five = scene_images(&truth, &Band::ALL, 3);
        let cfg = FitConfig::default();
        let fit = |imgs: &[Image]| {
            let refs: Vec<&Image> = imgs.iter().collect();
            let mut sp = SourceParams::init_from_entry(&star(8.0));
            let problem = SourceProblem::build(&sp, &refs, &[], &priors(), &cfg);
            fit_source(&mut sp, &problem, &cfg);
            sp.uncertainty()
        };
        let u1 = fit(&one);
        let u5 = fit(&five);
        assert!(
            u5.position_sd_arcsec[0] < u1.position_sd_arcsec[0],
            "pos sd: 5-band {} vs 1-band {}",
            u5.position_sd_arcsec[0],
            u1.position_sd_arcsec[0]
        );
    }

    #[test]
    fn overlapping_pair_fit_jointly() {
        // Two stars ~4.3 arcsec apart (~3 px): blended, needs BCA.
        let mut s1 = star(20.0);
        let mut s2 = star(12.0);
        s2.id = 1;
        s2.pos.ra += 4.3 / 3600.0;
        let truth = Catalog::new(vec![s1.clone(), s2.clone()]);
        let images = scene_images(&truth, &[Band::R, Band::G], 7);
        let refs: Vec<&Image> = images.iter().collect();
        s1.flux_r_nmgy = 14.0;
        s2.flux_r_nmgy = 14.0;
        let mut sources = vec![
            SourceParams::init_from_entry(&s1),
            SourceParams::init_from_entry(&s2),
        ];
        let cfg = FitConfig {
            bca_passes: 3,
            ..Default::default()
        };
        let stats = optimize_sources(&mut sources, &refs, &priors(), &cfg);
        assert_eq!(stats.passes, 3);
        assert!(stats.fits >= 6);
        let f1 = sources[0].to_entry().flux_r_nmgy;
        let f2 = sources[1].to_entry().flux_r_nmgy;
        assert!((f1 - 20.0).abs() < 3.0, "source 1 flux {f1}");
        assert!((f2 - 12.0).abs() < 3.0, "source 2 flux {f2}");
    }

    #[test]
    fn off_image_source_yields_empty_problem() {
        let truth = Catalog::new(vec![star(5.0)]);
        let images = scene_images(&truth, &[Band::R], 1);
        let refs: Vec<&Image> = images.iter().collect();
        let mut far = star(5.0);
        far.pos = SkyCoord::new(3.0, 3.0);
        let sp = SourceParams::init_from_entry(&far);
        let problem = SourceProblem::build(&sp, &refs, &[], &priors(), &FitConfig::default());
        assert!(problem.blocks.is_empty());
    }
}
